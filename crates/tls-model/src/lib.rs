//! TLS 1.2/1.3 handshake and record-layer **byte model**.
//!
//! This crate counts bytes; it performs no cryptography. It reproduces the
//! two quantities the paper's cost accounting needs from TLS:
//!
//! 1. **Handshake transcripts** — [`handshake_flights`] turns a
//!    [`TlsConfig`] (protocol version, SNI hostname, ALPN protocols,
//!    certificate-chain sizes, session resumption) into an ordered list of
//!    [`Flight`]s with realistic byte counts, built from the per-message
//!    size formulas of RFC 5246/8446. Certificate bytes dominate a full
//!    handshake; resumption removes them, which is exactly the
//!    fresh-vs-resumed contrast the paper measures.
//! 2. **Record framing** — every application write is wrapped into records
//!    of at most [`MAX_PLAINTEXT`] bytes, each costing [`RECORD_HEADER`] +
//!    [`AEAD_TAG`] bytes of overhead. [`wrap`] gives the byte-count view,
//!    [`seal`] produces on-wire records (type/version/length header, the
//!    plaintext verbatim, a zero tag) and [`Deframer`] parses them back out
//!    of a byte stream.
//!
//! Transports charge the framing and handshake bytes to
//! `LayerTag::Tls` and the carried plaintext to the layer it belongs to
//! (see `dohmark-doh`), so handshake amortisation across resolutions is
//! measurable exactly as the paper measures it.
//!
//! Deliberate simplifications, chosen to keep counts deterministic without
//! changing any qualitative result: the AEAD overhead is a uniform 16-byte
//! tag (no TLS 1.2 explicit IV), NewSessionTicket issuance is not modelled,
//! and TLS 1.3 0-RTT is out of scope.
//!
//! # Example
//!
//! ```
//! use dohmark_tls_model::{handshake_bytes, handshake_flights, TlsConfig};
//!
//! let full = TlsConfig::for_server("dns.example.net");
//! let resumed = TlsConfig { resumption: true, ..full.clone() };
//! // Resumption elides the certificate chain and signature.
//! assert!(handshake_bytes(&resumed) + 2000 < handshake_bytes(&full));
//! assert!(handshake_flights(&full)[0].from_client);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// ALPN protocol id for DNS over TLS (a conventional private label; DoT
/// deployments rarely negotiate ALPN, but the offer's bytes are modelled).
pub const ALPN_DOT: &str = "dot";
/// ALPN protocol id for HTTP/1.1 (RFC 7301).
pub const ALPN_HTTP11: &str = "http/1.1";
/// ALPN protocol id for HTTP/2 over TLS (RFC 9113 §3.3).
pub const ALPN_H2: &str = "h2";

/// RFC 7301 §3.2 protocol selection: the server picks its most-preferred
/// protocol that the client offered; `None` means no overlap, which a
/// real server answers with a `no_application_protocol` alert.
///
/// ```
/// use dohmark_tls_model::{select_alpn, ALPN_H2, ALPN_HTTP11};
///
/// let offers = vec![ALPN_H2.to_string(), ALPN_HTTP11.to_string()];
/// assert_eq!(select_alpn(&offers, &[ALPN_HTTP11, ALPN_H2]), Some(ALPN_HTTP11));
/// assert_eq!(select_alpn(&offers, &["dot"]), None);
/// ```
pub fn select_alpn<'a>(client_offers: &[String], server_prefs: &'a [&str]) -> Option<&'a str> {
    server_prefs.iter().find(|p| client_offers.iter().any(|o| o == **p)).copied()
}

/// TLS record header: content type (1), legacy version (2), length (2).
pub const RECORD_HEADER: usize = 5;
/// AEAD authentication tag appended to every encrypted record.
pub const AEAD_TAG: usize = 16;
/// Maximum plaintext bytes per record (RFC 8446 §5.1: 2^14).
pub const MAX_PLAINTEXT: usize = 16_384;
/// Handshake message header: type (1) + 24-bit length (3).
const HS_HEADER: usize = 4;
/// A ChangeCipherSpec record: header + 1 payload byte.
const CCS_RECORD: usize = RECORD_HEADER + 1;

/// Which TLS protocol version the handshake model follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlsVersion {
    /// TLS 1.2 (RFC 5246): 2-RTT full handshake, 1-RTT session-ID resumption.
    Tls12,
    /// TLS 1.3 (RFC 8446): 1-RTT full handshake, PSK resumption.
    Tls13,
}

/// Parameters of a modelled TLS connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlsConfig {
    /// Protocol version to model.
    pub version: TlsVersion,
    /// Server name sent in the SNI extension (its length is on the wire).
    pub sni: String,
    /// ALPN protocol names offered by the client (e.g. `"dot"`, `"h2"`).
    pub alpn: Vec<String>,
    /// DER sizes of the server certificate chain, leaf first. The default
    /// models a typical leaf + intermediate pair (~2.3 kB total).
    pub cert_chain: Vec<usize>,
    /// Server signature length (CertificateVerify / ServerKeyExchange);
    /// 256 models RSA-2048, 72 would model ECDSA-P256.
    pub signature_len: usize,
    /// Resume a previous session (TLS 1.3 PSK / TLS 1.2 session ID),
    /// eliding the certificate chain and signature.
    pub resumption: bool,
    /// PSK identity (session-ticket) length offered on TLS 1.3 resumption.
    pub ticket_len: usize,
}

impl Default for TlsConfig {
    fn default() -> TlsConfig {
        TlsConfig {
            version: TlsVersion::Tls13,
            sni: String::new(),
            alpn: Vec::new(),
            cert_chain: vec![1200, 1100],
            signature_len: 256,
            resumption: false,
            ticket_len: 128,
        }
    }
}

impl TlsConfig {
    /// A fresh TLS 1.3 connection to `sni` with no ALPN.
    pub fn for_server(sni: &str) -> TlsConfig {
        TlsConfig { sni: sni.to_string(), ..TlsConfig::default() }
    }

    /// Adds an ALPN offer (builder style).
    pub fn alpn(mut self, protocol: &str) -> TlsConfig {
        self.alpn.push(protocol.to_string());
        self
    }
}

/// One direction-contiguous burst of handshake bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flight {
    /// `true` when the client transmits this flight.
    pub from_client: bool,
    /// Total wire bytes of the flight, record framing included.
    pub bytes: usize,
    /// The handshake messages the flight carries, for reports.
    pub label: &'static str,
}

/// Total plaintext-record length: payload plus one 5-byte header per
/// (at most 16 kB) record, no AEAD tag. Used for pre-encryption messages.
fn plain_records(payload: usize) -> usize {
    payload + RECORD_HEADER * payload.div_ceil(MAX_PLAINTEXT).max(1)
}

/// Total encrypted-record length: payload plus header and tag per record.
fn sealed_records(payload: usize) -> usize {
    payload + (RECORD_HEADER + AEAD_TAG) * payload.div_ceil(MAX_PLAINTEXT).max(1)
}

/// ClientHello size: fixed fields (version, random, legacy session id,
/// cipher suites, compression, extension length prefix) plus the
/// variable-length extensions the config controls.
fn client_hello(cfg: &TlsConfig) -> usize {
    // 2 version + 32 random + 33 session id + 8 cipher suites (three
    // offered) + 2 compression + 2 extensions length.
    let mut body = 79;
    if !cfg.sni.is_empty() {
        // type+len (4) + list len (2) + entry type (1) + name len (2).
        body += 9 + cfg.sni.len();
    }
    if !cfg.alpn.is_empty() {
        body += 6 + cfg.alpn.iter().map(|p| 1 + p.len()).sum::<usize>();
    }
    body += match cfg.version {
        // supported_versions, x25519 key_share, supported_groups,
        // signature_algorithms, psk_key_exchange_modes.
        TlsVersion::Tls13 => 7 + 42 + 12 + 22 + 6,
        // supported_groups, signature_algorithms, ec_point_formats,
        // extended_master_secret, renegotiation_info, session_ticket.
        TlsVersion::Tls12 => 12 + 22 + 6 + 4 + 5 + 4,
    };
    if cfg.version == TlsVersion::Tls13 && cfg.resumption {
        // pre_shared_key: one identity (ticket + 4-byte obfuscated age)
        // plus one 32-byte binder, with the nested length prefixes.
        body += 47 + cfg.ticket_len;
    }
    HS_HEADER + body
}

/// Certificate message size for the chain (TLS 1.3 shape: request context,
/// list length, then per-entry 3-byte length + DER + 2-byte extensions).
fn certificate(cfg: &TlsConfig) -> usize {
    HS_HEADER + 4 + cfg.cert_chain.iter().map(|der| 5 + der).sum::<usize>()
}

/// Computes the ordered handshake flights for `cfg`.
///
/// Alternating bursts, client first. Application data may flow once every
/// flight has been delivered (no False Start / 0-RTT modelling).
pub fn handshake_flights(cfg: &TlsConfig) -> Vec<Flight> {
    let ch = plain_records(client_hello(cfg));
    match (cfg.version, cfg.resumption) {
        (TlsVersion::Tls13, false) => {
            // ServerHello: fixed fields + supported_versions + key_share.
            let sh = plain_records(HS_HEADER + 72 + 6 + 40);
            let encrypted = (HS_HEADER + 10) // EncryptedExtensions
                + certificate(cfg)
                + (HS_HEADER + 4 + cfg.signature_len) // CertificateVerify
                + (HS_HEADER + 32); // Finished
            vec![
                Flight { from_client: true, bytes: ch, label: "ClientHello" },
                Flight {
                    from_client: false,
                    bytes: sh + CCS_RECORD + sealed_records(encrypted),
                    label: "ServerHello..Finished",
                },
                Flight {
                    from_client: true,
                    bytes: CCS_RECORD + sealed_records(HS_HEADER + 32),
                    label: "Finished",
                },
            ]
        }
        (TlsVersion::Tls13, true) => {
            let sh = plain_records(HS_HEADER + 72 + 6 + 40 + 6); // + pre_shared_key
            let encrypted = (HS_HEADER + 10) + (HS_HEADER + 32); // EE + Finished
            vec![
                Flight { from_client: true, bytes: ch, label: "ClientHello(PSK)" },
                Flight {
                    from_client: false,
                    bytes: sh + CCS_RECORD + sealed_records(encrypted),
                    label: "ServerHello..Finished",
                },
                Flight {
                    from_client: true,
                    bytes: CCS_RECORD + sealed_records(HS_HEADER + 32),
                    label: "Finished",
                },
            ]
        }
        (TlsVersion::Tls12, false) => {
            // ServerHello with renegotiation_info, EMS, session_ticket and
            // ALPN echo; then Certificate, ECDHE ServerKeyExchange (curve
            // info + 32-byte point + signature), ServerHelloDone.
            let alpn_echo = cfg.alpn.first().map(|p| 9 + p.len()).unwrap_or(0);
            let server = (HS_HEADER + 70 + alpn_echo)
                + certificate(cfg)
                + (HS_HEADER + 40 + cfg.signature_len)
                + HS_HEADER;
            // ClientKeyExchange: 1-byte length + 32-byte ECDHE point.
            let cke = plain_records(HS_HEADER + 33);
            let fin = sealed_records(HS_HEADER + 12);
            vec![
                Flight { from_client: true, bytes: ch, label: "ClientHello" },
                Flight {
                    from_client: false,
                    bytes: plain_records(server),
                    label: "ServerHello..HelloDone",
                },
                Flight {
                    from_client: true,
                    bytes: cke + CCS_RECORD + fin,
                    label: "ClientKeyExchange+Finished",
                },
                Flight { from_client: false, bytes: CCS_RECORD + fin, label: "Finished" },
            ]
        }
        (TlsVersion::Tls12, true) => {
            let alpn_echo = cfg.alpn.first().map(|p| 9 + p.len()).unwrap_or(0);
            let sh = plain_records(HS_HEADER + 70 + alpn_echo);
            let fin = sealed_records(HS_HEADER + 12);
            vec![
                Flight { from_client: true, bytes: ch, label: "ClientHello(session-id)" },
                Flight { from_client: false, bytes: sh + CCS_RECORD + fin, label: "Finished" },
                Flight { from_client: true, bytes: CCS_RECORD + fin, label: "Finished" },
            ]
        }
    }
}

/// Total handshake bytes over all flights.
pub fn handshake_bytes(cfg: &TlsConfig) -> usize {
    handshake_flights(cfg).iter().map(|f| f.bytes).sum()
}

/// Byte-count view of one application-data record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlsRecord {
    /// Plaintext bytes the record carries.
    pub payload: usize,
}

impl TlsRecord {
    /// Framing overhead of any record: header + AEAD tag.
    pub const OVERHEAD: usize = RECORD_HEADER + AEAD_TAG;

    /// Total wire length of the record.
    pub fn wire_len(&self) -> usize {
        self.payload + TlsRecord::OVERHEAD
    }
}

/// Splits an application write into records of at most [`MAX_PLAINTEXT`]
/// plaintext bytes each. A zero-length write produces no records.
pub fn wrap(bytes: usize) -> Vec<TlsRecord> {
    let mut records = Vec::with_capacity(bytes.div_ceil(MAX_PLAINTEXT));
    let mut left = bytes;
    while left > 0 {
        let take = left.min(MAX_PLAINTEXT);
        records.push(TlsRecord { payload: take });
        left -= take;
    }
    records
}

/// Total wire bytes of `bytes` of application data after record framing.
pub fn framed_len(bytes: usize) -> usize {
    wrap(bytes).iter().map(TlsRecord::wire_len).sum()
}

/// An application-data record ready for the wire: real header bytes, the
/// plaintext verbatim (this is a byte model, not encryption), a zero tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedRecord {
    /// `[0x17, 0x03, 0x03, len_hi, len_lo]`; length covers payload + tag.
    pub header: [u8; RECORD_HEADER],
    /// The carried plaintext.
    pub plaintext: Vec<u8>,
    /// Stand-in AEAD tag (all zeros).
    pub tag: [u8; AEAD_TAG],
}

/// Frames `plaintext` into on-wire [`SealedRecord`]s.
pub fn seal(plaintext: &[u8]) -> Vec<SealedRecord> {
    plaintext
        .chunks(MAX_PLAINTEXT)
        .map(|chunk| {
            let len = (chunk.len() + AEAD_TAG) as u16;
            SealedRecord {
                header: [0x17, 0x03, 0x03, (len >> 8) as u8, (len & 0xFF) as u8],
                plaintext: chunk.to_vec(),
                tag: [0; AEAD_TAG],
            }
        })
        .collect()
}

/// Incremental parser for a stream of sealed records.
///
/// Feed raw received bytes with [`Deframer::push`]; complete plaintexts
/// come back out of [`Deframer::next_plaintext`] in order.
#[derive(Debug, Default)]
pub struct Deframer {
    buf: Vec<u8>,
}

impl Deframer {
    /// An empty deframer.
    pub fn new() -> Deframer {
        Deframer::default()
    }

    /// Appends received stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete record's plaintext, if fully received.
    ///
    /// A malformed record whose length field is shorter than the AEAD tag
    /// is consumed as an empty plaintext rather than panicking — a real
    /// TLS stack would abort the connection there, but a byte model only
    /// needs to stay total.
    pub fn next_plaintext(&mut self) -> Option<Vec<u8>> {
        if self.buf.len() < RECORD_HEADER {
            return None;
        }
        let len = usize::from(u16::from_be_bytes([self.buf[3], self.buf[4]]));
        let total = RECORD_HEADER + len;
        if self.buf.len() < total {
            return None;
        }
        let plain_len = len.saturating_sub(AEAD_TAG);
        let plaintext = self.buf[RECORD_HEADER..RECORD_HEADER + plain_len].to_vec();
        self.buf.drain(..total);
        Some(plaintext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dot_config() -> TlsConfig {
        TlsConfig::for_server("dns.example.net").alpn("dot")
    }

    #[test]
    fn flights_alternate_and_start_with_the_client() {
        for cfg in [
            dot_config(),
            TlsConfig { resumption: true, ..dot_config() },
            TlsConfig { version: TlsVersion::Tls12, ..dot_config() },
            TlsConfig { version: TlsVersion::Tls12, resumption: true, ..dot_config() },
        ] {
            let flights = handshake_flights(&cfg);
            assert!(flights[0].from_client, "{cfg:?}");
            assert!(flights.iter().all(|f| f.bytes > 0));
            for pair in flights.windows(2) {
                assert_ne!(pair[0].from_client, pair[1].from_client, "{cfg:?}");
            }
        }
    }

    #[test]
    fn tls13_is_one_round_trip_shorter_than_tls12() {
        assert_eq!(handshake_flights(&dot_config()).len(), 3);
        let tls12 = TlsConfig { version: TlsVersion::Tls12, ..dot_config() };
        assert_eq!(handshake_flights(&tls12).len(), 4);
    }

    #[test]
    fn certificates_dominate_a_full_handshake() {
        let cfg = dot_config();
        let chain: usize = cfg.cert_chain.iter().sum();
        let total = handshake_bytes(&cfg);
        assert!(total > chain, "handshake {total} must carry the {chain}-byte chain");
        // Within the right order of magnitude of a real TLS 1.3 handshake.
        assert!((2000..8000).contains(&total), "total {total}");
    }

    #[test]
    fn resumption_elides_the_certificate_chain() {
        for version in [TlsVersion::Tls12, TlsVersion::Tls13] {
            let full = TlsConfig { version, ..dot_config() };
            let resumed = TlsConfig { resumption: true, ..full.clone() };
            let saved = handshake_bytes(&full) as i64 - handshake_bytes(&resumed) as i64;
            let chain: i64 = full.cert_chain.iter().sum::<usize>() as i64;
            assert!(saved >= chain, "{version:?}: saved {saved} < chain {chain}");
        }
    }

    #[test]
    fn sni_and_alpn_lengths_are_on_the_wire() {
        let base = TlsConfig::default();
        let with_sni = TlsConfig { sni: "a".repeat(30), ..base.clone() };
        assert_eq!(handshake_bytes(&with_sni), handshake_bytes(&base) + 9 + 30);
        let with_alpn = base.clone().alpn("dot");
        // Client offer + TLS 1.3 has no plaintext ALPN echo in ServerHello.
        assert_eq!(handshake_bytes(&with_alpn), handshake_bytes(&base) + 6 + 4);
    }

    #[test]
    fn wrap_splits_at_the_record_boundary() {
        assert!(wrap(0).is_empty());
        assert_eq!(wrap(100), vec![TlsRecord { payload: 100 }]);
        let two = wrap(MAX_PLAINTEXT + 1);
        assert_eq!(two.len(), 2);
        assert_eq!(two[0].payload, MAX_PLAINTEXT);
        assert_eq!(two[1].payload, 1);
        assert_eq!(framed_len(100), 100 + 21);
        assert_eq!(framed_len(MAX_PLAINTEXT + 1), MAX_PLAINTEXT + 1 + 2 * 21);
    }

    #[test]
    fn seal_then_deframe_round_trips_across_partial_pushes() {
        let msg: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
        let mut stream = Vec::new();
        for rec in seal(&msg) {
            stream.extend_from_slice(&rec.header);
            stream.extend_from_slice(&rec.plaintext);
            stream.extend_from_slice(&rec.tag);
        }
        assert_eq!(stream.len(), framed_len(msg.len()));
        let mut deframer = Deframer::new();
        let mut out = Vec::new();
        // Push in awkward 997-byte chunks to exercise partial records.
        for chunk in stream.chunks(997) {
            deframer.push(chunk);
            while let Some(p) = deframer.next_plaintext() {
                out.extend_from_slice(&p);
            }
        }
        assert_eq!(out, msg);
        assert_eq!(deframer.buffered(), 0);
    }

    #[test]
    fn deframer_tolerates_a_record_shorter_than_the_tag() {
        // Length field 5 < the 16-byte tag: a real stack would abort the
        // connection; the byte model consumes it as an empty plaintext and
        // keeps parsing whatever follows.
        let mut d = Deframer::new();
        d.push(&[0x17, 0x03, 0x03, 0x00, 0x05, 1, 2, 3, 4, 5]);
        assert_eq!(d.next_plaintext(), Some(Vec::new()));
        assert_eq!(d.buffered(), 0);
        for rec in seal(&[9; 8]) {
            d.push(&rec.header);
            d.push(&rec.plaintext);
            d.push(&rec.tag);
        }
        assert_eq!(d.next_plaintext(), Some(vec![9; 8]));
    }

    #[test]
    fn sealed_header_length_field_covers_payload_and_tag() {
        let recs = seal(&[7; 10]);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].header, [0x17, 0x03, 0x03, 0x00, 26]);
    }

    #[test]
    fn model_is_deterministic() {
        let cfg = dot_config();
        assert_eq!(handshake_flights(&cfg), handshake_flights(&cfg));
    }
}
