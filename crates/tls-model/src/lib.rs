//! TLS handshake and record-layer byte model (under construction).
//!
//! # Planned design
//!
//! A byte-count model of TLS 1.2 and 1.3 — not a cryptographic
//! implementation: handshake transcripts with realistic message sizes
//! (ClientHello with SNI/ALPN, certificate chains of configurable length,
//! session resumption and TLS 1.3 0-RTT), plus per-record framing overhead
//! (5-byte header + AEAD tag) applied to application writes. The model
//! exposes a `wrap(bytes) -> records` interface the DoT/DoH clients call,
//! tagging everything `LayerTag::Tls` so handshake amortisation across
//! resolutions is measurable exactly as the paper measures it.

#![forbid(unsafe_code)]
