//! TLS handshake and record-layer byte model (under construction).
