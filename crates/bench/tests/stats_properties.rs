//! Property tests for the stats layer: the interpolating percentile and
//! the bootstrap CI are checked against brute-force references over many
//! seeded random sample sets, not just hand-picked fixtures.

use dohmark::netsim::SimRng;
use dohmark_bench::stats::{bootstrap_ci, mean, median, percentile, summarize};

/// Brute-force percentile: sort, then linearly interpolate between the
/// two ranks bracketing `p/100 * (n - 1)`. Written independently of the
/// library's implementation (indexing instead of fold) so a shared bug
/// can't hide.
fn reference_percentile(samples: &[f64], p: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    sorted[lo] + (sorted[hi] - sorted[lo]) * (rank - lo as f64)
}

fn random_samples(rng: &mut SimRng, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.next_f64() * 1000.0 - 300.0).collect()
}

#[test]
fn percentile_matches_brute_force_reference_on_random_samples() {
    let mut rng = SimRng::new(0x57A75);
    for len in [1, 2, 3, 7, 64, 501] {
        for _ in 0..20 {
            let samples = random_samples(&mut rng, len);
            for p in [0.0, 5.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
                let got = percentile(&samples, p);
                let want = reference_percentile(&samples, p);
                assert!(
                    (got - want).abs() < 1e-9,
                    "percentile({p}) over {len} samples: got {got}, reference {want}"
                );
            }
        }
    }
}

#[test]
fn percentile_is_bounded_and_monotone_in_p() {
    let mut rng = SimRng::new(0xB0B);
    for _ in 0..50 {
        let samples = random_samples(&mut rng, 33);
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut last = f64::NEG_INFINITY;
        for p in 0..=100 {
            let v = percentile(&samples, f64::from(p));
            assert!(v >= last, "percentile must be monotone in p");
            assert!((min..=max).contains(&v), "percentile must stay within the sample range");
            last = v;
        }
        assert_eq!(percentile(&samples, 0.0), min);
        assert_eq!(percentile(&samples, 100.0), max);
        assert_eq!(median(&samples), percentile(&samples, 50.0));
    }
}

#[test]
fn bootstrap_ci_brackets_the_mean_and_tightens_with_narrow_data() {
    let mut rng = SimRng::new(0xC1);
    for _ in 0..20 {
        let samples = random_samples(&mut rng, 40);
        let m = mean(&samples);
        let (lo, hi) = bootstrap_ci(&samples, 256, 0.95, &mut SimRng::new(1));
        assert!(lo <= hi, "CI must be ordered");
        // Resample means are means of draws from the sample, so the band
        // can never escape the sample range, and it must bracket the
        // observed mean (the mean is itself a possible resample mean).
        assert!(lo <= m && m <= hi, "CI [{lo}, {hi}] must bracket the sample mean {m}");
    }
    // Constant data: every resample mean is the constant.
    let flat = vec![42.0; 16];
    assert_eq!(bootstrap_ci(&flat, 256, 0.95, &mut SimRng::new(1)), (42.0, 42.0));
}

#[test]
fn bootstrap_ci_narrows_as_samples_grow() {
    // With 4x the samples of the same distribution the resample means
    // concentrate, so the band should be distinctly narrower.
    let mut rng = SimRng::new(0xD0);
    let small = random_samples(&mut rng, 25);
    let large: Vec<f64> = (0..16).flat_map(|_| small.clone()).collect();
    let (lo_s, hi_s) = bootstrap_ci(&small, 512, 0.95, &mut SimRng::new(2));
    let (lo_l, hi_l) = bootstrap_ci(&large, 512, 0.95, &mut SimRng::new(2));
    assert!(
        (hi_l - lo_l) < (hi_s - lo_s) * 0.6,
        "400-sample band [{lo_l}, {hi_l}] should be well under the 25-sample band [{lo_s}, {hi_s}]"
    );
}

#[test]
fn summarize_agrees_with_its_parts() {
    let mut rng = SimRng::new(0xE0);
    let samples = random_samples(&mut rng, 80);
    let summary = summarize(&samples);
    assert_eq!(summary.n, 80);
    assert_eq!(summary.mean, mean(&samples));
    assert_eq!(summary.median, median(&samples));
    assert_eq!(summary.p5, percentile(&samples, 5.0));
    assert_eq!(summary.p95, percentile(&samples, 95.0));
    assert_eq!(summary.p99, percentile(&samples, 99.0));
    assert!(summary.ci95.0 <= summary.mean && summary.mean <= summary.ci95.1);
}
