//! The sweep runner's core promise: the rendered report is a pure
//! function of the spec — worker count and scheduling interleaving must
//! never leak into the output. The same `SweepSpec` at `threads = 1`,
//! `2` and `8` must render byte-identical JSON.

use dohmark::doh::{ReusePolicy, TransportConfig, TransportKind};
use dohmark_bench::{FleetCell, FleetConfig, MatrixCell, Report, SweepSpec, Value};

/// A mixed matrix + fleet sweep, small enough to run three times in the
/// test suite but with more tasks than workers so stealing actually
/// interleaves cells.
fn render(threads: usize) -> String {
    let fleet = FleetCell::new(FleetConfig::new(
        TransportConfig::new(TransportKind::Do53, ReusePolicy::Fresh),
        40,
        16,
    ))
    .expect("a 40-client fleet fits the txn-id space");
    let sweep = SweepSpec::new()
        .cells(
            TransportConfig::matrix()
                .into_iter()
                .take(4)
                .map(|cfg| Box::new(MatrixCell { cfg, resolutions: 6 }) as _),
        )
        .cell(fleet)
        .seeds(1..=5)
        .threads(threads)
        .run();
    Report::new("determinism_probe")
        .meta("seeds", Value::U64(5))
        .stats(&["bytes_per_resolution"])
        .render(&sweep)
}

#[test]
fn sweep_reports_are_byte_identical_across_thread_counts() {
    let serial = render(1);
    assert!(
        serial.contains("\"p5\"") && serial.contains("\"ci95_hi\""),
        "stats bands must be present in the probe report"
    );
    for threads in [2, 8] {
        let parallel = render(threads);
        assert_eq!(serial, parallel, "threads={threads} must render byte-identically to threads=1");
    }
}
