//! The paper's page-load claims, asserted end-to-end on the real
//! fig2/fig6 cell machinery:
//!
//! * **Figure 2 (HOL blocking):** page-load time rises with link loss on
//!   every transport, and on DoH-h2 — one multiplexed TCP connection, so
//!   a lost segment stalls every in-flight query — it rises strictly
//!   faster than on Do53, whose datagrams are independent.
//! * **Figure 6 (transport indifference):** at zero loss all four
//!   transports load the same pages within a narrow band, because DNS
//!   wait is a small slice of the dependency-tree makespan.
//! * **Determinism:** the page-load sweep renders byte-identically at
//!   `threads = 1` and `threads = 8`.

use dohmark::doh::{TransportConfig, TransportKind};
use dohmark::netsim::LinkConfig;
use dohmark_bench::{
    pageload_transports, run_pageload_cell, PageloadCell, PageloadConfig, Report, SweepSpec, Value,
};

const PAGES: usize = 8;
const SEEDS: std::ops::RangeInclusive<u64> = 1..=4;

/// Mean page-load time for one transport at one loss rate, averaged
/// over seeds and pages.
fn mean_pageload_ms(transport: &TransportConfig, loss: f64) -> f64 {
    let mut cfg = PageloadConfig::new(transport.clone(), "probe");
    cfg.transport.link = LinkConfig::clean_broadband().loss(loss);
    cfg.pages = PAGES;
    let samples: Vec<f64> = SEEDS
        .map(|seed| {
            let run = run_pageload_cell(&cfg, seed).expect("probe fits the txn space");
            assert_eq!(run.unresolved, 0, "{} loss {loss} seed {seed}", transport.label());
            run.mean_page_load_ms
        })
        .collect();
    samples.iter().sum::<f64>() / samples.len() as f64
}

fn transport(kind: TransportKind) -> TransportConfig {
    pageload_transports()
        .into_iter()
        .find(|cfg| cfg.kind == kind)
        .expect("every kind is a pageload transport")
}

#[test]
fn fig2_hol_blocking_hits_doh_h2_harder_than_do53() {
    let losses = [0.0, 0.02, 0.04];
    let do53: Vec<f64> =
        losses.iter().map(|&l| mean_pageload_ms(&transport(TransportKind::Do53), l)).collect();
    let h2: Vec<f64> =
        losses.iter().map(|&l| mean_pageload_ms(&transport(TransportKind::DohH2), l)).collect();

    // Loss slows pages down on both transports…
    assert!(do53.windows(2).all(|w| w[0] < w[1]), "do53 not rising with loss: {do53:?}");
    assert!(h2.windows(2).all(|w| w[0] < w[1]), "doh-h2 not rising with loss: {h2:?}");
    // …but head-of-line blocking makes the h2 climb strictly steeper at
    // every rung of the ladder.
    for i in 1..losses.len() {
        let d_do53 = do53[i] - do53[0];
        let d_h2 = h2[i] - h2[0];
        assert!(
            d_h2 > d_do53,
            "at loss {} doh-h2 climbed {d_h2:.1} ms but do53 {d_do53:.1} ms — \
             HOL blocking should hit the multiplexed transport harder",
            losses[i]
        );
    }
}

#[test]
fn fig6_transports_sit_in_a_narrow_band_at_zero_loss() {
    let means: Vec<(String, f64)> =
        pageload_transports().iter().map(|cfg| (cfg.label(), mean_pageload_ms(cfg, 0.0))).collect();
    let lo = means.iter().map(|(_, m)| *m).fold(f64::INFINITY, f64::min);
    let hi = means.iter().map(|(_, m)| *m).fold(0.0, f64::max);
    // The paper's Figure 6: resolver transport barely moves page-load
    // time. 5% spread is generous — the measured gap is under 2%.
    assert!(hi <= lo * 1.05, "transports should sit within a 5% band at zero loss: {means:?}");
    // The experiment is not vacuous: pages do take real time.
    assert!(lo > 10.0, "pages should take tens of ms: {means:?}");
}

#[test]
fn makespan_is_monotone_in_link_loss_for_every_transport() {
    // The satellite property test: more loss never speeds a page up, on
    // any transport, averaged over seeds and pages to wash out jitter in
    // which packets each loss rate happens to drop.
    let losses = [0.0, 0.03, 0.08];
    for cfg in pageload_transports() {
        let means: Vec<f64> = losses.iter().map(|&l| mean_pageload_ms(&cfg, l)).collect();
        assert!(
            means.windows(2).all(|w| w[0] <= w[1]),
            "{}: makespan must not shrink as loss grows: {means:?}",
            cfg.label()
        );
    }
}

#[test]
fn pageload_sweep_renders_byte_identically_across_thread_counts() {
    let render = |threads: usize| {
        let mut spec = SweepSpec::new();
        for transport in pageload_transports() {
            for (label, loss) in [("clean_broadband", 0.0), ("loss_2pct", 0.02)] {
                let mut cfg = PageloadConfig::new(transport.clone(), label);
                cfg.transport.link = LinkConfig::clean_broadband().loss(loss);
                cfg.pages = 4;
                spec = spec.cell(PageloadCell::new(cfg).expect("probe fits the txn space"));
            }
        }
        let sweep = spec.seeds(1..=3).threads(threads).run();
        Report::new("pageload_determinism_probe")
            .meta("seeds", Value::U64(3))
            .columns(&["mean_page_load_ms", "page_load_ms", "unresolved"])
            .stats(&["mean_page_load_ms"])
            .render(&sweep)
    };
    let serial = render(1);
    assert!(serial.contains("\"page_load_ms\""), "probe must carry the per-page arrays");
    assert_eq!(serial, render(8), "threads=8 must render byte-identically to threads=1");
}
