//! Scale + determinism guarantees for the addressed-routing fleet
//! harness: a 1,000-stub-client topology sharing one caching recursive
//! resolver must replay bit for bit under the same seed, on every
//! transport of the matrix.

use dohmark::netsim::SimDuration;
use dohmark_bench::{fleet_transports, run_fleet_cell, FleetConfig};

/// One thousand clients, one query each: big enough to exercise the
/// registry's addressed dispatch across thousands of handles, small
/// enough to replay twice per seed in the test suite.
fn thousand_client_cell(transport: dohmark::doh::TransportConfig) -> FleetConfig {
    FleetConfig {
        queries_per_client: 1,
        mean_gap: SimDuration::from_millis(100),
        ..FleetConfig::new(transport, 1000, 200)
    }
}

#[test]
fn thousand_client_fleet_is_bit_for_bit_deterministic_on_every_transport() {
    for transport in fleet_transports() {
        let cfg = thousand_client_cell(transport);
        let mut per_seed = Vec::new();
        for seed in [11u64, 12] {
            let first = run_fleet_cell(&cfg, seed).expect("1,000 queries fit the txn-id space");
            let second = run_fleet_cell(&cfg, seed).expect("1,000 queries fit the txn-id space");
            assert_eq!(first, second, "{} seed {seed} must replay bit for bit", first.label);
            assert_eq!(first.queries, 1000);
            assert_eq!(
                first.cache_hits + first.cache_misses,
                1000,
                "{} seed {seed}: every query must hit the resolver cache path",
                first.label
            );
            assert!(first.hit_ratio > 0.0, "a shared cache over 200 names must hit");
            assert!(first.distinct_names <= 200, "names come from the 200-name universe");
            per_seed.push(first);
        }
        assert_ne!(
            (per_seed[0].distinct_names, per_seed[0].total_bytes),
            (per_seed[1].distinct_names, per_seed[1].total_bytes),
            "{}: different seeds must draw different workloads",
            per_seed[0].label
        );
    }
}
