//! The parallel sweep runner behind every figure harness.
//!
//! A sweep is a (cell × seed) grid of independent deterministic
//! simulations — embarrassingly parallel, in the portfolio/worker style.
//! The pieces:
//!
//! * [`Cell`] — one experiment configuration that can run under any seed.
//!   Both the transport-matrix runner ([`MatrixCell`] over
//!   [`run_matrix_cell`](crate::run_matrix_cell)) and the fleet runner
//!   ([`FleetCell`] over [`run_fleet_cell`](crate::run_fleet_cell))
//!   implement it, so one runner drives every experiment shape.
//! * [`SweepSpec`] — the builder: cells, seeds, worker threads.
//! * [`SweepReport`] — results in **canonical (cell, seed) order**,
//!   independent of worker interleaving: workers pull tasks from a shared
//!   atomic cursor (work stealing from one global queue) and tag each
//!   outcome with its grid index, so `threads = 1` and `threads = N`
//!   produce bit-identical reports — asserted by the cross-thread
//!   determinism tests and cheap to re-check in any harness.
//!
//! Worker threads are `std::thread` scoped spawns; the runner adds no
//! dependencies and owns no global state.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use crate::report::Value;

/// Stable identifier of one sweep cell — keys result rows and stats.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(String);

impl CellId {
    /// Wraps a label (cell ids must be unique within one sweep).
    pub fn new(label: impl Into<String>) -> CellId {
        CellId(label.into())
    }

    /// The label as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// What one (cell, seed) run produced: identity fields every row repeats
/// (transport, reuse, …) and named measurement fields the harness selects
/// columns and statistics from.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// Identifying fields, always emitted on every report row.
    pub identity: Vec<(String, Value)>,
    /// Measured fields, selectable as report columns; numeric ones
    /// ([`Value::as_f64`]) feed the stats layer.
    pub fields: Vec<(String, Value)>,
}

impl CellOutcome {
    /// Looks up a measurement field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// One experiment configuration, runnable under any seed.
///
/// `Sync` because a sweep shares each cell immutably across worker
/// threads; `run` must be deterministic in `seed` (the cross-thread
/// byte-identity guarantee rests on it).
pub trait Cell: Sync {
    /// Stable unique id of this cell within its sweep.
    fn id(&self) -> CellId;

    /// Runs the experiment under `seed`.
    fn run(&self, seed: u64) -> CellOutcome;
}

/// A transport-matrix cell: one [`TransportConfig`](dohmark::doh::TransportConfig) resolving a seeded
/// Poisson workload of `resolutions` queries
/// (via [`run_matrix_cell`](crate::run_matrix_cell)).
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// The transport cell to drive.
    pub cfg: dohmark::doh::TransportConfig,
    /// Queries resolved per run.
    pub resolutions: u16,
}

impl Cell for MatrixCell {
    fn id(&self) -> CellId {
        CellId::new(self.cfg.label())
    }

    fn run(&self, seed: u64) -> CellOutcome {
        crate::run_matrix_cell(&self.cfg, seed, self.resolutions).outcome()
    }
}

/// A fleet cell: `clients` stubs sharing one caching recursive resolver
/// (via [`run_fleet_cell`](crate::run_fleet_cell)). Construction
/// validates the transaction-id budget up front, so `run` cannot hit the
/// typed [`TxnSpaceExhausted`](crate::TxnSpaceExhausted) error mid-sweep.
#[derive(Debug, Clone)]
pub struct FleetCell {
    cfg: crate::FleetConfig,
}

impl FleetCell {
    /// Wraps a validated fleet configuration; errors if
    /// `clients × queries_per_client` exceeds the u16 transaction-id
    /// space (see [`MAX_FLEET_QUERIES`](crate::MAX_FLEET_QUERIES)).
    pub fn new(cfg: crate::FleetConfig) -> Result<FleetCell, crate::TxnSpaceExhausted> {
        cfg.check_txn_space()?;
        Ok(FleetCell { cfg })
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &crate::FleetConfig {
        &self.cfg
    }
}

impl Cell for FleetCell {
    fn id(&self) -> CellId {
        CellId::new(format!("{} universe={}", self.cfg.transport.label(), self.cfg.universe))
    }

    fn run(&self, seed: u64) -> CellOutcome {
        crate::run_fleet_cell(&self.cfg, seed)
            .expect("txn space validated at construction")
            .outcome()
    }
}

/// A page-load cell: `pages` dependency-tree pages loaded through one
/// transport over one named link profile
/// (via [`run_pageload_cell`](crate::run_pageload_cell)). Construction
/// validates the transaction-id budget up front, like [`FleetCell`].
#[derive(Debug, Clone)]
pub struct PageloadCell {
    cfg: crate::PageloadConfig,
}

impl PageloadCell {
    /// Wraps a validated page-load configuration; errors if
    /// `pages × SiteModel::MAX_DOMAINS` exceeds the u16 transaction-id
    /// space (see [`MAX_FLEET_QUERIES`](crate::MAX_FLEET_QUERIES)).
    pub fn new(cfg: crate::PageloadConfig) -> Result<PageloadCell, crate::TxnSpaceExhausted> {
        cfg.check_txn_space()?;
        Ok(PageloadCell { cfg })
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &crate::PageloadConfig {
        &self.cfg
    }
}

impl Cell for PageloadCell {
    fn id(&self) -> CellId {
        CellId::new(format!("{} {}", self.cfg.transport.label(), self.cfg.link_label))
    }

    fn run(&self, seed: u64) -> CellOutcome {
        crate::run_pageload_cell(&self.cfg, seed)
            .expect("txn space validated at construction")
            .outcome()
    }
}

/// A pure-workload cell for Figure 1: draws `pages` pages from a seeded
/// [`SiteModel`](dohmark::workload::SiteModel) and reports the
/// DNS-queries-per-page distribution — no simulator, no transport; the
/// quantity is a property of the site model alone.
#[derive(Debug, Clone)]
pub struct SitePagesCell {
    /// Site-model universe (distinct sites).
    pub sites: usize,
    /// Zipf popularity exponent over site ranks.
    pub exponent: f64,
    /// Pages sampled per run.
    pub pages: usize,
}

impl Cell for SitePagesCell {
    fn id(&self) -> CellId {
        CellId::new(format!("sites={} exponent={:.2}", self.sites, self.exponent))
    }

    fn run(&self, seed: u64) -> CellOutcome {
        let zone = dohmark::dns::Name::parse("sites.dohmark.test").expect("static name parses");
        let mut rng = dohmark::netsim::SimRng::new(seed);
        let mut model =
            dohmark::workload::SiteModel::new(&mut rng, &zone, self.sites, self.exponent);
        let pages: Vec<_> = (0..self.pages).map(|_| model.next_page()).collect();
        let queries: Vec<f64> = pages.iter().map(|p| p.dns_queries() as f64).collect();
        let resources: Vec<f64> = pages.iter().map(|p| p.resources.len() as f64).collect();
        let depths: Vec<f64> = pages.iter().map(|p| p.depth() as f64).collect();
        CellOutcome {
            identity: vec![
                ("sites".to_string(), Value::U64(self.sites as u64)),
                ("exponent".to_string(), Value::Fixed(self.exponent, 2)),
                ("pages".to_string(), Value::U64(self.pages as u64)),
            ],
            fields: vec![
                ("mean_queries_per_page".to_string(), Value::fixed2(crate::stats::mean(&queries))),
                (
                    "median_queries_per_page".to_string(),
                    Value::fixed2(crate::stats::median(&queries)),
                ),
                (
                    "p95_queries_per_page".to_string(),
                    Value::fixed2(crate::stats::percentile(&queries, 95.0)),
                ),
                (
                    "max_queries_per_page".to_string(),
                    Value::U64(pages.iter().map(|p| p.dns_queries()).max().unwrap_or(0) as u64),
                ),
                (
                    "mean_resources_per_page".to_string(),
                    Value::fixed2(crate::stats::mean(&resources)),
                ),
                ("mean_depth".to_string(), Value::fixed2(crate::stats::mean(&depths))),
                (
                    "queries_per_page".to_string(),
                    Value::Array(
                        pages.iter().map(|p| Value::U64(p.dns_queries() as u64)).collect(),
                    ),
                ),
            ],
        }
    }
}

/// A pure-workload cell for the workload-stats table: generates a seeded
/// [`FleetSchedule`](dohmark::workload::FleetSchedule) and reports its
/// Zipf/fleet summary statistics — total and distinct names, the
/// name-reuse ratio that upper-bounds any cache hit rate, and the
/// schedule's time span.
#[derive(Debug, Clone)]
pub struct WorkloadStatsCell {
    /// Fleet size.
    pub clients: usize,
    /// Queries each client issues.
    pub queries_per_client: usize,
    /// Zipf name-universe size.
    pub universe: usize,
    /// Zipf popularity exponent.
    pub exponent: f64,
}

impl Cell for WorkloadStatsCell {
    fn id(&self) -> CellId {
        CellId::new(format!("clients={} universe={}", self.clients, self.universe))
    }

    fn run(&self, seed: u64) -> CellOutcome {
        use dohmark::netsim::{SimDuration, SimTime};
        let zone = dohmark::dns::Name::parse("dohmark.test").expect("static name parses");
        let mut rng = dohmark::netsim::SimRng::new(seed);
        let schedule = dohmark::workload::FleetSchedule::generate(
            &mut rng,
            self.clients,
            SimDuration::from_millis(200),
            self.queries_per_client,
            &zone,
            self.universe,
            self.exponent,
        );
        let total = schedule.len();
        let distinct = schedule.distinct_names();
        let span =
            schedule.queries.last().map_or(SimDuration::ZERO, |(at, _, _)| *at - SimTime::ZERO);
        CellOutcome {
            identity: vec![
                ("clients".to_string(), Value::U64(self.clients as u64)),
                ("queries_per_client".to_string(), Value::U64(self.queries_per_client as u64)),
                ("universe".to_string(), Value::U64(self.universe as u64)),
                ("exponent".to_string(), Value::Fixed(self.exponent, 2)),
            ],
            fields: vec![
                ("queries".to_string(), Value::U64(total as u64)),
                ("distinct_names".to_string(), Value::U64(distinct as u64)),
                (
                    "reuse_ratio".to_string(),
                    Value::Fixed(1.0 - distinct as f64 / (total as f64).max(1.0), 4),
                ),
                ("span_ms".to_string(), Value::fixed2(span.as_nanos() as f64 / 1e6)),
            ],
        }
    }
}

/// Builder for one sweep: which cells, which seeds, how many workers.
#[derive(Default)]
pub struct SweepSpec {
    cells: Vec<Box<dyn Cell>>,
    seeds: Vec<u64>,
    threads: usize,
}

impl SweepSpec {
    /// An empty spec (no cells, no seeds, one thread).
    pub fn new() -> SweepSpec {
        SweepSpec { cells: Vec::new(), seeds: Vec::new(), threads: 1 }
    }

    /// Appends one cell.
    pub fn cell(mut self, cell: impl Cell + 'static) -> SweepSpec {
        self.cells.push(Box::new(cell));
        self
    }

    /// Appends already-boxed cells (heterogeneous sweeps).
    pub fn cells(mut self, cells: impl IntoIterator<Item = Box<dyn Cell>>) -> SweepSpec {
        self.cells.extend(cells);
        self
    }

    /// Sets the seed list (replacing any previous one).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> SweepSpec {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the worker-thread count (clamped to ≥ 1). The thread count
    /// affects wall-clock only, never results.
    pub fn threads(mut self, threads: usize) -> SweepSpec {
        self.threads = threads.max(1);
        self
    }

    /// Runs every (cell, seed) task and returns results in canonical
    /// cell-major, seed-minor order.
    ///
    /// With `threads = 1` the tasks run inline on the caller's thread;
    /// otherwise scoped workers pull task indices from a shared atomic
    /// cursor until the grid is exhausted, and the outcomes are
    /// reassembled by index. A panicking cell propagates to the caller.
    pub fn run(&self) -> SweepReport {
        let tasks: Vec<(usize, usize)> = (0..self.cells.len())
            .flat_map(|c| (0..self.seeds.len()).map(move |s| (c, s)))
            .collect();
        let run_task = |&(c, s): &(usize, usize)| self.cells[c].run(self.seeds[s]);

        let outcomes: Vec<CellOutcome> = if self.threads == 1 {
            tasks.iter().map(run_task).collect()
        } else {
            let cursor = AtomicUsize::new(0);
            let mut slots: Vec<Option<CellOutcome>> = tasks.iter().map(|_| None).collect();
            let worker = || {
                let mut done = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(task) = tasks.get(i) else { break };
                    done.push((i, run_task(task)));
                }
                done
            };
            thread::scope(|scope| {
                // `&worker`, not `worker`: the same closure is spawned once
                // per thread, so it must be borrowed, not moved.
                #[allow(clippy::needless_borrows_for_generic_args)]
                let handles: Vec<_> = (0..self.threads.min(tasks.len().max(1)))
                    .map(|_| scope.spawn(&worker))
                    .collect();
                for handle in handles {
                    match handle.join() {
                        Ok(done) => {
                            for (i, outcome) in done {
                                slots[i] = Some(outcome);
                            }
                        }
                        Err(panic) => std::panic::resume_unwind(panic),
                    }
                }
            });
            slots.into_iter().map(|slot| slot.expect("every task ran exactly once")).collect()
        };

        let entries = tasks
            .iter()
            .zip(outcomes)
            .map(|(&(c, s), outcome)| SweepEntry {
                cell: self.cells[c].id(),
                seed: self.seeds[s],
                outcome,
            })
            .collect();
        SweepReport { entries }
    }
}

/// One completed (cell, seed) run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepEntry {
    /// The cell that ran.
    pub cell: CellId,
    /// The seed it ran under.
    pub seed: u64,
    /// What it measured.
    pub outcome: CellOutcome,
}

/// All results of one sweep, in canonical (cell, seed) order regardless
/// of how many worker threads produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Cell-major, seed-minor: all seeds of the first cell, then the
    /// second, …
    pub entries: Vec<SweepEntry>,
}

impl SweepReport {
    /// Distinct cell ids, in first-appearance order.
    pub fn cells(&self) -> Vec<CellId> {
        let mut cells: Vec<CellId> = Vec::new();
        for entry in &self.entries {
            if !cells.contains(&entry.cell) {
                cells.push(entry.cell.clone());
            }
        }
        cells
    }

    /// One cell's samples of a numeric metric, in seed order — what the
    /// stats layer summarises.
    pub fn metric(&self, cell: &CellId, field: &str) -> Vec<f64> {
        self.entries
            .iter()
            .filter(|e| &e.cell == cell)
            .filter_map(|e| e.outcome.field(field).and_then(Value::as_f64))
            .collect()
    }
}
