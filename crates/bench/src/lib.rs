//! Experiment harnesses reproducing the paper's figures and tables.
//!
//! One binary per figure/table lives under `src/bin/`; the shared
//! machinery sits here so it can be unit-tested: [`run_matrix_cell`]
//! resolves a seeded workload through one [`TransportConfig`] cell and
//! aggregates the per-resolution cost, and [`fig3_json`] serialises a set
//! of runs as a single-line JSON document (parseable by the in-tree
//! `dns-wire::jsontext` codec — the workspace has no serde).
//!
//! The `benches/` targets are plain-main harnesses kept buildable without
//! external benchmarking crates.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use dohmark::dns::Name;
use dohmark::doh::{
    advance_endpoints_until, build_pair, drain_endpoints, resolve_with, TransportConfig,
};
use dohmark::netsim::{Cost, LayerTag, Sim, SimDuration};
use dohmark::workload::QuerySchedule;

/// RNG stream label the harnesses draw their workload from.
pub const WORKLOAD_STREAM: u64 = 7;

/// Aggregated result of one (matrix cell × seed) run.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRun {
    /// Human-readable cell label (`dot persistent`, …).
    pub label: String,
    /// Transport label (`do53` / `dot` / `doh-h1` / `doh-h2`).
    pub transport: String,
    /// Reuse mode (`fresh` / `persistent`).
    pub reuse: String,
    /// Whether TLS resumption was on.
    pub resumed: bool,
    /// The seed the run used.
    pub seed: u64,
    /// Mean bytes per resolution, connection setup amortised.
    pub bytes_per_resolution: f64,
    /// Mean packets per resolution.
    pub packets_per_resolution: f64,
    /// Mean per-layer bytes per resolution, in [`LayerTag::ALL`] order.
    pub layers: [(LayerTag, f64); 6],
    /// Mean bytes over resolutions 2..=N only — the steady state of a
    /// persistent connection, without setup amortisation.
    pub steady_bytes_per_resolution: f64,
    /// HTTP header bytes charged to each query id, in order — the HPACK
    /// dynamic-table shrinkage signal on persistent DoH/2.
    pub header_bytes_per_query: Vec<u64>,
}

/// Resolves `resolutions` queries of a seeded Poisson workload through
/// the cell described by `cfg` and returns the per-resolution means
/// (attribution 0, the persistent-connection setup, is amortised across
/// all resolutions — the view the paper's Figure 3 plots).
pub fn run_matrix_cell(cfg: &TransportConfig, seed: u64, resolutions: u16) -> CellRun {
    let mut sim = Sim::new(seed);
    let (mut client, mut server) = build_pair(&mut sim, cfg);
    let mut rng = sim.split_rng(WORKLOAD_STREAM);
    let zone = Name::parse("dohmark.test").unwrap();
    let schedule = QuerySchedule::new(&mut rng, SimDuration::from_millis(50), 8, &zone);
    for (i, (at, name)) in schedule.take(usize::from(resolutions)).enumerate() {
        advance_endpoints_until(&mut sim, &mut [client.as_mut(), server.as_mut()], at);
        let id = i as u16 + 1;
        resolve_with(&mut sim, client.as_mut(), server.as_mut(), &name, id)
            .unwrap_or_else(|| panic!("{} seed {seed} id {id} did not resolve", cfg.label()));
    }
    client.close(&mut sim);
    drain_endpoints(&mut sim, &mut [client.as_mut(), server.as_mut()]);

    let mut sum = Cost::default();
    let mut steady_bytes = 0u64;
    for attr in 0..=u32::from(resolutions) {
        let c = sim.meter.cost(attr);
        sum.bytes += c.bytes;
        sum.packets += c.packets;
        sum.layers.merge(&c.layers);
        if attr >= 2 {
            steady_bytes += c.bytes;
        }
    }
    let n = f64::from(resolutions);
    CellRun {
        label: cfg.label(),
        transport: cfg.kind.label().to_string(),
        reuse: cfg.reuse.label().to_string(),
        resumed: cfg.resumption,
        seed,
        bytes_per_resolution: sum.bytes as f64 / n,
        packets_per_resolution: sum.packets as f64 / n,
        layers: LayerTag::ALL.map(|tag| (tag, sum.layers.get(tag) as f64 / n)),
        steady_bytes_per_resolution: steady_bytes as f64 / (n - 1.0).max(1.0),
        header_bytes_per_query: (1..=u32::from(resolutions))
            .map(|id| sim.meter.cost(id).layers.http_header)
            .collect(),
    }
}

/// Serialises Figure 3 runs as one line of JSON on the shape
/// `{"experiment": …, "resolutions": …, "rows": [{…}, …]}`.
pub fn fig3_json(resolutions: u16, runs: &[CellRun]) -> String {
    let mut out = String::from("{\"experiment\": \"fig3_bytes_per_resolution\", ");
    out.push_str(&format!("\"resolutions\": {resolutions}, \"rows\": ["));
    for (i, run) in runs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"cell\": ");
        dohmark::dns::jsontext::write_escaped(&mut out, &run.label);
        out.push_str(&format!(
            ", \"transport\": \"{}\", \"reuse\": \"{}\", \"resumed\": {}, \"seed\": {}, \
             \"bytes_per_resolution\": {:.2}, \"packets_per_resolution\": {:.2}, \"layers\": {{",
            run.transport,
            run.reuse,
            run.resumed,
            run.seed,
            run.bytes_per_resolution,
            run.packets_per_resolution
        ));
        for (j, (tag, bytes)) in run.layers.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {bytes:.2}", tag.label().to_lowercase()));
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dohmark::dns::jsontext;
    use dohmark::doh::{ReusePolicy, TransportKind};

    #[test]
    fn fig3_json_is_valid_jsontext_with_the_expected_shape() {
        let cells = [
            TransportConfig::new(TransportKind::Do53, ReusePolicy::Fresh),
            TransportConfig::new(TransportKind::DohH2, ReusePolicy::Persistent),
        ];
        let runs: Vec<CellRun> =
            cells.iter().flat_map(|c| (1..=2u64).map(|s| run_matrix_cell(c, s, 3))).collect();
        let doc = fig3_json(3, &runs);
        assert!(!doc.contains('\n'), "one line of JSON");
        let parsed = jsontext::parse(&doc).expect("harness output must parse");
        assert_eq!(
            parsed.get("experiment").and_then(|v| v.as_str()),
            Some("fig3_bytes_per_resolution")
        );
        assert_eq!(parsed.get("resolutions").and_then(|v| v.as_u64()), Some(3));
        let rows = parsed.get("rows").and_then(|v| v.as_array()).expect("rows array");
        assert_eq!(rows.len(), 4);
        let row = &rows[3];
        assert_eq!(row.get("transport").and_then(|v| v.as_str()), Some("doh-h2"));
        assert_eq!(row.get("reuse").and_then(|v| v.as_str()), Some("persistent"));
        assert_eq!(row.get("seed").and_then(|v| v.as_u64()), Some(2));
        let layers = row.get("layers").expect("layers object");
        for key in ["body", "hdr", "mgmt", "tls", "tcp", "dns"] {
            assert!(layers.get(key).is_some(), "missing layer {key}");
        }
    }

    #[test]
    fn runs_replay_bit_for_bit_per_seed() {
        let cfg = TransportConfig::new(TransportKind::Dot, ReusePolicy::Persistent);
        assert_eq!(run_matrix_cell(&cfg, 9, 4), run_matrix_cell(&cfg, 9, 4));
        assert_ne!(
            run_matrix_cell(&cfg, 9, 4).bytes_per_resolution,
            run_matrix_cell(&cfg, 10, 4).bytes_per_resolution
        );
    }
}
