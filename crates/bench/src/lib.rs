//! Experiment harnesses (under construction).
