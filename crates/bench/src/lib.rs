//! Experiment harnesses reproducing the paper's figures and tables.
//!
//! One binary per figure/table lives under `src/bin/`; the shared
//! machinery sits here so it can be unit-tested: [`run_matrix_cell`]
//! resolves a seeded workload through one [`TransportConfig`] cell and
//! aggregates the per-resolution cost, [`run_fleet_cell`] drives a whole
//! stub fleet against one shared caching recursive resolver, and the
//! `fig*_json` helpers serialise runs as single-line JSON documents
//! (parseable by the in-tree `dns-wire::jsontext` codec — the workspace
//! has no serde).
//!
//! The `benches/` targets are plain-main harnesses kept buildable without
//! external benchmarking crates.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use dohmark::dns::Name;
use dohmark::doh::{
    advance_endpoints_until, build_pair, drain_endpoints, resolve_with, Driver, RecursiveResolver,
    ReusePolicy, ServerBackend, TransportConfig, TransportKind, Zone,
};
use dohmark::netsim::{Cost, LayerTag, Sim, SimDuration};
use dohmark::workload::{FleetSchedule, QuerySchedule};

/// RNG stream label the harnesses draw their workload from.
pub const WORKLOAD_STREAM: u64 = 7;

/// Aggregated result of one (matrix cell × seed) run.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRun {
    /// Human-readable cell label (`dot persistent`, …).
    pub label: String,
    /// Transport label (`do53` / `dot` / `doh-h1` / `doh-h2`).
    pub transport: String,
    /// Reuse mode (`fresh` / `persistent`).
    pub reuse: String,
    /// Whether TLS resumption was on.
    pub resumed: bool,
    /// The seed the run used.
    pub seed: u64,
    /// Mean bytes per resolution, connection setup amortised.
    pub bytes_per_resolution: f64,
    /// Mean packets per resolution.
    pub packets_per_resolution: f64,
    /// Mean per-layer bytes per resolution, in [`LayerTag::ALL`] order.
    pub layers: [(LayerTag, f64); 6],
    /// Mean bytes over resolutions 2..=N only — the steady state of a
    /// persistent connection, without setup amortisation.
    pub steady_bytes_per_resolution: f64,
    /// HTTP header bytes charged to each query id, in order — the HPACK
    /// dynamic-table shrinkage signal on persistent DoH/2.
    pub header_bytes_per_query: Vec<u64>,
}

/// Resolves `resolutions` queries of a seeded Poisson workload through
/// the cell described by `cfg` and returns the per-resolution means
/// (attribution 0, the persistent-connection setup, is amortised across
/// all resolutions — the view the paper's Figure 3 plots).
pub fn run_matrix_cell(cfg: &TransportConfig, seed: u64, resolutions: u16) -> CellRun {
    let mut sim = Sim::new(seed);
    let (mut client, mut server) = build_pair(&mut sim, cfg);
    let mut rng = sim.split_rng(WORKLOAD_STREAM);
    let zone = Name::parse("dohmark.test").unwrap();
    let schedule = QuerySchedule::new(&mut rng, SimDuration::from_millis(50), 8, &zone);
    for (i, (at, name)) in schedule.take(usize::from(resolutions)).enumerate() {
        advance_endpoints_until(&mut sim, &mut [client.as_mut(), server.as_mut()], at);
        let id = i as u16 + 1;
        resolve_with(&mut sim, client.as_mut(), server.as_mut(), &name, id)
            .unwrap_or_else(|| panic!("{} seed {seed} id {id} did not resolve", cfg.label()));
    }
    client.close(&mut sim);
    drain_endpoints(&mut sim, &mut [client.as_mut(), server.as_mut()]);

    let mut sum = Cost::default();
    let mut steady_bytes = 0u64;
    for attr in 0..=u32::from(resolutions) {
        let c = sim.meter.cost(attr);
        sum.bytes += c.bytes;
        sum.packets += c.packets;
        sum.layers.merge(&c.layers);
        if attr >= 2 {
            steady_bytes += c.bytes;
        }
    }
    let n = f64::from(resolutions);
    CellRun {
        label: cfg.label(),
        transport: cfg.kind.label().to_string(),
        reuse: cfg.reuse.label().to_string(),
        resumed: cfg.resumption,
        seed,
        bytes_per_resolution: sum.bytes as f64 / n,
        packets_per_resolution: sum.packets as f64 / n,
        layers: LayerTag::ALL.map(|tag| (tag, sum.layers.get(tag) as f64 / n)),
        steady_bytes_per_resolution: steady_bytes as f64 / (n - 1.0).max(1.0),
        header_bytes_per_query: (1..=u32::from(resolutions))
            .map(|id| sim.meter.cost(id).layers.http_header)
            .collect(),
    }
}

/// Writes the identifying prefix every per-cell row shares:
/// `{"cell": …, "transport": …, "reuse": …, "resumed": …, "seed": …`.
fn push_cell_prefix(out: &mut String, run: &CellRun) {
    out.push_str("{\"cell\": ");
    dohmark::dns::jsontext::write_escaped(out, &run.label);
    out.push_str(&format!(
        ", \"transport\": \"{}\", \"reuse\": \"{}\", \"resumed\": {}, \"seed\": {}",
        run.transport, run.reuse, run.resumed, run.seed
    ));
}

/// Writes `run`'s per-layer byte means as a `"layers": {…}` object.
fn push_layers(out: &mut String, run: &CellRun) {
    out.push_str("\"layers\": {");
    for (j, (tag, bytes)) in run.layers.iter().enumerate() {
        if j > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {bytes:.2}", tag.label().to_lowercase()));
    }
    out.push('}');
}

/// Serialises Figure 3 runs as one line of JSON on the shape
/// `{"experiment": …, "resolutions": …, "rows": [{…}, …]}`.
pub fn fig3_json(resolutions: u16, runs: &[CellRun]) -> String {
    let mut out = String::from("{\"experiment\": \"fig3_bytes_per_resolution\", ");
    out.push_str(&format!("\"resolutions\": {resolutions}, \"rows\": ["));
    for (i, run) in runs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_cell_prefix(&mut out, run);
        out.push_str(&format!(
            ", \"bytes_per_resolution\": {:.2}, \"packets_per_resolution\": {:.2}, \
             \"steady_bytes_per_resolution\": {:.2}, ",
            run.bytes_per_resolution, run.packets_per_resolution, run.steady_bytes_per_resolution,
        ));
        push_layers(&mut out, run);
        out.push_str(", \"header_bytes_per_query\": [");
        for (j, bytes) in run.header_bytes_per_query.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&bytes.to_string());
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Serialises Figure 4 runs (packets per resolution) as one line of JSON
/// on the shape `{"experiment": …, "resolutions": …, "rows": [{…}, …]}`.
pub fn fig4_json(resolutions: u16, runs: &[CellRun]) -> String {
    let mut out = String::from("{\"experiment\": \"fig4_packets_per_resolution\", ");
    out.push_str(&format!("\"resolutions\": {resolutions}, \"rows\": ["));
    for (i, run) in runs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_cell_prefix(&mut out, run);
        out.push_str(&format!(
            ", \"packets_per_resolution\": {:.2}, \"bytes_per_packet\": {:.2}}}",
            run.packets_per_resolution,
            run.bytes_per_resolution / run.packets_per_resolution.max(1.0),
        ));
    }
    out.push_str("]}");
    out
}

/// Serialises Figure 5 runs (per-layer byte breakdown) as one line of
/// JSON on the shape `{"experiment": …, "resolutions": …, "rows": […]}`.
pub fn fig5_json(resolutions: u16, runs: &[CellRun]) -> String {
    let mut out = String::from("{\"experiment\": \"fig5_layer_breakdown\", ");
    out.push_str(&format!("\"resolutions\": {resolutions}, \"rows\": ["));
    for (i, run) in runs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_cell_prefix(&mut out, run);
        out.push_str(&format!(", \"bytes_per_resolution\": {:.2}, ", run.bytes_per_resolution));
        push_layers(&mut out, run);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Parameters of one fleet run: `clients` stub resolvers sharing one
/// caching recursive resolver (over the `transport` cell) which fetches
/// cache misses from a plain-Do53 authoritative upstream.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The stub-to-recursive transport cell.
    pub transport: TransportConfig,
    /// Number of stub clients, each on its own host.
    pub clients: usize,
    /// Queries each client issues (Poisson arrivals).
    pub queries_per_client: usize,
    /// Size of the shared Zipf name universe — the knob that sets the
    /// cache-hit ratio for a fixed query count.
    pub universe: usize,
    /// Zipf popularity exponent.
    pub exponent: f64,
    /// Resolver cache capacity, in entries.
    pub cache_capacity: usize,
    /// Mean per-client gap between queries.
    pub mean_gap: SimDuration,
}

impl FleetConfig {
    /// A fleet cell with the defaults the experiments use: 2 queries per
    /// client, Zipf exponent 1.0, a cache big enough to never evict and a
    /// 200 ms mean per-client gap.
    pub fn new(transport: TransportConfig, clients: usize, universe: usize) -> FleetConfig {
        FleetConfig {
            transport,
            clients,
            queries_per_client: 2,
            universe,
            exponent: 1.0,
            cache_capacity: 1 << 16,
            mean_gap: SimDuration::from_millis(200),
        }
    }
}

/// Aggregated result of one (fleet cell × seed) run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRun {
    /// Human-readable transport-cell label.
    pub label: String,
    /// Transport label (`do53` / `dot` / `doh-h1` / `doh-h2`).
    pub transport: String,
    /// Reuse mode (`fresh` / `persistent`).
    pub reuse: String,
    /// The seed the run used.
    pub seed: u64,
    /// Fleet size.
    pub clients: usize,
    /// Total resolutions driven.
    pub queries: usize,
    /// Zipf universe size the names were drawn from.
    pub universe: usize,
    /// Distinct names actually queried — the compulsory-miss floor.
    pub distinct_names: usize,
    /// Cache hits (positive + negative) at the recursive resolver.
    pub cache_hits: u64,
    /// Cache misses at the recursive resolver.
    pub cache_misses: u64,
    /// `cache_hits / (cache_hits + cache_misses)`.
    pub hit_ratio: f64,
    /// Upstream fetches the resolver issued (after coalescing).
    pub upstream_queries: u64,
    /// Bytes spent on the resolver-to-upstream leg (payload + IP/UDP
    /// headers, both directions).
    pub upstream_bytes: u64,
    /// All bytes the simulation put on any wire.
    pub total_bytes: u64,
    /// `total_bytes / queries` — the figure the cache-hit experiment
    /// plots against `hit_ratio`.
    pub bytes_per_resolution: f64,
    /// Bytes per resolution on the stub-to-recursive leg only.
    pub stub_bytes_per_resolution: f64,
}

/// Drives one fleet cell: builds `clients` stub hosts around a single
/// recursive resolver (shared cache, Do53 upstream with a synthetic
/// authoritative [`Zone`]), registers everything in a [`Driver`] for
/// addressed wake routing, and resolves a seeded [`FleetSchedule`] with
/// globally unique transaction ids. Deterministic in `seed`.
pub fn run_fleet_cell(cfg: &FleetConfig, seed: u64) -> FleetRun {
    let total = cfg.clients * cfg.queries_per_client;
    assert!(total < usize::from(u16::MAX), "transaction ids are u16");

    let mut sim = Sim::new(seed);
    let resolver = sim.add_host("resolver");
    let upstream = sim.add_host("upstream");
    sim.add_link(resolver, upstream, cfg.transport.link);

    let zone = Name::parse("dohmark.test").unwrap();
    let mut driver = Driver::new();
    let upstream_cfg = TransportConfig::new(TransportKind::Do53, ReusePolicy::Fresh);
    driver.register(&mut sim, |sim| {
        let backend =
            ServerBackend::Authoritative(Zone::synth(zone.clone(), cfg.transport.ttl, 60));
        upstream_cfg.build_server_with(sim, upstream, backend)
    });
    driver.register(&mut sim, |sim| {
        let recursive = RecursiveResolver::new(sim, resolver, (upstream, 53), cfg.cache_capacity);
        cfg.transport.build_server_with(sim, resolver, ServerBackend::Recursive(recursive))
    });
    let clients: Vec<_> = (0..cfg.clients)
        .map(|i| {
            let stub = sim.add_host(&format!("stub{i}"));
            sim.add_link(stub, resolver, cfg.transport.link);
            driver.register_resolver(&mut sim, |_| cfg.transport.build_client(stub, resolver))
        })
        .collect();

    let mut rng = sim.split_rng(WORKLOAD_STREAM);
    let schedule = FleetSchedule::generate(
        &mut rng,
        cfg.clients,
        cfg.mean_gap,
        cfg.queries_per_client,
        &zone,
        cfg.universe,
        cfg.exponent,
    );
    let distinct_names = schedule.distinct_names();
    for (i, (at, client, name)) in schedule.queries.iter().enumerate() {
        driver.advance_until(&mut sim, *at);
        let txn = i as u16 + 1;
        let response = driver.resolve(&mut sim, clients[*client], name, txn).unwrap_or_else(|| {
            panic!("{} seed {seed} txn {txn} did not resolve", cfg.transport.label())
        });
        assert_eq!(response.header.id, txn);
    }
    for &client in &clients {
        driver.close(&mut sim, client);
    }
    driver.run_until_quiescent(&mut sim);

    let cache_hits = sim.meter.counter("cache_hit") + sim.meter.counter("cache_negative_hit");
    let cache_misses = sim.meter.counter("cache_miss");
    let upstream_bytes = sim.meter.counter("upstream_bytes");
    let total_bytes = sim.meter.total().bytes;
    let n = total as f64;
    FleetRun {
        label: cfg.transport.label(),
        transport: cfg.transport.kind.label().to_string(),
        reuse: cfg.transport.reuse.label().to_string(),
        seed,
        clients: cfg.clients,
        queries: total,
        universe: cfg.universe,
        distinct_names,
        cache_hits,
        cache_misses,
        hit_ratio: cache_hits as f64 / (cache_hits + cache_misses).max(1) as f64,
        upstream_queries: sim.meter.counter("upstream_queries"),
        upstream_bytes,
        total_bytes,
        bytes_per_resolution: total_bytes as f64 / n,
        stub_bytes_per_resolution: total_bytes.saturating_sub(upstream_bytes) as f64 / n,
    }
}

/// Serialises cache-hit-cost runs as one line of JSON on the shape
/// `{"experiment": "fig_cache_hit_cost", "clients": …, "rows": […]}` —
/// each row pairs a transport cell's `hit_ratio` with its
/// `bytes_per_resolution`, the relation the experiment plots.
pub fn fig_cache_hit_cost_json(runs: &[FleetRun]) -> String {
    let mut out = String::from("{\"experiment\": \"fig_cache_hit_cost\", \"rows\": [");
    for (i, run) in runs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"cell\": ");
        dohmark::dns::jsontext::write_escaped(&mut out, &run.label);
        out.push_str(&format!(
            ", \"transport\": \"{}\", \"reuse\": \"{}\", \"seed\": {}, \"clients\": {}, \
             \"queries\": {}, \"universe\": {}, \"distinct_names\": {}, \"cache_hits\": {}, \
             \"cache_misses\": {}, \"hit_ratio\": {:.4}, \"upstream_queries\": {}, \
             \"upstream_bytes\": {}, \"total_bytes\": {}, \"bytes_per_resolution\": {:.2}, \
             \"stub_bytes_per_resolution\": {:.2}}}",
            run.transport,
            run.reuse,
            run.seed,
            run.clients,
            run.queries,
            run.universe,
            run.distinct_names,
            run.cache_hits,
            run.cache_misses,
            run.hit_ratio,
            run.upstream_queries,
            run.upstream_bytes,
            run.total_bytes,
            run.bytes_per_resolution,
            run.stub_bytes_per_resolution,
        ));
    }
    out.push_str("]}");
    out
}

/// The four transport cells the fleet experiments sweep: Do53 plus the
/// three encrypted transports on persistent connections (the deployment
/// shape a stub keeps to its recursive resolver).
pub fn fleet_transports() -> Vec<TransportConfig> {
    vec![
        TransportConfig::new(TransportKind::Do53, ReusePolicy::Fresh),
        TransportConfig::new(TransportKind::Dot, ReusePolicy::Persistent),
        TransportConfig::new(TransportKind::DohH1, ReusePolicy::Persistent),
        TransportConfig::new(TransportKind::DohH2, ReusePolicy::Persistent),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dohmark::dns::jsontext;
    use dohmark::doh::{ReusePolicy, TransportKind};

    #[test]
    fn fig3_json_is_valid_jsontext_with_the_expected_shape() {
        let cells = [
            TransportConfig::new(TransportKind::Do53, ReusePolicy::Fresh),
            TransportConfig::new(TransportKind::DohH2, ReusePolicy::Persistent),
        ];
        let runs: Vec<CellRun> =
            cells.iter().flat_map(|c| (1..=2u64).map(|s| run_matrix_cell(c, s, 3))).collect();
        let doc = fig3_json(3, &runs);
        assert!(!doc.contains('\n'), "one line of JSON");
        let parsed = jsontext::parse(&doc).expect("harness output must parse");
        assert_eq!(
            parsed.get("experiment").and_then(|v| v.as_str()),
            Some("fig3_bytes_per_resolution")
        );
        assert_eq!(parsed.get("resolutions").and_then(|v| v.as_u64()), Some(3));
        let rows = parsed.get("rows").and_then(|v| v.as_array()).expect("rows array");
        assert_eq!(rows.len(), 4);
        let row = &rows[3];
        assert_eq!(row.get("transport").and_then(|v| v.as_str()), Some("doh-h2"));
        assert_eq!(row.get("reuse").and_then(|v| v.as_str()), Some("persistent"));
        assert_eq!(row.get("seed").and_then(|v| v.as_u64()), Some(2));
        let layers = row.get("layers").expect("layers object");
        for key in ["body", "hdr", "mgmt", "tls", "tcp", "dns"] {
            assert!(layers.get(key).is_some(), "missing layer {key}");
        }
        assert!(
            row.get("steady_bytes_per_resolution").is_some(),
            "missing steady_bytes_per_resolution"
        );
        let headers = row
            .get("header_bytes_per_query")
            .and_then(|v| v.as_array())
            .expect("header_bytes_per_query array");
        assert_eq!(headers.len(), 3, "one header-bytes entry per query");
        assert!(headers[0].as_u64().unwrap() > 0, "doh-h2 queries carry header bytes");
    }

    #[test]
    fn fig4_and_fig5_json_are_valid_jsontext_with_their_expected_shapes() {
        let cfg = TransportConfig::new(TransportKind::Dot, ReusePolicy::Fresh);
        let runs = [run_matrix_cell(&cfg, 3, 3)];

        let fig4 = fig4_json(3, &runs);
        assert!(!fig4.contains('\n'));
        let parsed = jsontext::parse(&fig4).expect("fig4 output must parse");
        assert_eq!(
            parsed.get("experiment").and_then(|v| v.as_str()),
            Some("fig4_packets_per_resolution")
        );
        let rows = parsed.get("rows").and_then(|v| v.as_array()).expect("rows array");
        assert_eq!(rows.len(), 1);
        assert!(rows[0].get("packets_per_resolution").is_some());
        assert!(rows[0].get("bytes_per_packet").is_some());

        let fig5 = fig5_json(3, &runs);
        assert!(!fig5.contains('\n'));
        let parsed = jsontext::parse(&fig5).expect("fig5 output must parse");
        assert_eq!(parsed.get("experiment").and_then(|v| v.as_str()), Some("fig5_layer_breakdown"));
        let rows = parsed.get("rows").and_then(|v| v.as_array()).expect("rows array");
        let layers = rows[0].get("layers").expect("layers object");
        for key in ["body", "hdr", "mgmt", "tls", "tcp", "dns"] {
            assert!(layers.get(key).is_some(), "missing layer {key}");
        }
    }

    #[test]
    fn runs_replay_bit_for_bit_per_seed() {
        let cfg = TransportConfig::new(TransportKind::Dot, ReusePolicy::Persistent);
        assert_eq!(run_matrix_cell(&cfg, 9, 4), run_matrix_cell(&cfg, 9, 4));
        assert_ne!(
            run_matrix_cell(&cfg, 9, 4).bytes_per_resolution,
            run_matrix_cell(&cfg, 10, 4).bytes_per_resolution
        );
    }

    #[test]
    fn smaller_universe_means_higher_hit_ratio_and_fewer_bytes() {
        for transport in [
            TransportConfig::new(TransportKind::Do53, ReusePolicy::Fresh),
            TransportConfig::new(TransportKind::DohH2, ReusePolicy::Persistent),
        ] {
            let broad = run_fleet_cell(&FleetConfig::new(transport.clone(), 24, 500), 5);
            let narrow = run_fleet_cell(&FleetConfig::new(transport, 24, 4), 5);
            assert_eq!(broad.queries, 48);
            assert_eq!(broad.cache_hits + broad.cache_misses, 48);
            assert!(
                narrow.hit_ratio > broad.hit_ratio,
                "narrow universe must hit more: {} vs {}",
                narrow.hit_ratio,
                broad.hit_ratio
            );
            assert!(
                narrow.bytes_per_resolution < broad.bytes_per_resolution,
                "cache hits must save wire bytes: {} vs {}",
                narrow.bytes_per_resolution,
                broad.bytes_per_resolution
            );
            assert!(narrow.upstream_queries <= 4 + 1, "at most one fetch per distinct name");
        }
    }

    #[test]
    fn fig_cache_hit_cost_json_is_valid_jsontext_with_the_expected_shape() {
        let cfg = TransportConfig::new(TransportKind::Do53, ReusePolicy::Fresh);
        let runs = [
            run_fleet_cell(&FleetConfig::new(cfg.clone(), 10, 100), 1),
            run_fleet_cell(&FleetConfig::new(cfg, 10, 3), 1),
        ];
        let doc = fig_cache_hit_cost_json(&runs);
        assert!(!doc.contains('\n'), "one line of JSON");
        let parsed = jsontext::parse(&doc).expect("harness output must parse");
        assert_eq!(parsed.get("experiment").and_then(|v| v.as_str()), Some("fig_cache_hit_cost"));
        let rows = parsed.get("rows").and_then(|v| v.as_array()).expect("rows array");
        assert_eq!(rows.len(), 2);
        for row in rows {
            for key in [
                "cell",
                "transport",
                "universe",
                "distinct_names",
                "cache_hits",
                "cache_misses",
                "hit_ratio",
                "upstream_queries",
                "upstream_bytes",
                "bytes_per_resolution",
                "stub_bytes_per_resolution",
            ] {
                assert!(row.get(key).is_some(), "missing key {key}");
            }
        }
        assert_eq!(rows[0].get("universe").and_then(|v| v.as_u64()), Some(100));
        assert_eq!(rows[1].get("universe").and_then(|v| v.as_u64()), Some(3));
    }
}
