//! Experiment harnesses reproducing the paper's figures and tables.
//!
//! The crate is organised around the sweep API every figure binary sits
//! on:
//!
//! * [`sweep`] — the parallel sweep runner. A [`Cell`] is
//!   one experiment configuration runnable under any seed;
//!   [`SweepSpec`] fans a (cell × seed) grid out over
//!   `std::thread` scoped workers pulling from a shared cursor; the
//!   resulting [`SweepReport`] keeps canonical
//!   (cell, seed) order, so `threads = 1` and `threads = N` render
//!   byte-identical reports.
//! * [`stats`] — per-cell aggregation over seeds: mean, median,
//!   p5/p95/p99 percentiles and deterministic bootstrap 95% CI bands.
//! * [`report`] — the one shared jsontext emitter (the workspace has no
//!   serde): harnesses pick an experiment name, metadata, measurement
//!   columns and stats metrics; rows and bands render as a single line
//!   of JSON parseable by `dns-wire::jsontext`.
//! * [`cli`] — the `--seeds N --threads N --out PATH` flags every fig
//!   binary accepts.
//!
//! The simulation drivers feeding the cells live here:
//! [`run_matrix_cell`] resolves a seeded workload through one
//! [`TransportConfig`] cell registered in a [`Driver`], and
//! [`run_fleet_cell`] drives a whole stub fleet against one shared
//! caching recursive resolver. Both are deterministic in their seed —
//! the property the parallel runner rests on.
//!
//! The `benches/` targets are plain-main harnesses kept buildable without
//! external benchmarking crates.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cli;
pub mod report;
pub mod stats;
pub mod sweep;

pub use cli::SweepArgs;
pub use report::{Report, Value};
pub use sweep::{
    Cell, CellId, CellOutcome, FleetCell, MatrixCell, PageloadCell, SitePagesCell, SweepReport,
    SweepSpec, WorkloadStatsCell,
};

use dohmark::dns::Name;
use dohmark::doh::{
    Driver, RecursiveResolver, ReusePolicy, ServerBackend, TransportConfig, TransportKind,
    UdpRetry, Zone,
};
use dohmark::netsim::{Cost, LayerTag, Sim, SimDuration};
use dohmark::pageload::{load_page, FetchModel};
use dohmark::workload::{FleetSchedule, QuerySchedule, SiteModel};
use std::fmt;

/// RNG stream label the harnesses draw their workload from.
pub const WORKLOAD_STREAM: u64 = 7;

/// RNG stream label the page-load harness builds its site model from.
pub const SITE_STREAM: u64 = 8;

/// Aggregated result of one (matrix cell × seed) run.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRun {
    /// Human-readable cell label (`dot persistent`, …).
    pub label: String,
    /// Transport label (`do53` / `dot` / `doh-h1` / `doh-h2`).
    pub transport: String,
    /// Reuse mode (`fresh` / `persistent`).
    pub reuse: String,
    /// Whether TLS resumption was on.
    pub resumed: bool,
    /// The seed the run used.
    pub seed: u64,
    /// Mean bytes per resolution, connection setup amortised.
    pub bytes_per_resolution: f64,
    /// Mean packets per resolution.
    pub packets_per_resolution: f64,
    /// Mean per-layer bytes per resolution, in [`LayerTag::ALL`] order.
    pub layers: [(LayerTag, f64); 6],
    /// Mean bytes over resolutions 2..=N only — the steady state of a
    /// persistent connection, without setup amortisation.
    pub steady_bytes_per_resolution: f64,
    /// HTTP header bytes charged to each query id, in order — the HPACK
    /// dynamic-table shrinkage signal on persistent DoH/2.
    pub header_bytes_per_query: Vec<u64>,
}

impl CellRun {
    /// This run as a sweep outcome: identity fields every row repeats
    /// plus the selectable measurement columns (including the derived
    /// `bytes_per_packet`).
    pub fn outcome(&self) -> CellOutcome {
        let layers = Value::Object(
            self.layers
                .iter()
                .map(|(tag, bytes)| (tag.label().to_lowercase(), Value::fixed2(*bytes)))
                .collect(),
        );
        CellOutcome {
            identity: vec![
                ("transport".to_string(), Value::Str(self.transport.clone())),
                ("reuse".to_string(), Value::Str(self.reuse.clone())),
                ("resumed".to_string(), Value::Bool(self.resumed)),
            ],
            fields: vec![
                ("bytes_per_resolution".to_string(), Value::fixed2(self.bytes_per_resolution)),
                ("packets_per_resolution".to_string(), Value::fixed2(self.packets_per_resolution)),
                (
                    "bytes_per_packet".to_string(),
                    Value::fixed2(self.bytes_per_resolution / self.packets_per_resolution.max(1.0)),
                ),
                (
                    "steady_bytes_per_resolution".to_string(),
                    Value::fixed2(self.steady_bytes_per_resolution),
                ),
                ("layers".to_string(), layers),
                (
                    "header_bytes_per_query".to_string(),
                    Value::Array(
                        self.header_bytes_per_query.iter().map(|&b| Value::U64(b)).collect(),
                    ),
                ),
            ],
        }
    }
}

/// Resolves `resolutions` queries of a seeded Poisson workload through
/// the cell described by `cfg` — registered in a [`Driver`] with
/// addressed wake routing — and returns the per-resolution means
/// (attribution 0, the persistent-connection setup, is amortised across
/// all resolutions — the view the paper's Figure 3 plots).
pub fn run_matrix_cell(cfg: &TransportConfig, seed: u64, resolutions: u16) -> CellRun {
    let mut sim = Sim::new(seed);
    let stub = sim.add_host("stub");
    let resolver = sim.add_host("resolver");
    sim.add_link(stub, resolver, cfg.link);
    let mut driver = Driver::new();
    driver.register(&mut sim, |sim| cfg.build_server(sim, resolver));
    let client = driver.register_resolver(&mut sim, |_| cfg.build_client(stub, resolver));
    let mut rng = sim.split_rng(WORKLOAD_STREAM);
    let zone = Name::parse("dohmark.test").unwrap();
    let schedule = QuerySchedule::new(&mut rng, SimDuration::from_millis(50), 8, &zone);
    for (i, (at, name)) in schedule.take(usize::from(resolutions)).enumerate() {
        driver.advance_until(&mut sim, at);
        let id = i as u16 + 1;
        driver
            .resolve(&mut sim, client, &name, id)
            .unwrap_or_else(|| panic!("{} seed {seed} id {id} did not resolve", cfg.label()));
    }
    driver.close(&mut sim, client);
    driver.run_until_quiescent(&mut sim);

    let mut sum = Cost::default();
    let mut steady_bytes = 0u64;
    for attr in 0..=u32::from(resolutions) {
        let c = sim.meter.cost(attr);
        sum.bytes += c.bytes;
        sum.packets += c.packets;
        sum.layers.merge(&c.layers);
        if attr >= 2 {
            steady_bytes += c.bytes;
        }
    }
    let n = f64::from(resolutions);
    CellRun {
        label: cfg.label(),
        transport: cfg.kind.label().to_string(),
        reuse: cfg.reuse.label().to_string(),
        resumed: cfg.resumption,
        seed,
        bytes_per_resolution: sum.bytes as f64 / n,
        packets_per_resolution: sum.packets as f64 / n,
        layers: LayerTag::ALL.map(|tag| (tag, sum.layers.get(tag) as f64 / n)),
        steady_bytes_per_resolution: steady_bytes as f64 / (n - 1.0).max(1.0),
        header_bytes_per_query: (1..=u32::from(resolutions))
            .map(|id| sim.meter.cost(id).layers.http_header)
            .collect(),
    }
}

/// The most queries one fleet run can drive: transaction ids are `u16`,
/// id 0 is reserved, and every query needs a globally unique id — so
/// `clients × queries_per_client` must not exceed 65534. Growing fleets
/// past this needs a wider id space first (see ROADMAP).
pub const MAX_FLEET_QUERIES: usize = u16::MAX as usize - 1;

/// A fleet configuration asked for more queries than the `u16`
/// transaction-id space can globally distinguish
/// (see [`MAX_FLEET_QUERIES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnSpaceExhausted {
    /// The `clients × queries_per_client` total that was requested.
    pub requested: usize,
}

impl fmt::Display for TxnSpaceExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fleet needs {} globally unique transaction ids, but the u16 id space \
             holds at most {MAX_FLEET_QUERIES}",
            self.requested
        )
    }
}

impl std::error::Error for TxnSpaceExhausted {}

/// Parameters of one fleet run: `clients` stub resolvers sharing one
/// caching recursive resolver (over the `transport` cell) which fetches
/// cache misses from a plain-Do53 authoritative upstream.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The stub-to-recursive transport cell.
    pub transport: TransportConfig,
    /// Number of stub clients, each on its own host.
    pub clients: usize,
    /// Queries each client issues (Poisson arrivals). The run total
    /// `clients × queries_per_client` is capped at
    /// [`MAX_FLEET_QUERIES`] by the u16 transaction-id space.
    pub queries_per_client: usize,
    /// Size of the shared Zipf name universe — the knob that sets the
    /// cache-hit ratio for a fixed query count.
    pub universe: usize,
    /// Zipf popularity exponent.
    pub exponent: f64,
    /// Resolver cache capacity, in entries.
    pub cache_capacity: usize,
    /// Mean per-client gap between queries.
    pub mean_gap: SimDuration,
}

impl FleetConfig {
    /// A fleet cell with the defaults the experiments use: 2 queries per
    /// client, Zipf exponent 1.0, a cache big enough to never evict and a
    /// 200 ms mean per-client gap.
    pub fn new(transport: TransportConfig, clients: usize, universe: usize) -> FleetConfig {
        FleetConfig {
            transport,
            clients,
            queries_per_client: 2,
            universe,
            exponent: 1.0,
            cache_capacity: 1 << 16,
            mean_gap: SimDuration::from_millis(200),
        }
    }

    /// Total queries the run will drive.
    pub fn total_queries(&self) -> usize {
        self.clients * self.queries_per_client
    }

    /// Errors if the run needs more globally unique transaction ids than
    /// the `u16` space holds ([`MAX_FLEET_QUERIES`]).
    pub fn check_txn_space(&self) -> Result<(), TxnSpaceExhausted> {
        let requested = self.total_queries();
        if requested > MAX_FLEET_QUERIES {
            return Err(TxnSpaceExhausted { requested });
        }
        Ok(())
    }
}

/// Aggregated result of one (fleet cell × seed) run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRun {
    /// Human-readable transport-cell label.
    pub label: String,
    /// Transport label (`do53` / `dot` / `doh-h1` / `doh-h2`).
    pub transport: String,
    /// Reuse mode (`fresh` / `persistent`).
    pub reuse: String,
    /// The seed the run used.
    pub seed: u64,
    /// Fleet size.
    pub clients: usize,
    /// Total resolutions driven.
    pub queries: usize,
    /// Zipf universe size the names were drawn from.
    pub universe: usize,
    /// Distinct names actually queried — the compulsory-miss floor.
    pub distinct_names: usize,
    /// Cache hits (positive + negative) at the recursive resolver.
    pub cache_hits: u64,
    /// Cache misses at the recursive resolver.
    pub cache_misses: u64,
    /// `cache_hits / (cache_hits + cache_misses)`.
    pub hit_ratio: f64,
    /// Upstream fetches the resolver issued (after coalescing).
    pub upstream_queries: u64,
    /// Bytes spent on the resolver-to-upstream leg (payload + IP/UDP
    /// headers, both directions).
    pub upstream_bytes: u64,
    /// All bytes the simulation put on any wire.
    pub total_bytes: u64,
    /// `total_bytes / queries` — the figure the cache-hit experiment
    /// plots against `hit_ratio`.
    pub bytes_per_resolution: f64,
    /// Bytes per resolution on the stub-to-recursive leg only.
    pub stub_bytes_per_resolution: f64,
}

impl FleetRun {
    /// This run as a sweep outcome: identity fields (transport, fleet
    /// shape) plus the selectable measurement columns.
    pub fn outcome(&self) -> CellOutcome {
        CellOutcome {
            identity: vec![
                ("transport".to_string(), Value::Str(self.transport.clone())),
                ("reuse".to_string(), Value::Str(self.reuse.clone())),
                ("clients".to_string(), Value::U64(self.clients as u64)),
                ("queries".to_string(), Value::U64(self.queries as u64)),
                ("universe".to_string(), Value::U64(self.universe as u64)),
            ],
            fields: vec![
                ("distinct_names".to_string(), Value::U64(self.distinct_names as u64)),
                ("cache_hits".to_string(), Value::U64(self.cache_hits)),
                ("cache_misses".to_string(), Value::U64(self.cache_misses)),
                ("hit_ratio".to_string(), Value::Fixed(self.hit_ratio, 4)),
                ("upstream_queries".to_string(), Value::U64(self.upstream_queries)),
                ("upstream_bytes".to_string(), Value::U64(self.upstream_bytes)),
                ("total_bytes".to_string(), Value::U64(self.total_bytes)),
                ("bytes_per_resolution".to_string(), Value::fixed2(self.bytes_per_resolution)),
                (
                    "stub_bytes_per_resolution".to_string(),
                    Value::fixed2(self.stub_bytes_per_resolution),
                ),
            ],
        }
    }
}

/// Drives one fleet cell: builds `clients` stub hosts around a single
/// recursive resolver (shared cache, Do53 upstream with a synthetic
/// authoritative [`Zone`]), registers everything in a [`Driver`] for
/// addressed wake routing, and resolves a seeded [`FleetSchedule`] with
/// globally unique transaction ids. Deterministic in `seed`.
///
/// Errors with [`TxnSpaceExhausted`] when `clients × queries_per_client`
/// exceeds [`MAX_FLEET_QUERIES`] — the `u16` transaction-id space cannot
/// label that many in-flight resolutions uniquely, and wrapping would
/// silently cross-wire responses.
pub fn run_fleet_cell(cfg: &FleetConfig, seed: u64) -> Result<FleetRun, TxnSpaceExhausted> {
    cfg.check_txn_space()?;
    let total = cfg.total_queries();

    let mut sim = Sim::new(seed);
    let resolver = sim.add_host("resolver");
    let upstream = sim.add_host("upstream");
    sim.add_link(resolver, upstream, cfg.transport.link);

    let zone = Name::parse("dohmark.test").unwrap();
    let mut driver = Driver::new();
    let upstream_cfg = TransportConfig::new(TransportKind::Do53, ReusePolicy::Fresh);
    driver.register(&mut sim, |sim| {
        let backend =
            ServerBackend::Authoritative(Zone::synth(zone.clone(), cfg.transport.ttl, 60));
        upstream_cfg.build_server_with(sim, upstream, backend)
    });
    driver.register(&mut sim, |sim| {
        let recursive = RecursiveResolver::new(sim, resolver, (upstream, 53), cfg.cache_capacity);
        cfg.transport.build_server_with(sim, resolver, ServerBackend::Recursive(recursive))
    });
    let clients: Vec<_> = (0..cfg.clients)
        .map(|i| {
            let stub = sim.add_host(&format!("stub{i}"));
            sim.add_link(stub, resolver, cfg.transport.link);
            driver.register_resolver(&mut sim, |_| cfg.transport.build_client(stub, resolver))
        })
        .collect();

    let mut rng = sim.split_rng(WORKLOAD_STREAM);
    let schedule = FleetSchedule::generate(
        &mut rng,
        cfg.clients,
        cfg.mean_gap,
        cfg.queries_per_client,
        &zone,
        cfg.universe,
        cfg.exponent,
    );
    let distinct_names = schedule.distinct_names();
    for (i, (at, client, name)) in schedule.queries.iter().enumerate() {
        driver.advance_until(&mut sim, *at);
        let txn = i as u16 + 1;
        let response = driver.resolve(&mut sim, clients[*client], name, txn).unwrap_or_else(|| {
            panic!("{} seed {seed} txn {txn} did not resolve", cfg.transport.label())
        });
        assert_eq!(response.header.id, txn);
    }
    for &client in &clients {
        driver.close(&mut sim, client);
    }
    driver.run_until_quiescent(&mut sim);

    let cache_hits = sim.meter.counter("cache_hit") + sim.meter.counter("cache_negative_hit");
    let cache_misses = sim.meter.counter("cache_miss");
    let upstream_bytes = sim.meter.counter("upstream_bytes");
    let total_bytes = sim.meter.total().bytes;
    let n = total as f64;
    Ok(FleetRun {
        label: cfg.transport.label(),
        transport: cfg.transport.kind.label().to_string(),
        reuse: cfg.transport.reuse.label().to_string(),
        seed,
        clients: cfg.clients,
        queries: total,
        universe: cfg.universe,
        distinct_names,
        cache_hits,
        cache_misses,
        hit_ratio: cache_hits as f64 / (cache_hits + cache_misses).max(1) as f64,
        upstream_queries: sim.meter.counter("upstream_queries"),
        upstream_bytes,
        total_bytes,
        bytes_per_resolution: total_bytes as f64 / n,
        stub_bytes_per_resolution: total_bytes.saturating_sub(upstream_bytes) as f64 / n,
    })
}

/// Parameters of one page-load run: `pages` dependency-tree pages drawn
/// from an Alexa-like Zipf [`SiteModel`], each loaded through the
/// `transport` cell with every resource fetch gated on a DNS resolution
/// (see [`dohmark::pageload`]).
#[derive(Debug, Clone)]
pub struct PageloadConfig {
    /// The stub-to-resolver transport cell; its link also prices the
    /// resource fetches, so DNS and content share one last mile.
    pub transport: TransportConfig,
    /// Names the link profile in cell ids and report rows
    /// (`clean_broadband`, `loss_2pct`, …) — the transport label alone
    /// cannot distinguish the fig2 loss ladder.
    pub link_label: String,
    /// Pages loaded per run (sequentially, each a fresh navigation).
    pub pages: usize,
    /// Site-model universe (distinct sites ranked by popularity).
    pub sites: usize,
    /// Zipf popularity exponent over site ranks.
    pub exponent: f64,
}

impl PageloadConfig {
    /// A page-load cell with the defaults the experiments use: 12 pages
    /// over a 1000-site universe at Zipf exponent 1.0.
    pub fn new(transport: TransportConfig, link_label: impl Into<String>) -> PageloadConfig {
        PageloadConfig {
            transport,
            link_label: link_label.into(),
            pages: 12,
            sites: 1000,
            exponent: 1.0,
        }
    }

    /// Errors if the run could need more globally unique transaction ids
    /// than the `u16` space holds: every page resolves at most
    /// [`SiteModel::MAX_DOMAINS`] domains, so `pages × MAX_DOMAINS` must
    /// fit in [`MAX_FLEET_QUERIES`].
    pub fn check_txn_space(&self) -> Result<(), TxnSpaceExhausted> {
        let requested = self.pages * SiteModel::MAX_DOMAINS;
        if requested > MAX_FLEET_QUERIES {
            return Err(TxnSpaceExhausted { requested });
        }
        Ok(())
    }
}

/// Aggregated result of one (page-load cell × seed) run.
#[derive(Debug, Clone, PartialEq)]
pub struct PageloadRun {
    /// Human-readable transport-cell label.
    pub label: String,
    /// Transport label (`do53` / `dot` / `doh-h1` / `doh-h2`).
    pub transport: String,
    /// Link-profile label (`clean_broadband`, `loss_2pct`, …).
    pub link_label: String,
    /// The iid loss probability of the link, echoed for fig2 plotting.
    pub loss: f64,
    /// The seed the run used.
    pub seed: u64,
    /// Per-page makespans in milliseconds, page order — the fig6 CDF.
    pub page_load_ms: Vec<f64>,
    /// Mean page-load time over the run's pages.
    pub mean_page_load_ms: f64,
    /// Mean DNS resolutions per page (the fig1 quantity, measured live).
    pub mean_dns_queries: f64,
    /// Mean total DNS wait per page, milliseconds.
    pub mean_dns_wait_ms: f64,
    /// Resources that never loaded, summed over pages (lost resolutions
    /// starving their dependency subtrees).
    pub unresolved: u64,
}

impl PageloadRun {
    /// This run as a sweep outcome: identity fields (transport, link)
    /// plus the selectable measurement columns.
    pub fn outcome(&self) -> CellOutcome {
        CellOutcome {
            identity: vec![
                ("transport".to_string(), Value::Str(self.transport.clone())),
                ("link".to_string(), Value::Str(self.link_label.clone())),
                ("loss".to_string(), Value::Fixed(self.loss, 4)),
                ("pages".to_string(), Value::U64(self.page_load_ms.len() as u64)),
            ],
            fields: vec![
                ("mean_page_load_ms".to_string(), Value::fixed2(self.mean_page_load_ms)),
                (
                    "median_page_load_ms".to_string(),
                    Value::fixed2(stats::median(&self.page_load_ms)),
                ),
                (
                    "p95_page_load_ms".to_string(),
                    Value::fixed2(stats::percentile(&self.page_load_ms, 95.0)),
                ),
                ("mean_dns_queries".to_string(), Value::fixed2(self.mean_dns_queries)),
                ("mean_dns_wait_ms".to_string(), Value::fixed2(self.mean_dns_wait_ms)),
                ("unresolved".to_string(), Value::U64(self.unresolved)),
                (
                    "page_load_ms".to_string(),
                    Value::Array(self.page_load_ms.iter().map(|&v| Value::fixed2(v)).collect()),
                ),
            ],
        }
    }
}

/// Milliseconds, as the reports print durations.
fn as_ms(d: SimDuration) -> f64 {
    d.as_nanos() as f64 / 1e6
}

/// Drives one page-load cell: builds a stub/resolver pair over the
/// cell's link, registers the transport in a [`Driver`], draws `pages`
/// dependency-tree pages from a seeded [`SiteModel`] and loads each
/// through [`load_page`] — DNS per distinct domain, fetches gated on
/// resolution, makespan over the shared event loop. Deterministic in
/// `seed`; page shapes depend only on `(seed, rank)`, so two transports
/// under the same seed load identical page workloads.
///
/// Errors with [`TxnSpaceExhausted`] when `pages ×`
/// [`SiteModel::MAX_DOMAINS`] exceeds [`MAX_FLEET_QUERIES`].
pub fn run_pageload_cell(
    cfg: &PageloadConfig,
    seed: u64,
) -> Result<PageloadRun, TxnSpaceExhausted> {
    cfg.check_txn_space()?;

    let mut sim = Sim::new(seed);
    let stub = sim.add_host("stub");
    let resolver = sim.add_host("resolver");
    sim.add_link(stub, resolver, cfg.transport.link);
    let mut driver = Driver::new();
    driver.register(&mut sim, |sim| cfg.transport.build_server(sim, resolver));
    let client = driver.register_resolver(&mut sim, |_| cfg.transport.build_client(stub, resolver));

    let zone = Name::parse("sites.dohmark.test").expect("static zone name parses");
    let mut site_rng = sim.split_rng(SITE_STREAM);
    let mut model = SiteModel::new(&mut site_rng, &zone, cfg.sites, cfg.exponent);
    let fetch = FetchModel::from_link(&cfg.transport.link);

    let mut txn_base = 1u16;
    let mut page_load_ms = Vec::with_capacity(cfg.pages);
    let mut dns_queries = Vec::with_capacity(cfg.pages);
    let mut dns_wait_ms = Vec::with_capacity(cfg.pages);
    let mut unresolved = 0u64;
    for _ in 0..cfg.pages {
        let page = model.next_page();
        let result = load_page(&mut sim, &mut driver, client, &page, &fetch, txn_base);
        // Validated up front: pages × MAX_DOMAINS ids fit the u16 space.
        txn_base += page.domains.len() as u16;
        page_load_ms.push(as_ms(result.makespan));
        dns_queries.push(f64::from(result.dns_queries));
        dns_wait_ms.push(as_ms(result.dns_wait_total));
        unresolved += u64::from(result.unresolved);
    }
    driver.close(&mut sim, client);
    driver.run_until_quiescent(&mut sim);

    Ok(PageloadRun {
        label: cfg.transport.label(),
        transport: cfg.transport.kind.label().to_string(),
        link_label: cfg.link_label.clone(),
        loss: cfg.transport.link.loss,
        seed,
        mean_page_load_ms: stats::mean(&page_load_ms),
        mean_dns_queries: stats::mean(&dns_queries),
        mean_dns_wait_ms: stats::mean(&dns_wait_ms),
        unresolved,
        page_load_ms,
    })
}

/// The four transport cells the page-load experiments sweep:
/// [`fleet_transports`] with Do53 given the standard retransmission
/// policy — on lossy links a retry-less stub would conflate "UDP has no
/// head-of-line blocking" with "a lost datagram loses the page", and the
/// paper's Figure 2 contrast is about the former.
pub fn pageload_transports() -> Vec<TransportConfig> {
    fleet_transports()
        .into_iter()
        .map(|cfg| {
            if cfg.kind == TransportKind::Do53 {
                cfg.with_udp_retry(UdpRetry::standard())
            } else {
                cfg
            }
        })
        .collect()
}

/// The four transport cells the fleet experiments sweep: Do53 plus the
/// three encrypted transports on persistent connections (the deployment
/// shape a stub keeps to its recursive resolver).
pub fn fleet_transports() -> Vec<TransportConfig> {
    vec![
        TransportConfig::new(TransportKind::Do53, ReusePolicy::Fresh),
        TransportConfig::new(TransportKind::Dot, ReusePolicy::Persistent),
        TransportConfig::new(TransportKind::DohH1, ReusePolicy::Persistent),
        TransportConfig::new(TransportKind::DohH2, ReusePolicy::Persistent),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dohmark::dns::jsontext;
    use dohmark::doh::{ReusePolicy, TransportKind};

    #[test]
    fn matrix_sweep_report_is_valid_jsontext_with_the_fig3_shape() {
        let sweep = SweepSpec::new()
            .cell(MatrixCell {
                cfg: TransportConfig::new(TransportKind::Do53, ReusePolicy::Fresh),
                resolutions: 3,
            })
            .cell(MatrixCell {
                cfg: TransportConfig::new(TransportKind::DohH2, ReusePolicy::Persistent),
                resolutions: 3,
            })
            .seeds(1..=2)
            .run();
        let doc = Report::new("fig3_bytes_per_resolution")
            .meta("resolutions", Value::U64(3))
            .columns(&[
                "bytes_per_resolution",
                "packets_per_resolution",
                "steady_bytes_per_resolution",
                "layers",
                "header_bytes_per_query",
            ])
            .stats(&["bytes_per_resolution"])
            .render(&sweep);
        assert!(!doc.contains('\n'), "one line of JSON");
        let parsed = jsontext::parse(&doc).expect("report output must parse");
        assert_eq!(
            parsed.get("experiment").and_then(|v| v.as_str()),
            Some("fig3_bytes_per_resolution")
        );
        assert_eq!(parsed.get("resolutions").and_then(|v| v.as_u64()), Some(3));
        let rows = parsed.get("rows").and_then(|v| v.as_array()).expect("rows array");
        assert_eq!(rows.len(), 4);
        let row = &rows[3];
        assert_eq!(row.get("cell").and_then(|v| v.as_str()), Some("doh-h2 persistent"));
        assert_eq!(row.get("transport").and_then(|v| v.as_str()), Some("doh-h2"));
        assert_eq!(row.get("reuse").and_then(|v| v.as_str()), Some("persistent"));
        assert_eq!(row.get("seed").and_then(|v| v.as_u64()), Some(2));
        let layers = row.get("layers").expect("layers object");
        for key in ["body", "hdr", "mgmt", "tls", "tcp", "dns"] {
            assert!(layers.get(key).is_some(), "missing layer {key}");
        }
        assert!(
            row.get("steady_bytes_per_resolution").is_some(),
            "missing steady_bytes_per_resolution"
        );
        let headers = row
            .get("header_bytes_per_query")
            .and_then(|v| v.as_array())
            .expect("header_bytes_per_query array");
        assert_eq!(headers.len(), 3, "one header-bytes entry per query");
        assert!(headers[0].as_u64().unwrap() > 0, "doh-h2 queries carry header bytes");

        // The stats layer emits one band per (cell, metric), p5/p95
        // included — the publication-grade view of the same sweep.
        let bands = parsed.get("stats").and_then(|v| v.as_array()).expect("stats array");
        assert_eq!(bands.len(), 2, "one summary per cell");
        for band in bands {
            assert_eq!(band.get("metric").and_then(|v| v.as_str()), Some("bytes_per_resolution"));
            assert_eq!(band.get("n").and_then(|v| v.as_u64()), Some(2));
            for key in ["mean", "median", "p5", "p95", "p99", "ci95_lo", "ci95_hi"] {
                assert!(band.get(key).is_some(), "missing stat {key}");
            }
        }
    }

    #[test]
    fn column_selection_narrows_rows_like_fig4_and_fig5() {
        let sweep = SweepSpec::new()
            .cell(MatrixCell {
                cfg: TransportConfig::new(TransportKind::Dot, ReusePolicy::Fresh),
                resolutions: 3,
            })
            .seeds([3])
            .run();

        let fig4 = Report::new("fig4_packets_per_resolution")
            .columns(&["packets_per_resolution", "bytes_per_packet"])
            .render(&sweep);
        let parsed = jsontext::parse(&fig4).expect("fig4 output must parse");
        let rows = parsed.get("rows").and_then(|v| v.as_array()).expect("rows array");
        assert_eq!(rows.len(), 1);
        assert!(rows[0].get("packets_per_resolution").is_some());
        assert!(rows[0].get("bytes_per_packet").is_some());
        assert!(rows[0].get("layers").is_none(), "unselected columns must not leak");

        let fig5 = Report::new("fig5_layer_breakdown")
            .columns(&["bytes_per_resolution", "layers"])
            .render(&sweep);
        let parsed = jsontext::parse(&fig5).expect("fig5 output must parse");
        let rows = parsed.get("rows").and_then(|v| v.as_array()).expect("rows array");
        let layers = rows[0].get("layers").expect("layers object");
        for key in ["body", "hdr", "mgmt", "tls", "tcp", "dns"] {
            assert!(layers.get(key).is_some(), "missing layer {key}");
        }
    }

    #[test]
    fn runs_replay_bit_for_bit_per_seed() {
        let cfg = TransportConfig::new(TransportKind::Dot, ReusePolicy::Persistent);
        assert_eq!(run_matrix_cell(&cfg, 9, 4), run_matrix_cell(&cfg, 9, 4));
        assert_ne!(
            run_matrix_cell(&cfg, 9, 4).bytes_per_resolution,
            run_matrix_cell(&cfg, 10, 4).bytes_per_resolution
        );
    }

    #[test]
    fn smaller_universe_means_higher_hit_ratio_and_fewer_bytes() {
        for transport in [
            TransportConfig::new(TransportKind::Do53, ReusePolicy::Fresh),
            TransportConfig::new(TransportKind::DohH2, ReusePolicy::Persistent),
        ] {
            let broad = run_fleet_cell(&FleetConfig::new(transport.clone(), 24, 500), 5).unwrap();
            let narrow = run_fleet_cell(&FleetConfig::new(transport, 24, 4), 5).unwrap();
            assert_eq!(broad.queries, 48);
            assert_eq!(broad.cache_hits + broad.cache_misses, 48);
            assert!(
                narrow.hit_ratio > broad.hit_ratio,
                "narrow universe must hit more: {} vs {}",
                narrow.hit_ratio,
                broad.hit_ratio
            );
            assert!(
                narrow.bytes_per_resolution < broad.bytes_per_resolution,
                "cache hits must save wire bytes: {} vs {}",
                narrow.bytes_per_resolution,
                broad.bytes_per_resolution
            );
            assert!(narrow.upstream_queries <= 4 + 1, "at most one fetch per distinct name");
        }
    }

    #[test]
    fn oversized_fleets_get_a_typed_error_not_a_wrapped_txn_id() {
        let cfg = FleetConfig::new(
            TransportConfig::new(TransportKind::Do53, ReusePolicy::Fresh),
            40_000,
            100,
        );
        // 40,000 clients × 2 queries = 80,000 > 65,534 u16 ids.
        let err = run_fleet_cell(&cfg, 1).unwrap_err();
        assert_eq!(err, TxnSpaceExhausted { requested: 80_000 });
        assert!(err.to_string().contains("65534"), "{err}");
        assert_eq!(FleetCell::new(cfg).unwrap_err().requested, 80_000);

        // The largest legal fleet passes validation (without running it).
        let mut max = FleetConfig::new(
            TransportConfig::new(TransportKind::Do53, ReusePolicy::Fresh),
            MAX_FLEET_QUERIES,
            100,
        );
        max.queries_per_client = 1;
        assert!(max.check_txn_space().is_ok());
    }

    #[test]
    fn fleet_sweep_report_is_valid_jsontext_with_the_cache_hit_shape() {
        let cfg = TransportConfig::new(TransportKind::Do53, ReusePolicy::Fresh);
        let sweep = SweepSpec::new()
            .cell(FleetCell::new(FleetConfig::new(cfg.clone(), 10, 100)).unwrap())
            .cell(FleetCell::new(FleetConfig::new(cfg, 10, 3)).unwrap())
            .seeds([1])
            .run();
        let doc = Report::new("fig_cache_hit_cost")
            .stats(&["bytes_per_resolution", "hit_ratio"])
            .render(&sweep);
        assert!(!doc.contains('\n'), "one line of JSON");
        let parsed = jsontext::parse(&doc).expect("report output must parse");
        assert_eq!(parsed.get("experiment").and_then(|v| v.as_str()), Some("fig_cache_hit_cost"));
        let rows = parsed.get("rows").and_then(|v| v.as_array()).expect("rows array");
        assert_eq!(rows.len(), 2);
        for row in rows {
            for key in [
                "cell",
                "transport",
                "universe",
                "distinct_names",
                "cache_hits",
                "cache_misses",
                "hit_ratio",
                "upstream_queries",
                "upstream_bytes",
                "bytes_per_resolution",
                "stub_bytes_per_resolution",
            ] {
                assert!(row.get(key).is_some(), "missing key {key}");
            }
        }
        assert_eq!(rows[0].get("universe").and_then(|v| v.as_u64()), Some(100));
        assert_eq!(rows[1].get("universe").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(
            parsed.get("stats").and_then(|v| v.as_array()).map(<[_]>::len),
            Some(4),
            "two cells × two metrics"
        );
    }
}
