//! Experiment harnesses (under construction).
//!
//! # Planned design
//!
//! One binary per figure/table of the paper (see `src/bin/`): each harness
//! builds a simulated topology, runs the relevant scenario matrix over many
//! seeds, and emits the distribution that the corresponding figure plots
//! (bytes per resolution, packets per resolution, layer breakdowns,
//! page-load times). The `benches/` targets are plain-main harnesses kept
//! buildable without external benchmarking crates.

#![forbid(unsafe_code)]
