//! Minimal shared CLI parsing for the figure binaries.
//!
//! Every fig harness accepts the same three flags instead of hardcoding
//! per-binary seed counts:
//!
//! ```text
//! --seeds N     seeds 1..=N per cell      (default: per-binary)
//! --threads N   sweep worker threads      (default: 1)
//! --out PATH    write the report to PATH  (default: stdout)
//! ```
//!
//! Parsing is hand-rolled (the workspace takes no external crates):
//! [`SweepArgs::from_env`] reads `std::env::args`, printing usage and
//! exiting on `--help` or a malformed flag; [`SweepArgs::parse`] is the
//! testable core.

use std::ops::RangeInclusive;

/// Parsed sweep options shared by every figure binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepArgs {
    /// Seeds per cell; the sweep runs seeds `1..=seeds`.
    pub seeds: u64,
    /// Worker threads for the sweep runner (wall-clock only — reports
    /// are byte-identical across thread counts).
    pub threads: usize,
    /// Report destination; `None` prints to stdout.
    pub out: Option<String>,
}

impl SweepArgs {
    /// The defaults a binary starts from: `seeds` per cell, one thread,
    /// stdout.
    pub fn defaults(seeds: u64) -> SweepArgs {
        SweepArgs { seeds, threads: 1, out: None }
    }

    /// Parses flags over these defaults. Returns `Err(message)` on an
    /// unknown flag, a missing value, or a malformed number; `--help` is
    /// reported as an error carrying the usage text.
    pub fn parse(mut self, args: impl IntoIterator<Item = String>) -> Result<SweepArgs, String> {
        let mut args = args.into_iter();
        while let Some(flag) = args.next() {
            let mut value =
                |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value\n{USAGE}"));
            match flag.as_str() {
                "--seeds" => {
                    self.seeds = value("--seeds")?
                        .parse::<u64>()
                        .map_err(|e| format!("--seeds: {e}\n{USAGE}"))?;
                    if self.seeds == 0 {
                        return Err(format!("--seeds must be at least 1\n{USAGE}"));
                    }
                }
                "--threads" => {
                    self.threads = value("--threads")?
                        .parse::<usize>()
                        .map_err(|e| format!("--threads: {e}\n{USAGE}"))?
                        .max(1);
                }
                "--out" => self.out = Some(value("--out")?),
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
            }
        }
        Ok(self)
    }

    /// Parses the process arguments over these defaults, printing usage
    /// and exiting on `--help` (status 0) or any parse error (status 2).
    pub fn from_env(default_seeds: u64) -> SweepArgs {
        match SweepArgs::defaults(default_seeds).parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(message) if message == USAGE => {
                // simlint::allow(no-print-in-lib): this is the fig binaries' shared CLI front-end — usage goes to their stdout
                println!("{message}");
                std::process::exit(0);
            }
            Err(message) => {
                // simlint::allow(no-print-in-lib): parse errors go to the invoking fig binary's stderr
                eprintln!("{message}");
                std::process::exit(2);
            }
        }
    }

    /// The seed list the sweep runs: `1..=seeds`.
    pub fn seed_range(&self) -> RangeInclusive<u64> {
        1..=self.seeds
    }

    /// Emits a rendered report: to `--out`'s path (with a trailing
    /// newline) when given, to stdout otherwise.
    pub fn emit(&self, doc: &str) {
        match &self.out {
            Some(path) => {
                std::fs::write(path, format!("{doc}\n"))
                    .unwrap_or_else(|e| panic!("writing {path}: {e}"));
            }
            // simlint::allow(no-print-in-lib): emitting the report to stdout is this helper's contract with the fig binaries
            None => println!("{doc}"),
        }
    }
}

/// Usage text shared by every binary.
const USAGE: &str = "usage: <fig binary> [--seeds N] [--threads N] [--out PATH]";

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<SweepArgs, String> {
        SweepArgs::defaults(10).parse(words.iter().map(|w| w.to_string()))
    }

    #[test]
    fn defaults_pass_through() {
        assert_eq!(parse(&[]).unwrap(), SweepArgs { seeds: 10, threads: 1, out: None });
    }

    #[test]
    fn flags_override_defaults_in_any_order() {
        let args = parse(&["--threads", "4", "--out", "report.json", "--seeds", "40"]).unwrap();
        assert_eq!(args, SweepArgs { seeds: 40, threads: 4, out: Some("report.json".to_string()) });
    }

    #[test]
    fn zero_threads_clamp_to_one_but_zero_seeds_error() {
        assert_eq!(parse(&["--threads", "0"]).unwrap().threads, 1);
        assert!(parse(&["--seeds", "0"]).is_err());
    }

    #[test]
    fn malformed_input_is_rejected_with_usage() {
        for bad in [vec!["--seeds"], vec!["--seeds", "many"], vec!["--frobnicate"], vec!["--help"]]
        {
            let err = parse(&bad).unwrap_err();
            assert!(err.contains("usage:"), "{bad:?} -> {err}");
        }
    }

    #[test]
    fn seed_range_is_one_through_n() {
        assert_eq!(parse(&["--seeds", "3"]).unwrap().seed_range(), 1..=3);
    }
}
