//! Figure 2 — TCP head-of-line blocking under packet loss. **Stub**:
//! waits on lossy-link profiles biting the transport comparison (see
//! ROADMAP); the binary already speaks the shared sweep CLI and emits an
//! honest empty report so downstream tooling can treat every fig harness
//! uniformly.

use dohmark_bench::{Report, SweepArgs, SweepSpec, Value};

fn main() {
    let args = SweepArgs::from_env(1);
    let empty = SweepSpec::new().run();
    let doc = Report::new("fig2_hol_blocking")
        .meta(
            "status",
            Value::Str("stub: lossy-link HOL experiment not yet implemented".to_string()),
        )
        .render(&empty);
    args.emit(&doc);
}
