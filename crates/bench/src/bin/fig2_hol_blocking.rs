//! Figure 2 — TCP head-of-line blocking under packet loss.
//!
//! Loads the same page workload through every transport over a loss
//! ladder (the clean default, 1/2/4% iid loss, and the named lossy-WiFi
//! and mobile-3G presets). On Do53, lost datagrams cost one retransmission
//! timeout each and queries are independent; on the TCP transports a lost
//! segment stalls the whole connection — DoH-h2 multiplexes every query
//! onto one such connection, so its page-load time climbs with loss
//! strictly faster than Do53's. Emits per-cell page-load means with
//! p5/p95/CI bands as one line of JSON.

use dohmark::netsim::{LinkConfig, SimDuration};
use dohmark_bench::{
    pageload_transports, PageloadCell, PageloadConfig, Report, SweepArgs, SweepSpec, Value,
};

const DEFAULT_SEEDS: u64 = 5;
const PAGES: usize = 8;

/// The loss ladder: a label for report rows and the link it names.
fn links() -> Vec<(&'static str, LinkConfig)> {
    let clean = LinkConfig::clean_broadband();
    vec![
        ("clean_broadband", clean),
        ("loss_1pct", clean.loss(0.01)),
        ("loss_2pct", clean.loss(0.02)),
        ("loss_4pct", clean.loss(0.04)),
        ("lossy_wifi", LinkConfig::lossy_wifi()),
        ("mobile_3g", LinkConfig::mobile_3g()),
    ]
}

fn main() {
    let args = SweepArgs::from_env(DEFAULT_SEEDS);
    let mut spec = SweepSpec::new();
    for transport in pageload_transports() {
        for (label, link) in links() {
            let mut cfg = PageloadConfig::new(transport.clone(), label);
            cfg.transport.link = link;
            cfg.pages = PAGES;
            spec = spec.cell(PageloadCell::new(cfg).expect("page budget fits the txn space"));
        }
    }
    let sweep = spec.seeds(args.seed_range()).threads(args.threads).run();
    let doc = Report::new("fig2_hol_blocking")
        .meta("pages", Value::U64(PAGES as u64))
        .meta("seeds", Value::U64(args.seeds))
        .meta(
            "udp_retry_initial_ms",
            Value::U64(SimDuration::from_millis(200).as_nanos() / 1_000_000),
        )
        .columns(&[
            "mean_page_load_ms",
            "median_page_load_ms",
            "p95_page_load_ms",
            "mean_dns_wait_ms",
            "unresolved",
        ])
        .stats(&["mean_page_load_ms"])
        .render(&sweep);
    args.emit(&doc);
}
