//! Figure 4 — packets per resolution across the transport matrix.
//!
//! Runs the same seeded workload as the Figure 3 harness through every
//! matrix cell and emits one line of JSON with the per-resolution packet
//! means (and bytes-per-packet, the datagram-efficiency view).

use dohmark::doh::TransportConfig;
use dohmark_bench::{fig4_json, run_matrix_cell};

const SEEDS: std::ops::RangeInclusive<u64> = 1..=10;
const RESOLUTIONS: u16 = 20;

fn main() {
    let runs: Vec<_> = TransportConfig::matrix()
        .iter()
        .flat_map(|cfg| SEEDS.map(|seed| run_matrix_cell(cfg, seed, RESOLUTIONS)))
        .collect();
    println!("{}", fig4_json(RESOLUTIONS, &runs));
}
