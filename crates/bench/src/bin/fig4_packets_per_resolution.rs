//! Figure 4 — packets per resolution across the transport matrix.
//!
//! Sweeps the same seeded workload as the Figure 3 harness through every
//! matrix cell and emits the per-resolution packet means (and
//! bytes-per-packet, the datagram-efficiency view) with per-cell
//! p5/p95/CI bands, as one line of JSON.

use dohmark::doh::TransportConfig;
use dohmark_bench::{MatrixCell, Report, SweepArgs, SweepSpec, Value};

const DEFAULT_SEEDS: u64 = 10;
const RESOLUTIONS: u16 = 20;

fn main() {
    let args = SweepArgs::from_env(DEFAULT_SEEDS);
    let sweep = SweepSpec::new()
        .cells(
            TransportConfig::matrix()
                .into_iter()
                .map(|cfg| Box::new(MatrixCell { cfg, resolutions: RESOLUTIONS }) as _),
        )
        .seeds(args.seed_range())
        .threads(args.threads)
        .run();
    let doc = Report::new("fig4_packets_per_resolution")
        .meta("resolutions", Value::U64(u64::from(RESOLUTIONS)))
        .meta("seeds", Value::U64(args.seeds))
        .columns(&["packets_per_resolution", "bytes_per_packet"])
        .stats(&["packets_per_resolution"])
        .render(&sweep);
    args.emit(&doc);
}
