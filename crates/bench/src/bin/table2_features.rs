fn main() {}
