//! Figure 6 — page-load time across the four transports.
//!
//! Loads the same Zipf-ranked page workload through Do53, DoT, DoH-h1 and
//! DoH-h2 over the clean-broadband link and emits per-page makespans (the
//! CDF the paper plots) plus per-cell means with p5/p95/CI bands, as one
//! line of JSON. At zero loss the four curves sit within a narrow band —
//! the paper's headline "DoH barely moves page-load time" result, because
//! DNS wait is a small slice of the dependency-tree makespan.

use dohmark_bench::{
    pageload_transports, PageloadCell, PageloadConfig, Report, SweepArgs, SweepSpec, Value,
};

const DEFAULT_SEEDS: u64 = 10;
const PAGES: usize = 20;

fn main() {
    let args = SweepArgs::from_env(DEFAULT_SEEDS);
    let mut spec = SweepSpec::new();
    for transport in pageload_transports() {
        let mut cfg = PageloadConfig::new(transport, "clean_broadband");
        cfg.pages = PAGES;
        spec = spec.cell(PageloadCell::new(cfg).expect("page budget fits the txn space"));
    }
    let sweep = spec.seeds(args.seed_range()).threads(args.threads).run();
    let doc = Report::new("fig6_pageload")
        .meta("pages", Value::U64(PAGES as u64))
        .meta("seeds", Value::U64(args.seeds))
        .columns(&[
            "mean_page_load_ms",
            "median_page_load_ms",
            "p95_page_load_ms",
            "mean_dns_queries",
            "mean_dns_wait_ms",
            "unresolved",
            "page_load_ms",
        ])
        .stats(&["mean_page_load_ms"])
        .render(&sweep);
    args.emit(&doc);
}
