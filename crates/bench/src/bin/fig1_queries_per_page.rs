//! Figure 1 — DNS queries per page load. **Stub**: waits on the
//! `pageload` browser dependency-tree engine (see ROADMAP); the binary
//! already speaks the shared sweep CLI and emits an honest empty report
//! so downstream tooling can treat every fig harness uniformly.

use dohmark_bench::{Report, SweepArgs, SweepSpec, Value};

fn main() {
    let args = SweepArgs::from_env(1);
    let empty = SweepSpec::new().run();
    let doc = Report::new("fig1_queries_per_page")
        .meta("status", Value::Str("stub: pageload engine not yet implemented".to_string()))
        .render(&empty);
    args.emit(&doc);
}
