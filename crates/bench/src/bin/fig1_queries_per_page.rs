//! Figure 1 — DNS queries per page over the Alexa-like site model.
//!
//! Samples pages from the Zipf-ranked [`SiteModel`] at several universe
//! sizes and emits the queries-per-page distribution (mean/median/p95,
//! plus the raw per-page counts for CDF plotting) as one line of JSON —
//! the workload side of the paper's Figure 1, no simulator involved.
//!
//! [`SiteModel`]: dohmark::workload::SiteModel

use dohmark_bench::{Report, SitePagesCell, SweepArgs, SweepSpec, Value};

const DEFAULT_SEEDS: u64 = 10;
const PAGES: usize = 200;

fn main() {
    let args = SweepArgs::from_env(DEFAULT_SEEDS);
    let sweep = SweepSpec::new()
        .cells(
            [100usize, 1_000, 10_000]
                .into_iter()
                .map(|sites| Box::new(SitePagesCell { sites, exponent: 1.0, pages: PAGES }) as _),
        )
        .seeds(args.seed_range())
        .threads(args.threads)
        .run();
    let doc = Report::new("fig1_queries_per_page")
        .meta("pages", Value::U64(PAGES as u64))
        .meta("seeds", Value::U64(args.seeds))
        .columns(&[
            "mean_queries_per_page",
            "median_queries_per_page",
            "p95_queries_per_page",
            "max_queries_per_page",
            "mean_resources_per_page",
            "mean_depth",
            "queries_per_page",
        ])
        .stats(&["mean_queries_per_page"])
        .render(&sweep);
    args.emit(&doc);
}
