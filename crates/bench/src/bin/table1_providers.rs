fn main() {}
