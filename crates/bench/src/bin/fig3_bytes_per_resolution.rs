//! Figure 3: bytes per resolution, per transport, over many seeds.
//!
//! Sweeps the same Poisson workload through every cell of the transport
//! matrix (Do53 / DoT / DoH-h1 / DoH-h2 × fresh / resumed / persistent)
//! and emits rows plus per-cell p5/p95/CI bands as one line of JSON —
//! parseable with `dohmark::dns::jsontext`:
//!
//! ```console
//! $ cargo run --release --bin fig3_bytes_per_resolution -- --seeds 40 --threads 4 | head -c 120
//! {"experiment": "fig3_bytes_per_resolution", "resolutions": 20, "seeds": 40, "rows": [{"cell": "do53", …
//! ```
//!
//! The report is byte-identical for any `--threads` value.

use dohmark::doh::TransportConfig;
use dohmark_bench::{MatrixCell, Report, SweepArgs, SweepSpec, Value};

/// Default seeds per cell; ≥ 10 so the emitted rows form a distribution.
const DEFAULT_SEEDS: u64 = 10;
/// Queries resolved per run.
const RESOLUTIONS: u16 = 20;

fn main() {
    let args = SweepArgs::from_env(DEFAULT_SEEDS);
    let sweep = SweepSpec::new()
        .cells(
            TransportConfig::matrix()
                .into_iter()
                .map(|cfg| Box::new(MatrixCell { cfg, resolutions: RESOLUTIONS }) as _),
        )
        .seeds(args.seed_range())
        .threads(args.threads)
        .run();
    let doc = Report::new("fig3_bytes_per_resolution")
        .meta("resolutions", Value::U64(u64::from(RESOLUTIONS)))
        .meta("seeds", Value::U64(args.seeds))
        .columns(&[
            "bytes_per_resolution",
            "packets_per_resolution",
            "steady_bytes_per_resolution",
            "layers",
            "header_bytes_per_query",
        ])
        .stats(&["bytes_per_resolution", "steady_bytes_per_resolution"])
        .render(&sweep);
    args.emit(&doc);
}
