//! Figure 3: bytes per resolution, per transport, over many seeds.
//!
//! Resolves the same Poisson workload through every cell of the
//! transport matrix (Do53 / DoT / DoH-h1 / DoH-h2 × fresh / resumed /
//! persistent) for seeds 1..=10 and emits the distribution as one line
//! of JSON on stdout — parseable with `dohmark::dns::jsontext`:
//!
//! ```console
//! $ cargo run --release --bin fig3_bytes_per_resolution | head -c 120
//! {"experiment": "fig3_bytes_per_resolution", "resolutions": 20, "rows": [{"cell": "do53", …
//! ```

use dohmark::doh::TransportConfig;
use dohmark_bench::{fig3_json, run_matrix_cell, CellRun};

/// Seeds per cell; ≥ 10 so the emitted rows form a distribution.
const SEEDS: std::ops::RangeInclusive<u64> = 1..=10;
/// Queries resolved per run.
const RESOLUTIONS: u16 = 20;

fn main() {
    let runs: Vec<CellRun> = TransportConfig::matrix()
        .iter()
        .flat_map(|cfg| SEEDS.map(|seed| run_matrix_cell(cfg, seed, RESOLUTIONS)))
        .collect();
    println!("{}", fig3_json(RESOLUTIONS, &runs));
}
