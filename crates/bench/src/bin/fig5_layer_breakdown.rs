//! Figure 5 — per-layer byte breakdown across the transport matrix.
//!
//! Runs the same seeded workload as the Figure 3 harness through every
//! matrix cell and emits one line of JSON splitting each cell's mean
//! bytes per resolution into the six layer tags (DNS payload, TCP, TLS,
//! HTTP header/body/management).

use dohmark::doh::TransportConfig;
use dohmark_bench::{fig5_json, run_matrix_cell};

const SEEDS: std::ops::RangeInclusive<u64> = 1..=10;
const RESOLUTIONS: u16 = 20;

fn main() {
    let runs: Vec<_> = TransportConfig::matrix()
        .iter()
        .flat_map(|cfg| SEEDS.map(|seed| run_matrix_cell(cfg, seed, RESOLUTIONS)))
        .collect();
    println!("{}", fig5_json(RESOLUTIONS, &runs));
}
