//! Figure 5 — per-layer byte breakdown across the transport matrix.
//!
//! Sweeps the same seeded workload as the Figure 3 harness through every
//! matrix cell and emits one line of JSON splitting each cell's mean
//! bytes per resolution into the six layer tags (DNS payload, TCP, TLS,
//! HTTP header/body/management), with per-cell p5/p95/CI bands.

use dohmark::doh::TransportConfig;
use dohmark_bench::{MatrixCell, Report, SweepArgs, SweepSpec, Value};

const DEFAULT_SEEDS: u64 = 10;
const RESOLUTIONS: u16 = 20;

fn main() {
    let args = SweepArgs::from_env(DEFAULT_SEEDS);
    let sweep = SweepSpec::new()
        .cells(
            TransportConfig::matrix()
                .into_iter()
                .map(|cfg| Box::new(MatrixCell { cfg, resolutions: RESOLUTIONS }) as _),
        )
        .seeds(args.seed_range())
        .threads(args.threads)
        .run();
    let doc = Report::new("fig5_layer_breakdown")
        .meta("resolutions", Value::U64(u64::from(RESOLUTIONS)))
        .meta("seeds", Value::U64(args.seeds))
        .columns(&["bytes_per_resolution", "layers"])
        .stats(&["bytes_per_resolution"])
        .render(&sweep);
    args.emit(&doc);
}
