//! Workload-stats table — Zipf/fleet summary statistics.
//!
//! Generates seeded fleet schedules at several (clients, universe)
//! shapes and emits their summary stats — total and distinct names, the
//! name-reuse ratio that upper-bounds any cache hit rate, the schedule
//! span — as validated jsontext on the shared `Report` builder.

use dohmark_bench::{Report, SweepArgs, SweepSpec, Value, WorkloadStatsCell};

const DEFAULT_SEEDS: u64 = 10;
const QUERIES_PER_CLIENT: usize = 4;

fn main() {
    let args = SweepArgs::from_env(DEFAULT_SEEDS);
    let shapes: &[(usize, usize)] = &[(16, 1_000), (64, 1_000), (64, 50), (256, 10_000)];
    let sweep = SweepSpec::new()
        .cells(shapes.iter().map(|&(clients, universe)| {
            Box::new(WorkloadStatsCell {
                clients,
                queries_per_client: QUERIES_PER_CLIENT,
                universe,
                exponent: 1.0,
            }) as _
        }))
        .seeds(args.seed_range())
        .threads(args.threads)
        .run();
    let doc = Report::new("table_workload_stats")
        .meta("queries_per_client", Value::U64(QUERIES_PER_CLIENT as u64))
        .meta("seeds", Value::U64(args.seeds))
        .columns(&["queries", "distinct_names", "reuse_ratio", "span_ms"])
        .stats(&["reuse_ratio"])
        .render(&sweep);
    args.emit(&doc);
}
