//! Cache-hit cost — bytes per resolution vs. cache-hit ratio, per
//! transport, on a 1,000-stub-client fleet sharing one caching recursive
//! resolver.
//!
//! The cache-hit ratio is swept by shrinking the Zipf name universe the
//! fleet draws from: a broad universe forces compulsory misses (and
//! upstream fetches), a narrow one lets the shared cache absorb almost
//! everything. Emits one line of JSON pairing each cell's `hit_ratio`
//! with its `bytes_per_resolution`, with per-cell bands over seeds.

use dohmark_bench::{FleetCell, FleetConfig, Report, SweepArgs, SweepSpec, Value};

/// Fleet runs are heavy (1,000 clients each); one seed by default.
const DEFAULT_SEEDS: u64 = 1;
const CLIENTS: usize = 1000;
const UNIVERSES: [usize; 5] = [4000, 800, 160, 32, 8];

fn main() {
    let args = SweepArgs::from_env(DEFAULT_SEEDS);
    let sweep = SweepSpec::new()
        .cells(dohmark_bench::fleet_transports().into_iter().flat_map(|transport| {
            UNIVERSES.map(|universe| {
                let cell = FleetCell::new(FleetConfig::new(transport.clone(), CLIENTS, universe))
                    .expect("1,000-client fleets fit the txn-id space");
                Box::new(cell) as _
            })
        }))
        .seeds(args.seed_range())
        .threads(args.threads)
        .run();
    let doc = Report::new("fig_cache_hit_cost")
        .meta("clients", Value::U64(CLIENTS as u64))
        .meta("seeds", Value::U64(args.seeds))
        .stats(&["bytes_per_resolution", "hit_ratio"])
        .render(&sweep);
    args.emit(&doc);
}
