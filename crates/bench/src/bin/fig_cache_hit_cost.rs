//! Cache-hit cost — bytes per resolution vs. cache-hit ratio, per
//! transport, on a 1,000-stub-client fleet sharing one caching recursive
//! resolver.
//!
//! The cache-hit ratio is swept by shrinking the Zipf name universe the
//! fleet draws from: a broad universe forces compulsory misses (and
//! upstream fetches), a narrow one lets the shared cache absorb almost
//! everything. Emits one line of JSON pairing each cell's `hit_ratio`
//! with its `bytes_per_resolution`.

use dohmark_bench::{fig_cache_hit_cost_json, fleet_transports, run_fleet_cell, FleetConfig};

const SEED: u64 = 1;
const CLIENTS: usize = 1000;
const UNIVERSES: [usize; 5] = [4000, 800, 160, 32, 8];

fn main() {
    let runs: Vec<_> = fleet_transports()
        .iter()
        .flat_map(|transport| {
            UNIVERSES.map(|universe| {
                run_fleet_cell(&FleetConfig::new(transport.clone(), CLIENTS, universe), SEED)
            })
        })
        .collect();
    println!("{}", fig_cache_hit_cost_json(&runs));
}
