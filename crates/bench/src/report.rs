//! The shared jsontext report builder every figure harness emits through.
//!
//! One [`Report`] replaces the four near-duplicate per-figure JSON
//! emitters the binaries used to hand-roll: a harness names
//! its experiment, attaches top-level metadata, selects which measurement
//! columns its rows carry, and names the metrics to summarise — the
//! builder renders a [`SweepReport`] as one
//! line of JSON parseable by the in-tree `dns-wire::jsontext` codec (the
//! workspace has no serde).
//!
//! Rendering is fully deterministic: rows appear in the sweep's canonical
//! (cell, seed) order, objects preserve insertion order, and floats are
//! written with fixed precision — so a report is byte-identical no matter
//! how many worker threads produced the sweep.

use crate::stats::{summarize, Summary};
use crate::sweep::SweepReport;

/// A JSON value the report writer can serialise deterministically.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, written without a decimal point.
    U64(u64),
    /// A float written with the given number of decimals — fixed
    /// precision keeps renders byte-stable across platforms.
    Fixed(f64, usize),
    /// A string (escaped on write).
    Str(String),
    /// An array of values.
    Array(Vec<Value>),
    /// An object as an ordered key/value list.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Convenience constructor for the common 2-decimal byte metrics.
    pub fn fixed2(v: f64) -> Value {
        Value::Fixed(v, 2)
    }

    /// The numeric view of this value, if it has one — what the stats
    /// layer aggregates.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::Fixed(v, _) => Some(*v),
            _ => None,
        }
    }

    /// Appends this value's JSON text to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::Fixed(v, precision) => {
                out.push_str(&format!("{v:.precision$}"));
            }
            Value::Str(s) => dohmark::dns::jsontext::write_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                write_pairs(out, pairs);
                out.push('}');
            }
        }
    }
}

/// Writes `key: value` pairs without the surrounding braces.
fn write_pairs(out: &mut String, pairs: &[(String, Value)]) {
    for (i, (key, value)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        dohmark::dns::jsontext::write_escaped(out, key);
        out.push_str(": ");
        value.write(out);
    }
}

/// Builder for one experiment's single-line JSON report.
///
/// ```
/// use dohmark_bench::report::{Report, Value};
/// use dohmark_bench::sweep::{MatrixCell, SweepSpec};
/// use dohmark::doh::{ReusePolicy, TransportConfig, TransportKind};
///
/// let cfg = TransportConfig::new(TransportKind::Do53, ReusePolicy::Fresh);
/// let sweep = SweepSpec::new()
///     .cell(MatrixCell { cfg, resolutions: 2 })
///     .seeds(1..=2)
///     .run();
/// let doc = Report::new("example")
///     .meta("resolutions", Value::U64(2))
///     .columns(&["bytes_per_resolution"])
///     .stats(&["bytes_per_resolution"])
///     .render(&sweep);
/// assert!(doc.starts_with("{\"experiment\": \"example\", \"resolutions\": 2"));
/// ```
#[derive(Debug, Clone)]
pub struct Report {
    experiment: String,
    meta: Vec<(String, Value)>,
    columns: Option<Vec<String>>,
    stats: Vec<String>,
}

impl Report {
    /// A report for the named experiment with no metadata, all columns
    /// and no stats.
    pub fn new(experiment: &str) -> Report {
        Report {
            experiment: experiment.to_string(),
            meta: Vec::new(),
            columns: None,
            stats: Vec::new(),
        }
    }

    /// Appends one top-level metadata key (emitted before `rows`).
    ///
    /// Run-shape parameters (seed count, resolutions per run) belong
    /// here; **never** record the thread count — reports must be
    /// byte-identical across `threads` settings.
    pub fn meta(mut self, key: &str, value: Value) -> Report {
        self.meta.push((key.to_string(), value));
        self
    }

    /// Restricts each row to the named measurement columns, in order
    /// (identity fields — cell, seed, transport … — are always emitted).
    /// Unknown names panic at render time, catching typos in harnesses.
    pub fn columns(mut self, names: &[&str]) -> Report {
        self.columns = Some(names.iter().map(|n| n.to_string()).collect());
        self
    }

    /// Names the metrics to summarise per cell (mean/median/p5/p95/p99
    /// and a bootstrap 95% CI over the cell's seeds) in a top-level
    /// `stats` array.
    pub fn stats(mut self, names: &[&str]) -> Report {
        self.stats = names.iter().map(|n| n.to_string()).collect();
        self
    }

    /// Renders the sweep as one line of JSON.
    pub fn render(&self, sweep: &SweepReport) -> String {
        let mut out = String::from("{\"experiment\": ");
        dohmark::dns::jsontext::write_escaped(&mut out, &self.experiment);
        if !self.meta.is_empty() {
            out.push_str(", ");
            write_pairs(&mut out, &self.meta);
        }
        out.push_str(", \"rows\": [");
        for (i, entry) in sweep.entries.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"cell\": ");
            dohmark::dns::jsontext::write_escaped(&mut out, entry.cell.as_str());
            out.push_str(&format!(", \"seed\": {}", entry.seed));
            if !entry.outcome.identity.is_empty() {
                out.push_str(", ");
                write_pairs(&mut out, &entry.outcome.identity);
            }
            let selected: Vec<(String, Value)> = match &self.columns {
                None => entry.outcome.fields.clone(),
                Some(names) => names
                    .iter()
                    .map(|name| {
                        let value = entry.outcome.field(name).unwrap_or_else(|| {
                            panic!("cell {} has no column {name:?}", entry.cell)
                        });
                        (name.clone(), value.clone())
                    })
                    .collect(),
            };
            if !selected.is_empty() {
                out.push_str(", ");
                write_pairs(&mut out, &selected);
            }
            out.push('}');
        }
        out.push(']');
        if !self.stats.is_empty() {
            out.push_str(", \"stats\": [");
            let mut first = true;
            for cell in sweep.cells() {
                for metric in &self.stats {
                    let samples = sweep.metric(&cell, metric);
                    if samples.is_empty() {
                        panic!("cell {cell} has no numeric metric {metric:?} to summarise");
                    }
                    if !first {
                        out.push_str(", ");
                    }
                    first = false;
                    write_summary(&mut out, cell.as_str(), metric, &summarize(&samples));
                }
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

/// Writes one per-(cell, metric) summary object.
fn write_summary(out: &mut String, cell: &str, metric: &str, s: &Summary) {
    out.push_str("{\"cell\": ");
    dohmark::dns::jsontext::write_escaped(out, cell);
    out.push_str(", \"metric\": ");
    dohmark::dns::jsontext::write_escaped(out, metric);
    out.push_str(&format!(
        ", \"n\": {}, \"mean\": {:.4}, \"median\": {:.4}, \"p5\": {:.4}, \"p95\": {:.4}, \
         \"p99\": {:.4}, \"ci95_lo\": {:.4}, \"ci95_hi\": {:.4}}}",
        s.n, s.mean, s.median, s.p5, s.p95, s.p99, s.ci95.0, s.ci95.1
    ));
}
