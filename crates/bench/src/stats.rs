//! Sweep statistics: percentiles and bootstrap confidence bands.
//!
//! Every figure harness reports per-cell distributions over seeds, so the
//! aggregation lives here once: [`mean`], [`median`], [`percentile`] (the
//! linear-interpolation definition below) and a seeded, deterministic
//! [`bootstrap_ci`]. [`summarize`] bundles them into the [`Summary`] the
//! report builder renders per (cell, metric).
//!
//! Everything is deterministic: the bootstrap draws from the workspace's
//! own xoshiro256++ [`SimRng`] under a fixed seed, so the same samples
//! always produce the same bands — a requirement for the byte-identical
//! `threads=1` / `threads=N` sweep guarantee.
//!
//! # Summation order
//!
//! Float addition is not associative, so every accumulation in this
//! module iterates in an order the inputs pin: [`mean`] sums the sample
//! slice left to right as the caller passed it (sweep results arrive in
//! seed order regardless of thread count, cf. `sweep::run`), and
//! [`bootstrap_ci`] sums each resample in draw order of its fixed-seed
//! RNG. Those two are the *blessed* accumulation helpers simlint's
//! `no-float-accumulation` rule recognises — any new `+=` / `.sum()` in
//! this crate's stats/report layer must either live here with the same
//! order argument spelled out, or carry a reasoned `simlint::allow`.

use dohmark::netsim::SimRng;

/// Resamples per bootstrap interval.
const BOOTSTRAP_RESAMPLES: usize = 256;
/// Fixed seed of the bootstrap RNG — the bands are part of the report,
/// so they must replay bit for bit.
const BOOTSTRAP_SEED: u64 = 0xB00757A9;

/// Arithmetic mean. Empty input panics — a metric with no samples is a
/// harness bug, not a value.
///
/// Order-audited: sums strictly left to right over the input slice, so
/// the result depends only on the slice's element order, which callers
/// pin (seed order in sweeps).
pub fn mean(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "mean of no samples");
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// The `p`-th percentile (`0.0..=100.0`) under linear interpolation
/// between closest ranks: rank `p/100 · (n−1)` of the sorted samples,
/// interpolating between the two neighbouring order statistics when the
/// rank is fractional. `percentile(xs, 0.0)` is the minimum,
/// `percentile(xs, 100.0)` the maximum, and a single sample is every
/// percentile of itself.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile of no samples");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// The 50th [`percentile`].
pub fn median(samples: &[f64]) -> f64 {
    percentile(samples, 50.0)
}

/// A percentile-bootstrap confidence interval for the mean: resamples the
/// input with replacement `resamples` times, takes each resample's mean,
/// and returns the `(1−level)/2` and `(1+level)/2` percentiles of those
/// means. Deterministic in the caller's `rng` state.
///
/// Order-audited: each resample sums in the draw order of `rng`, and the
/// resample means are then ranked by [`percentile`]'s total-order sort —
/// no accumulation depends on anything but the (seeded) draw sequence.
pub fn bootstrap_ci(samples: &[f64], resamples: usize, level: f64, rng: &mut SimRng) -> (f64, f64) {
    assert!(!samples.is_empty(), "bootstrap of no samples");
    assert!((0.0..1.0).contains(&level), "confidence level {level} must be in [0, 1)");
    let n = samples.len() as u64;
    let means: Vec<f64> = (0..resamples)
        .map(|_| {
            let sum: f64 = (0..n).map(|_| samples[rng.below(n) as usize]).sum();
            sum / n as f64
        })
        .collect();
    let tail = 100.0 * (1.0 - level) / 2.0;
    (percentile(&means, tail), percentile(&means, 100.0 - tail))
}

/// Per-(cell, metric) distribution summary over a sweep's seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample count (one per seed).
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// 50th percentile.
    pub median: f64,
    /// 5th percentile — the lower band edge figures shade.
    pub p5: f64,
    /// 95th percentile — the upper band edge.
    pub p95: f64,
    /// 99th percentile, for tail-heavy metrics.
    pub p99: f64,
    /// 95% bootstrap CI for the mean (lo, hi), from a fixed-seed
    /// deterministic resampling pass.
    pub ci95: (f64, f64),
}

/// Summarises one metric's samples. Deterministic: the bootstrap RNG is
/// seeded from a fixed constant, so identical samples give identical
/// summaries regardless of sweep thread count.
pub fn summarize(samples: &[f64]) -> Summary {
    let mut rng = SimRng::new(BOOTSTRAP_SEED);
    Summary {
        n: samples.len(),
        mean: mean(samples),
        median: median(samples),
        p5: percentile(samples, 5.0),
        p95: percentile(samples, 95.0),
        p99: percentile(samples, 99.0),
        ci95: bootstrap_ci(samples, BOOTSTRAP_RESAMPLES, 0.95, &mut rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_edges_and_interpolation() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        // rank 1.5 between sorted[1]=2 and sorted[2]=3.
        assert_eq!(percentile(&xs, 50.0), 2.5);
        assert_eq!(median(&[5.0]), 5.0);
        assert_eq!(median(&[1.0, 2.0, 9.0]), 2.0);
    }

    #[test]
    fn summaries_are_deterministic() {
        let xs: Vec<f64> = (0..20).map(|i| (i * i) as f64).collect();
        assert_eq!(summarize(&xs), summarize(&xs));
    }

    #[test]
    fn constant_samples_collapse_every_statistic() {
        let s = summarize(&[7.0; 12]);
        assert_eq!((s.mean, s.median, s.p5, s.p95, s.p99), (7.0, 7.0, 7.0, 7.0, 7.0));
        assert_eq!(s.ci95, (7.0, 7.0));
    }
}
