fn main() {}
