//! Wall-clock bench: how fast the simulator drives a 1,000-client fleet
//! through each transport cell, plus the parallel sweep runner's
//! speedup on a 40-seed matrix sweep.
//!
//! A plain-main harness (no external benchmarking crates): it times one
//! seeded 1,000-stub-client fleet run per transport — the topology the
//! addressed-routing driver exists for — then replays the full Figure-3
//! matrix sweep at `threads = 1` and `threads = 4` and records the
//! wall-clock speedup (the rendered reports are asserted byte-identical
//! first). Prints one line of JSON; redirect stdout to refresh
//! `BENCH_transports.json` at the repo root:
//!
//! ```text
//! cargo bench --bench transports > BENCH_transports.json
//! ```

use std::time::Instant;

use dohmark::doh::TransportConfig;
use dohmark::netsim::SimDuration;
use dohmark_bench::{fleet_transports, run_fleet_cell, FleetConfig, MatrixCell, Report, SweepSpec};

const SEED: u64 = 1;
const CLIENTS: usize = 1000;
const UNIVERSE: usize = 400;
const SWEEP_SEEDS: u64 = 40;
const SWEEP_RESOLUTIONS: u16 = 20;

/// Runs the Figure-3 matrix sweep (every transport cell × 40 seeds) at
/// the given worker count and returns the rendered report plus the wall
/// clock it took.
// Wall-clock reads are the whole point of a bench harness; clippy.toml
// bans Instant::now everywhere else in the workspace.
#[allow(clippy::disallowed_methods)]
fn timed_sweep(threads: usize) -> (String, f64) {
    let started = Instant::now();
    let sweep = SweepSpec::new()
        .cells(
            TransportConfig::matrix()
                .into_iter()
                .map(|cfg| Box::new(MatrixCell { cfg, resolutions: SWEEP_RESOLUTIONS }) as _),
        )
        .seeds(1..=SWEEP_SEEDS)
        .threads(threads)
        .run();
    let doc =
        Report::new("fig3_bytes_per_resolution").stats(&["bytes_per_resolution"]).render(&sweep);
    (doc, started.elapsed().as_secs_f64() * 1e3)
}

// Same exemption as `timed_sweep`: this harness measures wall time.
#[allow(clippy::disallowed_methods)]
fn main() {
    let mut out = String::from(
        "{\"bench\": \"transports\", \"clients\": 1000, \"queries_per_client\": 1, \
         \"universe\": 400, \"rows\": [",
    );
    for (i, transport) in fleet_transports().into_iter().enumerate() {
        let cfg = FleetConfig {
            queries_per_client: 1,
            mean_gap: SimDuration::from_millis(100),
            ..FleetConfig::new(transport, CLIENTS, UNIVERSE)
        };
        let started = Instant::now();
        let run = run_fleet_cell(&cfg, SEED).expect("1,000 queries fit the txn-id space");
        let wall = started.elapsed();
        let wall_ms = wall.as_secs_f64() * 1e3;
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"cell\": ");
        dohmark::dns::jsontext::write_escaped(&mut out, &run.label);
        out.push_str(&format!(
            ", \"transport\": \"{}\", \"queries\": {}, \"wall_ms\": {:.1}, \
             \"resolutions_per_sec\": {:.0}, \"hit_ratio\": {:.4}}}",
            run.transport,
            run.queries,
            wall_ms,
            run.queries as f64 / wall.as_secs_f64().max(1e-9),
            run.hit_ratio,
        ));
    }
    let (serial_doc, serial_ms) = timed_sweep(1);
    let (parallel_doc, parallel_ms) = timed_sweep(4);
    assert_eq!(serial_doc, parallel_doc, "threads=4 must render byte-identically to threads=1");
    // `cores` keys the speedup: on a single-core box threads=4 can only
    // tie (scheduling overhead makes it slightly lose); the figure is
    // meaningful on >= 4 cores.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    out.push_str(&format!(
        "], \"sweep\": {{\"experiment\": \"fig3_bytes_per_resolution\", \"cells\": {}, \
         \"seeds\": {}, \"cores\": {cores}, \"wall_ms_threads1\": {:.1}, \
         \"wall_ms_threads4\": {:.1}, \"speedup_threads4\": {:.2}, \"byte_identical\": true}}}}",
        TransportConfig::matrix().len(),
        SWEEP_SEEDS,
        serial_ms,
        parallel_ms,
        serial_ms / parallel_ms.max(1e-9),
    ));
    println!("{out}");
}
