//! Wall-clock bench: how fast the simulator drives a 1,000-client fleet
//! through each transport cell.
//!
//! A plain-main harness (no external benchmarking crates): it times one
//! seeded 1,000-stub-client fleet run per transport — the topology the
//! addressed-routing driver exists for — and prints one line of JSON.
//! Redirect stdout to refresh `BENCH_transports.json` at the repo root:
//!
//! ```text
//! cargo bench --bench transports > BENCH_transports.json
//! ```

use std::time::Instant;

use dohmark::netsim::SimDuration;
use dohmark_bench::{fleet_transports, run_fleet_cell, FleetConfig};

const SEED: u64 = 1;
const CLIENTS: usize = 1000;
const UNIVERSE: usize = 400;

fn main() {
    let mut out = String::from(
        "{\"bench\": \"transports\", \"clients\": 1000, \"queries_per_client\": 1, \
         \"universe\": 400, \"rows\": [",
    );
    for (i, transport) in fleet_transports().into_iter().enumerate() {
        let cfg = FleetConfig {
            queries_per_client: 1,
            mean_gap: SimDuration::from_millis(100),
            ..FleetConfig::new(transport, CLIENTS, UNIVERSE)
        };
        let started = Instant::now();
        let run = run_fleet_cell(&cfg, SEED);
        let wall = started.elapsed();
        let wall_ms = wall.as_secs_f64() * 1e3;
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"cell\": ");
        dohmark::dns::jsontext::write_escaped(&mut out, &run.label);
        out.push_str(&format!(
            ", \"transport\": \"{}\", \"queries\": {}, \"wall_ms\": {:.1}, \
             \"resolutions_per_sec\": {:.0}, \"hit_ratio\": {:.4}}}",
            run.transport,
            run.queries,
            wall_ms,
            run.queries as f64 / wall.as_secs_f64().max(1e-9),
            run.hit_ratio,
        ));
    }
    out.push_str("]}");
    println!("{out}");
}
