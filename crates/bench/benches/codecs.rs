fn main() {}
