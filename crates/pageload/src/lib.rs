//! Page-load model (under construction).
