//! Browser page-load model: dependency trees of resources gated on DNS.
//!
//! The paper's headline result (§4, Figure 6) is about *user-perceived*
//! cost: despite DoH's extra bytes, resolver transport barely moves
//! page-load time, because DNS is a small slice of a page's
//! dependency-tree makespan — except under loss, where TCP head-of-line
//! blocking makes DoH-over-h2 visibly diverge from Do53 (Figure 2). This
//! crate reproduces that experiment shape:
//!
//! * A page is a [`PageSpec`] — a dependency
//!   tree of resources fanned out over several domains, drawn from the
//!   Alexa-like [`SiteModel`](dohmark_workload::SiteModel).
//! * [`load_page`] walks the tree the way a browser does: a resource
//!   becomes *discoverable* when its parent finishes (you cannot request
//!   what you have not parsed), each domain's **first** discoverable
//!   resource triggers one DNS resolution through a registered
//!   [`Resolver`](dohmark_doh::Resolver) (any transport of the matrix),
//!   and a resource's fetch starts only once its domain has resolved.
//! * Resource fetches are modelled analytically by a [`FetchModel`]
//!   (one round trip plus serialisation of the resource body) and are
//!   **identical across DNS transports**, so any page-load-time
//!   difference between two transports is attributable to DNS alone —
//!   exactly the paper's controlled comparison.
//! * Page-load time is the makespan of the tree: the simulated time from
//!   navigation start to the last resource completing, with DNS wakes and
//!   fetch-completion timers interleaved on the same deterministic
//!   [`netsim`](dohmark_netsim) event loop, owner-routed via
//!   [`Driver::dispatch`](dohmark_doh::Driver::dispatch).
//!
//! ```
//! use dohmark_dns_wire::Name;
//! use dohmark_doh::{Driver, ReusePolicy, TransportConfig, TransportKind};
//! use dohmark_netsim::{Sim, SimRng};
//! use dohmark_pageload::{load_page, FetchModel};
//! use dohmark_workload::SiteModel;
//!
//! const DEMO_SEED: u64 = 42;
//! let cfg = TransportConfig::new(TransportKind::DohH2, ReusePolicy::Persistent);
//! let mut sim = Sim::new(DEMO_SEED);
//! let stub = sim.add_host("stub");
//! let resolver = sim.add_host("resolver");
//! sim.add_link(stub, resolver, cfg.link);
//! let mut driver = Driver::new();
//! driver.register(&mut sim, |sim| cfg.build_server(sim, resolver));
//! let client = driver.register_resolver(&mut sim, |_| cfg.build_client(stub, resolver));
//!
//! let zone = Name::parse("sites.dohmark.test").unwrap();
//! let mut rng = SimRng::new(DEMO_SEED);
//! let model = SiteModel::new(&mut rng, &zone, 1000, 1.0);
//! let page = model.page_for(3);
//! let fetch = FetchModel::from_link(&cfg.link);
//! let result = load_page(&mut sim, &mut driver, client, &page, &fetch, 1);
//! assert_eq!(result.unresolved, 0);
//! assert!(result.makespan > dohmark_netsim::SimDuration::ZERO);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use dohmark_doh::{Driver, EndpointId};
use dohmark_netsim::{LinkConfig, Sim, SimDuration, SimTime, Wake};
use dohmark_workload::PageSpec;

/// High bits of the fetch-completion timer tokens [`load_page`] arms; the
/// low 32 bits carry the resource index. Disjoint from the driver's
/// reserved [`ADVANCE_TOKEN`](dohmark_doh::ADVANCE_TOKEN) (`u64::MAX`)
/// and from the Do53 retransmission-timer namespace, so the page-load
/// event loop can claim its own timers by prefix and hand every other
/// wake to [`Driver::dispatch`].
pub const FETCH_TOKEN_BASE: u64 = 0xF37C << 32;

/// Analytic model of one resource fetch: a request/response round trip on
/// the access link plus serialisation of the resource body at the link's
/// bandwidth.
///
/// The model is deliberately DNS-transport-independent — every transport
/// pays the same fetch cost per resource — so comparing page-load
/// makespans across [`TransportConfig`](dohmark_doh::TransportConfig)s
/// isolates the contribution of DNS, which is the paper's Figure 2/6
/// methodology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FetchModel {
    /// One-way propagation delay of the fetch path.
    pub latency: SimDuration,
    /// Link used for body serialisation delay.
    link: LinkConfig,
}

impl FetchModel {
    /// A fetch model riding the same access link the DNS traffic uses —
    /// the usual choice, since stub and content sit behind one last mile.
    pub fn from_link(link: &LinkConfig) -> FetchModel {
        FetchModel { latency: link.latency, link: *link }
    }

    /// Wall-clock cost of fetching a `bytes`-long resource: one round
    /// trip (request out, first byte back) plus body serialisation.
    pub fn fetch_time(&self, bytes: u32) -> SimDuration {
        self.latency + self.latency + self.link.serialise(bytes as usize)
    }
}

/// What [`load_page`] measured for one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageLoadResult {
    /// Navigation start to last resource completion. When some resources
    /// never loaded (`unresolved > 0`) this covers only the part of the
    /// tree that did.
    pub makespan: SimDuration,
    /// Distinct domains resolved (one DNS resolution each).
    pub dns_queries: u32,
    /// Sum over domains of the time from query sent to answer in hand.
    pub dns_wait_total: SimDuration,
    /// The slowest single domain resolution.
    pub dns_wait_max: SimDuration,
    /// Total resources in the page.
    pub resources: u32,
    /// Resources that never completed because their domain's resolution
    /// was lost (and, transitively, their whole subtree): the simulation
    /// ran dry with them still gated.
    pub unresolved: u32,
}

/// Per-domain DNS progress inside one [`load_page`] run.
#[derive(Debug, Clone, Copy)]
enum DnsState {
    /// No discoverable resource has needed this domain yet.
    Idle,
    /// Query sent at the recorded time; resources queue behind it.
    InFlight(SimTime),
    /// Answer in hand; fetches on this domain start immediately.
    Resolved,
}

/// Per-resource progress inside one [`load_page`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ResState {
    /// Parent not finished — the browser has not discovered it yet.
    Blocked,
    /// Discovered, waiting for its domain's DNS resolution.
    WaitingDns,
    /// Fetch timer armed.
    Fetching,
    /// Fetched.
    Done,
}

/// Loads one page through the registered resolver `client`, returning the
/// tree's makespan and DNS accounting.
///
/// The engine runs its own event loop on [`Sim::next_wake_owned`]: wakes
/// carrying a [`FETCH_TOKEN_BASE`]-prefixed timer token are its own
/// fetch completions, everything else (DNS transport traffic, TCP timers,
/// Do53 retransmissions) is handed to [`Driver::dispatch`] for addressed
/// routing. Domain `d` of the page is resolved with transaction id
/// `txn_base + d`; the caller owns the transaction-id space and must leave
/// `page.domains.len()` ids free from `txn_base` (the fleet harnesses
/// thread a global counter through, exactly like
/// [`FleetSchedule`](dohmark_workload::FleetSchedule) consumers do).
///
/// The loop ends when every resource is fetched or the simulation runs
/// dry; in the latter case still-gated resources are counted as
/// `unresolved` (a lost resolution on a retry-less transport starves its
/// domain and that domain's whole dependency subtree).
pub fn load_page(
    sim: &mut Sim,
    driver: &mut Driver,
    client: EndpointId,
    page: &PageSpec,
    fetch: &FetchModel,
    txn_base: u16,
) -> PageLoadResult {
    let n = page.resources.len();
    let n_domains = page.domains.len();
    assert!(n_domains <= usize::from(u16::MAX - txn_base), "transaction-id space exhausted");

    // The dependency tree, inverted: children[r] lists the resources that
    // become discoverable when r finishes.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (r, res) in page.resources.iter().enumerate() {
        if let Some(p) = res.parent {
            children[p].push(r);
        }
    }

    let start = sim.now();
    let mut loader = Loader {
        client,
        page,
        fetch,
        txn_base,
        res_state: vec![ResState::Blocked; n],
        dns: vec![DnsState::Idle; n_domains],
        dns_waiters: vec![Vec::new(); n_domains],
        done: 0,
        dns_queries: 0,
    };
    let mut last_done = start;
    let mut dns_wait_total = SimDuration::ZERO;
    let mut dns_wait_max = SimDuration::ZERO;

    for r in 0..n {
        if page.resources[r].parent.is_none() {
            loader.discover(sim, driver, r);
        }
    }

    while loader.done < n as u32 {
        let Some((wake, owner)) = sim.next_wake_owned() else { break };
        if let Wake::AppTimer { token, .. } = wake {
            let idx = token & 0xFFFF_FFFF;
            if token & !0xFFFF_FFFF == FETCH_TOKEN_BASE && (idx as usize) < n {
                // One of our fetch-completion timers.
                let r = idx as usize;
                debug_assert_eq!(loader.res_state[r], ResState::Fetching);
                loader.res_state[r] = ResState::Done;
                loader.done += 1;
                last_done = sim.now();
                for c in std::mem::take(&mut children[r]) {
                    loader.discover(sim, driver, c);
                }
                continue;
            }
        }
        // A DNS-transport wake (UDP/TCP readability, retransmission
        // timers, teardown): addressed routing, then check whether any
        // in-flight resolution just completed.
        driver.dispatch(sim, &wake, owner);
        for d in 0..n_domains {
            let DnsState::InFlight(sent) = loader.dns[d] else { continue };
            if driver.take_response(client, txn_base + d as u16).is_none() {
                continue;
            }
            let wait = sim.now() - sent;
            dns_wait_total = dns_wait_total + wait;
            if wait > dns_wait_max {
                dns_wait_max = wait;
            }
            loader.dns[d] = DnsState::Resolved;
            for r in std::mem::take(&mut loader.dns_waiters[d]) {
                loader.start_fetch(sim, r);
            }
        }
    }

    PageLoadResult {
        makespan: last_done - start,
        dns_queries: loader.dns_queries,
        dns_wait_total,
        dns_wait_max,
        resources: n as u32,
        unresolved: n as u32 - loader.done,
    }
}

/// The mutable browser state one [`load_page`] run threads through
/// discovery: which resources are where in their lifecycle, which domains
/// have resolved, and who queues behind an in-flight resolution.
struct Loader<'a> {
    client: EndpointId,
    page: &'a PageSpec,
    fetch: &'a FetchModel,
    txn_base: u16,
    res_state: Vec<ResState>,
    dns: Vec<DnsState>,
    /// Resources discovered while their domain's query is in flight.
    dns_waiters: Vec<Vec<usize>>,
    done: u32,
    dns_queries: u32,
}

impl Loader<'_> {
    /// Discovery: called when a resource's parent is done (or at
    /// navigation start for roots). Starts the fetch if the domain is
    /// resolved, otherwise queues behind the domain's (possibly just
    /// issued) resolution.
    fn discover(&mut self, sim: &mut Sim, driver: &mut Driver, r: usize) {
        let d = self.page.resources[r].domain;
        match self.dns[d] {
            DnsState::Resolved => self.start_fetch(sim, r),
            DnsState::InFlight(_) => {
                self.res_state[r] = ResState::WaitingDns;
                self.dns_waiters[d].push(r);
            }
            DnsState::Idle => {
                self.res_state[r] = ResState::WaitingDns;
                self.dns_waiters[d].push(r);
                self.dns[d] = DnsState::InFlight(sim.now());
                self.dns_queries += 1;
                driver.send_query(
                    sim,
                    self.client,
                    &self.page.domains[d],
                    self.txn_base + d as u16,
                );
            }
        }
    }

    fn start_fetch(&mut self, sim: &mut Sim, r: usize) {
        self.res_state[r] = ResState::Fetching;
        sim.schedule_app_in(
            self.fetch.fetch_time(self.page.resources[r].bytes),
            FETCH_TOKEN_BASE | r as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dohmark_dns_wire::Name;
    use dohmark_doh::{ReusePolicy, TransportConfig, TransportKind, UdpRetry};
    use dohmark_netsim::SimRng;
    use dohmark_workload::{Resource, SiteModel};

    const TEST_SEED: u64 = 77;

    /// A hand-built two-domain page: root HTML on d0 with two children,
    /// one of which pulls a third-party resource on d1 with its own child.
    fn two_domain_page() -> PageSpec {
        let d0 = Name::parse("s1.sites.dohmark.test").unwrap();
        let d1 = Name::parse("d1.s1.sites.dohmark.test").unwrap();
        PageSpec {
            site_rank: 1,
            domains: vec![d0, d1],
            resources: vec![
                Resource { domain: 0, parent: None, bytes: 10_000 },
                Resource { domain: 0, parent: Some(0), bytes: 5_000 },
                Resource { domain: 1, parent: Some(0), bytes: 20_000 },
                Resource { domain: 1, parent: Some(2), bytes: 1_000 },
            ],
        }
    }

    fn harness(cfg: &TransportConfig, seed: u64) -> (Sim, Driver, EndpointId) {
        let mut sim = Sim::new(seed);
        let stub = sim.add_host("stub");
        let resolver = sim.add_host("resolver");
        sim.add_link(stub, resolver, cfg.link);
        let mut driver = Driver::new();
        driver.register(&mut sim, |sim| cfg.build_server(sim, resolver));
        let client = driver.register_resolver(&mut sim, |_| cfg.build_client(stub, resolver));
        (sim, driver, client)
    }

    #[test]
    fn loads_a_dependency_tree_and_accounts_dns() {
        let cfg = TransportConfig::new(TransportKind::Do53, ReusePolicy::Fresh);
        let (mut sim, mut driver, client) = harness(&cfg, TEST_SEED);
        let page = two_domain_page();
        let fetch = FetchModel::from_link(&cfg.link);
        let result = load_page(&mut sim, &mut driver, client, &page, &fetch, 1);
        assert_eq!(result.unresolved, 0);
        assert_eq!(result.resources, 4);
        assert_eq!(result.dns_queries, 2, "one resolution per distinct domain");
        assert!(result.dns_wait_total >= result.dns_wait_max);
        assert!(result.dns_wait_max > SimDuration::ZERO);
        // The critical path serialises: DNS(d0) + fetch(0), then in
        // parallel fetch(1) and DNS(d1) + fetch(2) + fetch(3).
        let floor = result.dns_wait_max
            + fetch.fetch_time(10_000)
            + fetch.fetch_time(20_000)
            + fetch.fetch_time(1_000);
        assert!(result.makespan >= floor, "{:?} < {floor:?}", result.makespan);
    }

    #[test]
    fn makespan_respects_dependency_chains_over_width() {
        // A 3-deep chain must take at least 3 fetch round trips; 3
        // siblings of the same sizes fan out and finish sooner.
        let d0 = Name::parse("s2.sites.dohmark.test").unwrap();
        let chain = PageSpec {
            site_rank: 2,
            domains: vec![d0.clone()],
            resources: vec![
                Resource { domain: 0, parent: None, bytes: 1_000 },
                Resource { domain: 0, parent: Some(0), bytes: 1_000 },
                Resource { domain: 0, parent: Some(1), bytes: 1_000 },
            ],
        };
        let wide = PageSpec {
            site_rank: 2,
            domains: vec![d0],
            resources: vec![
                Resource { domain: 0, parent: None, bytes: 1_000 },
                Resource { domain: 0, parent: Some(0), bytes: 1_000 },
                Resource { domain: 0, parent: Some(0), bytes: 1_000 },
            ],
        };
        let cfg = TransportConfig::new(TransportKind::Do53, ReusePolicy::Fresh);
        let fetch = FetchModel::from_link(&cfg.link);
        let run = |page: &PageSpec| {
            let (mut sim, mut driver, client) = harness(&cfg, TEST_SEED);
            load_page(&mut sim, &mut driver, client, page, &fetch, 1)
        };
        let deep = run(&chain);
        let shallow = run(&wide);
        assert_eq!(deep.unresolved, 0);
        assert_eq!(shallow.unresolved, 0);
        assert!(deep.makespan > shallow.makespan, "{deep:?} vs {shallow:?}");
    }

    #[test]
    fn lost_resolution_starves_the_domain_subtree() {
        // A dead link with a retry-less stub: nothing ever resolves, so
        // the root never fetches and the whole tree is unresolved.
        let mut cfg = TransportConfig::new(TransportKind::Do53, ReusePolicy::Fresh);
        cfg.link = cfg.link.loss(1.0);
        let (mut sim, mut driver, client) = harness(&cfg, TEST_SEED);
        let page = two_domain_page();
        let fetch = FetchModel::from_link(&cfg.link);
        let result = load_page(&mut sim, &mut driver, client, &page, &fetch, 1);
        assert_eq!(result.unresolved, 4);
        assert_eq!(result.makespan, SimDuration::ZERO);
        // Only d0 was ever discoverable: d1's resources sit behind the
        // root that never loaded.
        assert_eq!(result.dns_queries, 1);
    }

    #[test]
    fn every_transport_loads_model_pages_deterministically() {
        let zone = Name::parse("sites.dohmark.test").unwrap();
        for kind in TransportKind::ALL {
            let cfg = TransportConfig::new(kind, ReusePolicy::Persistent)
                .with_udp_retry(UdpRetry::standard());
            let run = || {
                let (mut sim, mut driver, client) = harness(&cfg, TEST_SEED);
                let mut rng = SimRng::new(TEST_SEED);
                let model = SiteModel::new(&mut rng, &zone, 500, 1.0);
                let fetch = FetchModel::from_link(&cfg.link);
                let mut txn_base = 1u16;
                let mut results = Vec::new();
                for rank in [1usize, 5, 17] {
                    let page = model.page_for(rank);
                    let r = load_page(&mut sim, &mut driver, client, &page, &fetch, txn_base);
                    txn_base += page.domains.len() as u16;
                    results.push(r);
                }
                results
            };
            let first = run();
            let second = run();
            assert_eq!(first, second, "{kind:?} not deterministic");
            for r in &first {
                assert_eq!(r.unresolved, 0, "{kind:?}: {r:?}");
                assert!(r.makespan > SimDuration::ZERO);
                assert!(r.dns_queries >= 1 && r.resources >= 1);
            }
        }
    }

    #[test]
    fn fetch_model_charges_round_trip_plus_serialisation() {
        let link = LinkConfig::with_rtt(SimDuration::from_millis(10)).bandwidth_mbps(8);
        let fetch = FetchModel::from_link(&link);
        // 5 ms out + 5 ms back + 1000 B at 1 B/µs.
        assert_eq!(fetch.fetch_time(1000), SimDuration::from_millis(11));
    }
}
