//! Page-load model (under construction).
//!
//! # Planned design
//!
//! A browser model for the paper's Figures 1 and 6: pages are dependency
//! trees of resources spread over several domains (with per-page domain
//! counts drawn from an Alexa-like distribution), loading triggers DNS
//! resolutions through a pluggable resolver, and page-load time is the
//! simulated makespan of the tree. Comparing UDP, DoT and DoH resolvers
//! under identical page workloads reproduces the paper's finding that
//! resolver transport barely moves page-load time despite the extra bytes.

#![forbid(unsafe_code)]
