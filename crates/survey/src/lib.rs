//! DoH landscape survey (under construction).
