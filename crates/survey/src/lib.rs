//! DoH landscape survey (under construction).
//!
//! # Planned design
//!
//! A static model of the DoH provider landscape the paper surveys
//! (Tables 1–2): per-provider endpoint metadata — supported HTTP versions,
//! `application/dns-message` vs. `application/dns-json` content types,
//! EDNS client-subnet behaviour and certificate chain sizes — exposed as
//! typed records the experiment harnesses iterate over to parameterise
//! simulations per provider.

#![forbid(unsafe_code)]
