//! `simlint` — static determinism & hygiene lints for the dohmark
//! workspace.
//!
//! The workspace's load-bearing guarantee is bit-for-bit determinism:
//! [`SweepSpec`](../dohmark_bench/sweep) promises byte-identical reports
//! at any thread count, and the fleet-scale tests pin thousand-client
//! runs to exact bytes. Runtime tests defend the guarantee after the
//! fact; simlint rejects the *ingredients* of nondeterminism — wall
//! clocks, `HashMap` iteration order, stray threads — at lint time,
//! before they can reach wake ordering or report bytes.
//!
//! # How it works
//!
//! [`lexer`] scrubs each `.rs` file into per-line code/comment channels
//! (comment-, string-literal- and `#[cfg(test)]`-aware, via brace
//! tracking), and [`rules`] runs the table-driven catalog over the
//! scrubbed lines. Findings print as `file:line rule message`; the
//! `dohmark-simlint` binary exits non-zero under `--deny` when any
//! survive, which is how CI consumes it. `--format json` / `--format
//! github` re-render the same findings for machines ([`render_json`],
//! [`render_github`]).
//!
//! # The item model
//!
//! Lexical rules see *lines*; the v2 rules need to see *items*. The
//! [`items`] module recovers, per file, the module path implied by the
//! file's workspace location, the `use`-alias map, and every
//! `fn`/`impl`/`trait`/`mod` span by brace tracking over scrubbed code
//! (string and comment braces are already blanked, so depth never
//! desyncs); each function's body is then mined for `ident(` /
//! `path::ident(` / `.method(` call shapes. A workspace pass joins all
//! files into a callable index (`doh::driver::drain_routed` → item), on
//! which calls resolve: same-impl method, then same-module free
//! function, then alias-expanded path with `crate::`/`self::`
//! normalised, then a unique `::`-suffix match. This is deliberately
//! *not* a parser — generics are skipped, macros are opaque, and an
//! unresolvable call simply doesn't propagate — but it is exact enough
//! to answer "can this endpoint reach `Sim::schedule_app` without going
//! through the `Driver`?", which no per-line regex can. Workspace rules
//! ([`rules::Check::Workspace`]) get the whole model plus one sink per
//! file, so cross-file findings still honour file-local allows, and
//! every finding is attributed to its enclosing item path (the `item`
//! field of the JSON schema).
//!
//! # Suppression
//!
//! Every rule honours a scoped allow on the finding's line or the line
//! directly above, with a mandatory reason:
//!
//! ```text
//! // simlint::allow(no-print-in-lib): the CLI front-end owns stdout
//! println!("{doc}");
//! ```
//!
//! Unused or malformed allows are findings themselves (`unused-allow`,
//! `allow-syntax`), so suppressions cannot outlive the code they excuse.
//!
//! # Testing hook
//!
//! A fixture can pin the workspace-relative path it is linted *as* with
//! a leading `//@ path: crates/netsim/src/fake.rs` directive — that is
//! how the golden corpus exercises path-scoped rules from inside
//! `crates/simlint/tests/fixtures/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod items;
pub mod lexer;
pub mod output;
pub mod rules;

pub use output::{render_github, render_json};
pub use rules::{Finding, Rule, RULES};

use rules::{FileView, Sink};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never walked: build output, VCS metadata, and the golden
/// fixture corpus (which is *intentionally* full of findings).
const SKIP_DIRS: &[&str] = &["target", ".git"];

/// The golden fixture corpus, workspace-relative: excluded from
/// [`lint_workspace`] (it is *intentionally* full of findings) and the
/// target of [`bless_fixtures`] / the CLI's `--bless`.
pub const FIXTURES_DIR: &str = "crates/simlint/tests/fixtures";

/// Lints one source text as workspace-relative path `rel`. A leading
/// `//@ path: <p>` directive overrides `rel` (the golden-fixture hook).
/// Workspace rules run over a one-file workspace, so single-file
/// fixtures can exercise them as long as their call chains stay in-file.
pub fn lint_source(rel: &str, source: &str) -> Vec<Finding> {
    lint_files(vec![(rel.to_string(), source.to_string())])
}

/// The full lint pipeline over a set of `(rel, source)` files: scrub
/// every file, build the [`items::Workspace`] model, run the file rules
/// per file and the workspace rules over the joined model, then resolve
/// suppression and attribute each finding to its enclosing item.
/// Findings come back sorted by path, then line, then rule.
pub fn lint_files(files: Vec<(String, String)>) -> Vec<Finding> {
    let views: Vec<FileView> = files
        .into_iter()
        .map(|(rel, source)| {
            let rel = directive_path(&source).unwrap_or(rel);
            FileView { rel, lines: lexer::scrub(&source) }
        })
        .collect();
    let ws = items::Workspace::build(&views);
    let mut sinks: Vec<Sink> = views.iter().map(Sink::new).collect();
    for rule in RULES {
        match rule.check {
            rules::Check::File(f) => {
                for (view, sink) in views.iter().zip(sinks.iter_mut()) {
                    f(view, sink);
                }
            }
            rules::Check::Workspace(f) => f(&ws, &mut sinks),
        }
    }
    let mut findings = Vec::new();
    for (fi, sink) in sinks.into_iter().enumerate() {
        for mut f in sink.finish() {
            f.item = ws.enclosing_path(fi, f.line - 1);
            findings.push(f);
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// The `//@ path: …` override from the first lines of `source`, if any.
fn directive_path(source: &str) -> Option<String> {
    source
        .lines()
        .take(3)
        .find_map(|l| l.trim().strip_prefix("//@ path:"))
        .map(|p| p.trim().to_string())
}

/// Walks every `.rs` file under `root` (skipping `target/`, `.git/` and
/// the fixture corpus) and lints it. Findings come back sorted by path,
/// then line, then rule — byte-stable across runs and platforms.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut inputs = Vec::new();
    for rel in files {
        let source = fs::read_to_string(root.join(&rel))?;
        let rel = rel.to_string_lossy().replace('\\', "/");
        inputs.push((rel, source));
    }
    Ok(lint_files(inputs))
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            if rel.to_string_lossy().replace('\\', "/") == FIXTURES_DIR {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}

/// Renders findings in the canonical `file:line rule message` format,
/// one per line.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    out
}

/// Re-lints every `.rs` fixture under `dir` and rewrites its sibling
/// `.expected` file with the current findings — the `--bless` workflow
/// for intentional rule changes. Returns `(expected_path, changed)` per
/// fixture, sorted by path. Blessing is idempotent: a second run over an
/// unchanged corpus rewrites nothing (the self-consistency test pins
/// this).
pub fn bless_fixtures(dir: &Path) -> io::Result<Vec<(PathBuf, bool)>> {
    let mut sources: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .filter(|p| p.extension().is_some_and(|ext| ext == "rs"))
        .collect();
    sources.sort();
    let mut out = Vec::new();
    for path in sources {
        let source = fs::read_to_string(&path)?;
        let rel = path.file_name().unwrap_or(path.as_os_str()).to_string_lossy();
        let rendered = render(&lint_source(&rel, &source));
        let expected = path.with_extension("expected");
        let changed = fs::read_to_string(&expected).ok().as_deref() != Some(rendered.as_str());
        if changed {
            fs::write(&expected, &rendered)?;
        }
        out.push((expected, changed));
    }
    Ok(out)
}

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directive_overrides_the_lint_path() {
        let src = "//@ path: crates/netsim/src/fake.rs\nfn f() { let t = Instant::now(); }\n";
        let found = lint_source("crates/simlint/tests/fixtures/x.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].file, "crates/netsim/src/fake.rs");
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn render_is_the_canonical_one_line_format() {
        let f = Finding {
            file: "crates/doh/src/dot.rs".into(),
            line: 7,
            rule: "no-wall-clock",
            message: "boom".into(),
            item: "doh::dot".into(),
        };
        assert_eq!(render(&[f]), "crates/doh/src/dot.rs:7 no-wall-clock boom\n");
    }
}
