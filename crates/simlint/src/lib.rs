//! `simlint` — static determinism & hygiene lints for the dohmark
//! workspace.
//!
//! The workspace's load-bearing guarantee is bit-for-bit determinism:
//! [`SweepSpec`](../dohmark_bench/sweep) promises byte-identical reports
//! at any thread count, and the fleet-scale tests pin thousand-client
//! runs to exact bytes. Runtime tests defend the guarantee after the
//! fact; simlint rejects the *ingredients* of nondeterminism — wall
//! clocks, `HashMap` iteration order, stray threads — at lint time,
//! before they can reach wake ordering or report bytes.
//!
//! # How it works
//!
//! [`lexer`] scrubs each `.rs` file into per-line code/comment channels
//! (comment-, string-literal- and `#[cfg(test)]`-aware, via brace
//! tracking), and [`rules`] runs the table-driven catalog over the
//! scrubbed lines. Findings print as `file:line rule message`; the
//! `dohmark-simlint` binary exits non-zero under `--deny` when any
//! survive, which is how CI consumes it.
//!
//! # Suppression
//!
//! Every rule honours a scoped allow on the finding's line or the line
//! directly above, with a mandatory reason:
//!
//! ```text
//! // simlint::allow(no-print-in-lib): the CLI front-end owns stdout
//! println!("{doc}");
//! ```
//!
//! Unused or malformed allows are findings themselves (`unused-allow`,
//! `allow-syntax`), so suppressions cannot outlive the code they excuse.
//!
//! # Testing hook
//!
//! A fixture can pin the workspace-relative path it is linted *as* with
//! a leading `//@ path: crates/netsim/src/fake.rs` directive — that is
//! how the golden corpus exercises path-scoped rules from inside
//! `crates/simlint/tests/fixtures/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

pub use rules::{Finding, Rule, RULES};

use rules::{FileView, Sink};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never walked: build output, VCS metadata, and the golden
/// fixture corpus (which is *intentionally* full of findings).
const SKIP_DIRS: &[&str] = &["target", ".git"];
const FIXTURES_DIR: &str = "crates/simlint/tests/fixtures";

/// Lints one source text as workspace-relative path `rel`. A leading
/// `//@ path: <p>` directive overrides `rel` (the golden-fixture hook).
pub fn lint_source(rel: &str, source: &str) -> Vec<Finding> {
    let rel = directive_path(source).unwrap_or_else(|| rel.to_string());
    let view = FileView { rel, lines: lexer::scrub(source) };
    let mut sink = Sink::new(&view);
    for rule in RULES {
        (rule.check)(&view, &mut sink);
    }
    sink.finish(&view)
}

/// The `//@ path: …` override from the first lines of `source`, if any.
fn directive_path(source: &str) -> Option<String> {
    source
        .lines()
        .take(3)
        .find_map(|l| l.trim().strip_prefix("//@ path:"))
        .map(|p| p.trim().to_string())
}

/// Walks every `.rs` file under `root` (skipping `target/`, `.git/` and
/// the fixture corpus) and lints it. Findings come back sorted by path,
/// then line, then rule — byte-stable across runs and platforms.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for rel in files {
        let source = fs::read_to_string(root.join(&rel))?;
        let rel = rel.to_string_lossy().replace('\\', "/");
        findings.extend(lint_source(&rel, &source));
    }
    Ok(findings)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            if rel.to_string_lossy().replace('\\', "/") == FIXTURES_DIR {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}

/// Renders findings in the canonical `file:line rule message` format,
/// one per line.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    out
}

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directive_overrides_the_lint_path() {
        let src = "//@ path: crates/netsim/src/fake.rs\nfn f() { let t = Instant::now(); }\n";
        let found = lint_source("crates/simlint/tests/fixtures/x.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].file, "crates/netsim/src/fake.rs");
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn render_is_the_canonical_one_line_format() {
        let f = Finding {
            file: "crates/doh/src/dot.rs".into(),
            line: 7,
            rule: "no-wall-clock",
            message: "boom".into(),
        };
        assert_eq!(render(&[f]), "crates/doh/src/dot.rs:7 no-wall-clock boom\n");
    }
}
