//! `dohmark-simlint` — the CLI over [`dohmark_simlint`].
//!
//! ```text
//! dohmark-simlint [--deny] [--root DIR] [--list-rules] [FILE...]
//! ```
//!
//! With no `FILE` arguments the whole workspace is linted (found by
//! walking up from `--root`, default the current directory, to the
//! nearest `[workspace]` manifest). Findings print one per line as
//! `file:line rule message`. Exit status: 0 when clean, or in warn mode
//! (the default); 1 when `--deny` and findings exist; 2 on usage or I/O
//! errors — the `--deny` form is what CI runs.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: dohmark-simlint [--deny] [--root DIR] [--list-rules] [FILE...]";

fn main() -> ExitCode {
    let mut deny = false;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a directory"),
            },
            "--list-rules" => {
                for rule in dohmark_simlint::RULES {
                    println!(
                        "{}: {}",
                        rule.name,
                        rule.summary.split_whitespace().collect::<Vec<_>>().join(" ")
                    );
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                return usage_error(&format!("unknown flag {flag:?}"));
            }
            file => files.push(PathBuf::from(file)),
        }
    }

    let findings = if files.is_empty() {
        let start = root.unwrap_or_else(|| PathBuf::from("."));
        let start = match start.canonicalize() {
            Ok(dir) => dir,
            Err(e) => return io_error(&start, &e),
        };
        let Some(ws) = dohmark_simlint::find_workspace_root(&start) else {
            eprintln!("dohmark-simlint: no [workspace] manifest above {}", start.display());
            return ExitCode::from(2);
        };
        match dohmark_simlint::lint_workspace(&ws) {
            Ok(findings) => findings,
            Err(e) => return io_error(&ws, &e),
        }
    } else {
        let mut findings = Vec::new();
        for file in &files {
            let source = match std::fs::read_to_string(file) {
                Ok(s) => s,
                Err(e) => return io_error(file, &e),
            };
            let rel = file.to_string_lossy().replace('\\', "/");
            findings.extend(dohmark_simlint::lint_source(&rel, &source));
        }
        findings
    };

    print!("{}", dohmark_simlint::render(&findings));
    if findings.is_empty() {
        eprintln!("simlint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "simlint: {} finding(s){}",
            findings.len(),
            if deny { "" } else { " (warn mode; --deny for CI)" }
        );
        if deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("dohmark-simlint: {message}\n{USAGE}");
    ExitCode::from(2)
}

fn io_error(path: &Path, e: &std::io::Error) -> ExitCode {
    eprintln!("dohmark-simlint: {}: {e}", path.display());
    ExitCode::from(2)
}
