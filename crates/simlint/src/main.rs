//! `dohmark-simlint` — the CLI over [`dohmark_simlint`].
//!
//! ```text
//! dohmark-simlint [--deny] [--root DIR] [--format text|json|github]
//!                 [--bless] [--list-rules] [FILE...]
//! ```
//!
//! With no `FILE` arguments the whole workspace is linted (found by
//! walking up from `--root`, default the current directory, to the
//! nearest `[workspace]` manifest). Findings print one per line as
//! `file:line rule message`; `--format json` emits one machine-readable
//! document on stdout and `--format github` emits workflow-command
//! annotations for CI. `--bless` rewrites the golden fixture corpus's
//! `.expected` files from the current rule catalog instead of linting.
//! Exit status: 0 when clean, or in warn mode (the default); 1 when
//! `--deny` and findings exist; 2 on usage or I/O errors — the `--deny`
//! form is what CI runs.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: dohmark-simlint [--deny] [--root DIR] \
                     [--format text|json|github] [--bless] [--list-rules] [FILE...]";

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Github,
}

fn main() -> ExitCode {
    let mut deny = false;
    let mut bless = false;
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--bless" => bless = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a directory"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("github") => format = Format::Github,
                Some(other) => {
                    return usage_error(&format!(
                        "unknown format {other:?} (expected text, json or github)"
                    ))
                }
                None => return usage_error("--format needs a value"),
            },
            "--list-rules" => {
                for rule in dohmark_simlint::RULES {
                    println!(
                        "{}: {}",
                        rule.name,
                        rule.summary.split_whitespace().collect::<Vec<_>>().join(" ")
                    );
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                return usage_error(&format!("unknown flag {flag:?}"));
            }
            file => files.push(PathBuf::from(file)),
        }
    }

    if bless {
        if !files.is_empty() {
            return usage_error("--bless takes no FILE arguments");
        }
        let Some(ws) = resolve_workspace(root) else { return ExitCode::from(2) };
        let fixtures = ws.join(dohmark_simlint::FIXTURES_DIR);
        return match dohmark_simlint::bless_fixtures(&fixtures) {
            Ok(results) => {
                let updated = results.iter().filter(|(_, changed)| *changed).count();
                eprintln!("simlint: blessed {} fixture(s), {updated} updated", results.len());
                ExitCode::SUCCESS
            }
            Err(e) => io_error(&fixtures, &e),
        };
    }

    let findings = if files.is_empty() {
        let Some(ws) = resolve_workspace(root) else { return ExitCode::from(2) };
        match dohmark_simlint::lint_workspace(&ws) {
            Ok(findings) => findings,
            Err(e) => return io_error(&ws, &e),
        }
    } else {
        let mut inputs = Vec::new();
        for file in &files {
            let source = match std::fs::read_to_string(file) {
                Ok(s) => s,
                Err(e) => return io_error(file, &e),
            };
            let rel = file.to_string_lossy().replace('\\', "/");
            inputs.push((rel, source));
        }
        dohmark_simlint::lint_files(inputs)
    };

    match format {
        Format::Text => print!("{}", dohmark_simlint::render(&findings)),
        Format::Json => print!("{}", dohmark_simlint::render_json(&findings)),
        Format::Github => print!("{}", dohmark_simlint::render_github(&findings)),
    }
    if findings.is_empty() {
        eprintln!("simlint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "simlint: {} finding(s){}",
            findings.len(),
            if deny { "" } else { " (warn mode; --deny for CI)" }
        );
        if deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}

/// Resolves the workspace root from `--root` (or the current directory),
/// reporting errors itself.
fn resolve_workspace(root: Option<PathBuf>) -> Option<PathBuf> {
    let start = root.unwrap_or_else(|| PathBuf::from("."));
    let start = match start.canonicalize() {
        Ok(dir) => dir,
        Err(e) => {
            eprintln!("dohmark-simlint: {}: {e}", start.display());
            return None;
        }
    };
    let ws = dohmark_simlint::find_workspace_root(&start);
    if ws.is_none() {
        eprintln!("dohmark-simlint: no [workspace] manifest above {}", start.display());
    }
    ws
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("dohmark-simlint: {message}\n{USAGE}");
    ExitCode::from(2)
}

fn io_error(path: &Path, e: &std::io::Error) -> ExitCode {
    eprintln!("dohmark-simlint: {}: {e}", path.display());
    ExitCode::from(2)
}
