//! The rule catalog and the finding sink with `simlint::allow` support.
//!
//! Every rule is a plain function registered in the [`RULES`] table —
//! adding a rule is writing one function, one table row, and one golden
//! fixture. A rule is either a [`Check::File`] pass over one
//! [`FileView`] (PR 8's lexical rules) or a [`Check::Workspace`] pass
//! over the [`Workspace`] item model, reporting into per-file sinks —
//! that is how the cross-file determinism rules join call graphs while
//! still honouring file-local suppression. Rules report through
//! [`Sink::report`], which consults the file's
//! `// simlint::allow(<rule>): <reason>` annotations: an allow on the
//! finding's line or the line directly above suppresses it (and is
//! marked used; unused or malformed allows become findings themselves).

use crate::items::{ItemKind, Workspace};
use crate::lexer::{find_token, has_token, is_ident_char, Line};
use std::collections::BTreeSet;

/// One lint finding, printed as `file:line rule message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier from the catalog.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Path of the enclosing item (`doh::driver::Driver::resolve`), or
    /// the file's module path for file-level findings. Carried by the
    /// JSON output; the text format omits it to stay byte-compatible
    /// with the PR 8 golden corpus.
    pub item: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{} {} {}", self.file, self.line, self.rule, self.message)
    }
}

/// A scrubbed file plus the path-derived facts rules scope on.
pub struct FileView {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Scrubbed lines, 0-indexed (findings report 1-based).
    pub lines: Vec<Line>,
}

impl FileView {
    fn has_component(&self, name: &str) -> bool {
        self.rel.split('/').any(|c| c == name)
    }

    /// Wall-clock timing harnesses live under a `benches/` directory.
    pub fn is_bench(&self) -> bool {
        self.has_component("benches")
    }

    /// Binaries and examples own stdout.
    pub fn is_bin_or_example(&self) -> bool {
        self.has_component("bin")
            || self.has_component("examples")
            || self.rel.ends_with("/main.rs")
    }

    /// Integration tests (a `tests/` path component).
    pub fn is_test_path(&self) -> bool {
        self.has_component("tests")
    }

    /// The determinism-critical crates `no-bare-unwrap-in-core` covers.
    pub fn is_core_crate(&self) -> bool {
        ["crates/netsim/src/", "crates/doh/src/", "crates/httpsim/src/"]
            .iter()
            .any(|p| self.rel.starts_with(p))
    }

    /// Is line `i` exempt as test code (unit-test mod or tests/ file)?
    fn test_line(&self, i: usize) -> bool {
        self.is_test_path() || self.lines[i].in_test
    }
}

/// How a rule runs: over one file's lines, or over the whole-workspace
/// item model with one sink per file.
pub enum Check {
    /// A lexical pass over a single scrubbed file.
    File(fn(&FileView, &mut Sink)),
    /// A structural pass over the [`Workspace`] item model. `sinks` is
    /// parallel to [`Workspace::views`].
    Workspace(fn(&Workspace, &mut [Sink])),
}

/// One row of the catalog.
pub struct Rule {
    /// The identifier used in findings and `simlint::allow(...)`.
    pub name: &'static str,
    /// One-line description for `--list-rules` and the README table.
    pub summary: &'static str,
    /// The check itself.
    pub check: Check,
}

/// The rule catalog. Order is the report order within a line.
pub const RULES: &[Rule] = &[
    Rule {
        name: "no-wall-clock",
        summary: "Instant::now / SystemTime::now / .elapsed() outside benches/ — \
                  simulated code reads time from Sim::now()",
        check: Check::File(no_wall_clock),
    },
    Rule {
        name: "no-unordered-iteration",
        summary: "iterating, draining or collecting from a HashMap/HashSet in non-test \
                  code — keyed lookup is legal, ordered traversal needs BTreeMap or a sort",
        check: Check::File(no_unordered_iteration),
    },
    Rule {
        name: "no-thread-outside-sweep",
        summary: "std::thread / atomics outside bench::sweep — parallelism is confined \
                  to the sweep runner",
        check: Check::File(no_thread_outside_sweep),
    },
    Rule {
        name: "no-deprecated-broadcast",
        summary: "the deprecated broadcast shims (resolve_with, drain_endpoints, …) \
                  outside their definition and the one pinned test",
        check: Check::File(no_deprecated_broadcast),
    },
    Rule {
        name: "no-print-in-lib",
        summary: "println!/eprintln! in library code — stdout belongs to src/bin, \
                  examples and benches",
        check: Check::File(no_print_in_lib),
    },
    Rule {
        name: "no-bare-unwrap-in-core",
        summary: ".unwrap() in netsim/doh/httpsim non-test code without an invariant \
                  comment on the same or previous line",
        check: Check::File(no_bare_unwrap_in_core),
    },
    Rule {
        name: "seed-discipline",
        summary: "a literal or misnamed seed fed to SimRng::new / split / split_rng in \
                  non-test code — seeds and stream labels are named *_SEED / *_STREAM \
                  constants",
        check: Check::File(seed_discipline),
    },
    Rule {
        name: "wake-via-driver",
        summary: "Sim wake scheduling (schedule_app, next_wake*) called or reachable \
                  from doh endpoint code outside the driver — wakes route through the \
                  Driver registry",
        check: Check::Workspace(wake_via_driver),
    },
    Rule {
        name: "no-float-accumulation",
        summary: "f64 accumulation (+=, .sum(), .fold()) in bench::stats / bench::report \
                  outside the blessed fixed-order helpers (mean, bootstrap_ci)",
        check: Check::Workspace(no_float_accumulation),
    },
    Rule {
        name: "stable-sort-for-reports",
        summary: "sort_unstable_by / sort_unstable_by_key in report-feeding crates — \
                  equal keys land in arbitrary order; use the stable sort_by forms",
        check: Check::Workspace(stable_sort_for_reports),
    },
    Rule {
        name: "shim-expiry",
        summary: "a #[deprecated] item without a well-formed `remove-by: PR <n>` marker \
                  in its doc/comment block — shims must name their removal deadline",
        check: Check::Workspace(shim_expiry),
    },
];

/// Is `name` a catalog rule (valid in `simlint::allow`)?
pub fn is_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

// ------------------------------------------------------------------
// The allow sink
// ------------------------------------------------------------------

#[derive(Debug)]
struct Allow {
    line: usize, // 0-based
    rule: String,
    has_reason: bool,
    used: bool,
}

/// Collects one file's findings, applying `simlint::allow` suppression.
/// Owns its file's path so workspace rules can report into any file's
/// sink without carrying the view.
pub struct Sink {
    rel: String,
    allows: Vec<Allow>,
    findings: Vec<Finding>,
}

impl Sink {
    /// Parses the allows out of a file's comment channel.
    pub fn new(view: &FileView) -> Sink {
        let mut allows = Vec::new();
        for (i, line) in view.lines.iter().enumerate() {
            let mut rest = line.comment.as_str();
            while let Some(pos) = rest.find("simlint::allow") {
                rest = &rest[pos + "simlint::allow".len()..];
                let Some(inner) = rest.strip_prefix('(') else { continue };
                let Some(close) = inner.find(')') else { continue };
                let rule = inner[..close].trim().to_string();
                let tail = inner[close + 1..].trim_start();
                let has_reason = tail.strip_prefix(':').is_some_and(|r| !r.trim().is_empty());
                allows.push(Allow { line: i, rule, has_reason, used: false });
                rest = &inner[close + 1..];
            }
        }
        Sink { rel: view.rel.clone(), allows, findings: Vec::new() }
    }

    /// Reports a finding at 0-based line `i`, unless an allow for `rule`
    /// sits on that line or the one above.
    pub fn report(&mut self, i: usize, rule: &'static str, message: String) {
        let allowed = self
            .allows
            .iter_mut()
            .find(|a| a.rule == rule && a.has_reason && (a.line == i || a.line + 1 == i));
        if let Some(a) = allowed {
            a.used = true;
            return;
        }
        self.findings.push(Finding {
            file: self.rel.clone(),
            line: i + 1,
            rule,
            message,
            item: String::new(),
        });
    }

    /// Emits the meta-findings (malformed / unknown / unused allows) and
    /// returns everything sorted by line, then rule.
    pub fn finish(mut self) -> Vec<Finding> {
        for a in &self.allows {
            let (rule, message) = if !is_rule(&a.rule) {
                ("allow-syntax", format!("unknown rule {:?} in simlint::allow", a.rule))
            } else if !a.has_reason {
                (
                    "allow-syntax",
                    format!(
                        "simlint::allow({}) needs a reason: `// simlint::allow({}): <why>`",
                        a.rule, a.rule
                    ),
                )
            } else if !a.used {
                (
                    "unused-allow",
                    format!(
                        "simlint::allow({}) suppresses nothing on this or the next line",
                        a.rule
                    ),
                )
            } else {
                continue;
            };
            self.findings.push(Finding {
                file: self.rel.clone(),
                line: a.line + 1,
                rule,
                message,
                item: String::new(),
            });
        }
        self.findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
        self.findings
    }
}

// ------------------------------------------------------------------
// The rules
// ------------------------------------------------------------------

fn no_wall_clock(view: &FileView, sink: &mut Sink) {
    if view.is_bench() {
        return;
    }
    for (i, line) in view.lines.iter().enumerate() {
        for pat in ["Instant::now", "SystemTime::now"] {
            if has_token(&line.code, pat) {
                sink.report(
                    i,
                    "no-wall-clock",
                    format!("wall clock `{pat}` outside benches/ — use Sim::now()"),
                );
            }
        }
        if line.code.contains(".elapsed(") {
            sink.report(
                i,
                "no-wall-clock",
                "wall clock `.elapsed()` outside benches/ — use Sim::now() arithmetic".to_string(),
            );
        }
    }
}

/// Methods whose call on a hash collection observes its random order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

fn no_unordered_iteration(view: &FileView, sink: &mut Sink) {
    // Pass 1: names declared (or annotated) as HashMap/HashSet anywhere
    // in the file's non-test code — fields, lets, parameters.
    let mut tracked: BTreeSet<String> = BTreeSet::new();
    for (i, line) in view.lines.iter().enumerate() {
        if view.test_line(i) {
            continue;
        }
        for ty in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(pos) = find_token(&line.code, ty, from) {
                if let Some(name) = binding_name(&line.code[..pos]) {
                    tracked.insert(name);
                }
                from = pos + ty.len();
            }
        }
    }
    // Pass 2: order-observing uses of a tracked name.
    for (i, line) in view.lines.iter().enumerate() {
        if view.test_line(i) {
            continue;
        }
        for name in &tracked {
            if let Some(method) = iterating_call(&line.code, name) {
                sink.report(
                    i,
                    "no-unordered-iteration",
                    format!(
                        "`{name}` is a HashMap/HashSet; `.{method}()` observes random \
                         order — use a BTreeMap or sort first"
                    ),
                );
            }
            if for_loop_over(&line.code, name) {
                sink.report(
                    i,
                    "no-unordered-iteration",
                    format!(
                        "`{name}` is a HashMap/HashSet; `for … in` observes random \
                         order — use a BTreeMap or sort first"
                    ),
                );
            }
        }
    }
}

/// Given the code before a `HashMap`/`HashSet` token, the identifier the
/// collection is bound to: `conns: HashMap<…>` → `conns`,
/// `let seen = HashSet::new()` → `seen`. `None` for positions that bind
/// nothing (return types, turbofish, …).
fn binding_name(before: &str) -> Option<String> {
    let mut s = before;
    // Strip reference sigils and a path prefix: `&mut std::collections::HashMap`.
    loop {
        s = s.trim_end();
        if let Some(stripped) = s.strip_suffix("::") {
            s = stripped.trim_end_matches(is_ident_char);
        } else if let Some(stripped) = s.strip_suffix('&') {
            s = stripped;
        } else if s.ends_with("mut") && !ends_in_longer_ident(s, "mut") {
            s = &s[..s.len() - 3];
        } else {
            break;
        }
    }
    let s = if let Some(stripped) = s.strip_suffix(':') {
        // `name: HashMap<…>` — a field, let, or parameter annotation.
        stripped
    } else if let Some(stripped) = s.strip_suffix('=') {
        let stripped = stripped.trim_end();
        // `name = HashMap::new()`, not `==`, `>=`, `<=`.
        if stripped.ends_with(['=', '>', '<', '!']) {
            return None;
        }
        stripped
    } else {
        return None;
    };
    let s = s.trim_end();
    let name: String = s
        .chars()
        .rev()
        .take_while(|&c| is_ident_char(c))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(name)
    }
}

fn ends_in_longer_ident(s: &str, suffix: &str) -> bool {
    s.len() > suffix.len()
        && s[..s.len() - suffix.len()].chars().next_back().is_some_and(is_ident_char)
}

/// The iterating method, if `code` contains `name.<iter-method>(`.
fn iterating_call(code: &str, name: &str) -> Option<&'static str> {
    let mut from = 0;
    while let Some(pos) = find_token(code, name, from) {
        let after = code[pos + name.len()..].trim_start();
        if let Some(rest) = after.strip_prefix('.') {
            let rest = rest.trim_start();
            for &m in ITER_METHODS {
                if let Some(tail) = rest.strip_prefix(m) {
                    if tail.trim_start().starts_with('(') {
                        return Some(m);
                    }
                }
            }
        }
        from = pos + name.len();
    }
    None
}

/// Is there a `for … in … name` loop header on this line?
fn for_loop_over(code: &str, name: &str) -> bool {
    let Some(for_pos) = find_token(code, "for", 0) else { return false };
    let Some(in_pos) = find_token(code, "in", for_pos + 3) else { return false };
    find_token(code, name, in_pos + 2).is_some()
}

fn no_thread_outside_sweep(view: &FileView, sink: &mut Sink) {
    // benches/ are wall-clock harnesses (already outside the
    // determinism domain, cf. no-wall-clock) and may query core counts;
    // everything else threads only through the sweep runner.
    if view.rel == "crates/bench/src/sweep.rs" || view.is_bench() {
        return;
    }
    for (i, line) in view.lines.iter().enumerate() {
        for pat in ["std::thread", "std::sync::atomic"] {
            if has_token(&line.code, pat) {
                sink.report(
                    i,
                    "no-thread-outside-sweep",
                    format!(
                        "`{pat}` outside bench::sweep — the simulator is single-threaded \
                             by design; parallelism lives in the sweep runner"
                    ),
                );
            }
        }
        if let Some(atomic) = atomic_type_token(&line.code) {
            sink.report(
                i,
                "no-thread-outside-sweep",
                format!(
                    "atomic type `{atomic}` outside bench::sweep — shared mutable state \
                         belongs in the sweep runner"
                ),
            );
        }
    }
}

/// The first `Atomic*` type token on the line (`AtomicUsize`, `AtomicBool`, …).
fn atomic_type_token(code: &str) -> Option<String> {
    let mut from = 0;
    while let Some(pos) = find_token_prefix(code, "Atomic", from) {
        let tail: String = code[pos..].chars().take_while(|&c| is_ident_char(c)).collect();
        if tail.len() > "Atomic".len() {
            return Some(tail);
        }
        from = pos + "Atomic".len();
    }
    None
}

/// Like [`find_token`] but only the *left* boundary is checked, so the
/// pattern may be an identifier prefix.
fn find_token_prefix(code: &str, pat: &str, from: usize) -> Option<usize> {
    let mut start = from;
    while let Some(off) = code[start..].find(pat) {
        let pos = start + off;
        if code[..pos].chars().next_back().map_or(true, |c| !is_ident_char(c)) {
            return Some(pos);
        }
        start = pos + 1;
    }
    None
}

/// The deprecated broadcast entry points quarantined by
/// `no-deprecated-broadcast`. Their definitions live in
/// `crates/doh/src/lib.rs` (exempt); every use elsewhere needs an allow.
const BROADCAST_SHIMS: &[&str] =
    &["resolve_with", "resolve_with_extras", "drain_endpoints", "advance_endpoints_until"];

fn no_deprecated_broadcast(view: &FileView, sink: &mut Sink) {
    if view.rel == "crates/doh/src/lib.rs" {
        return;
    }
    for (i, line) in view.lines.iter().enumerate() {
        for &shim in BROADCAST_SHIMS {
            if has_token(&line.code, shim) {
                sink.report(
                    i,
                    "no-deprecated-broadcast",
                    format!(
                        "deprecated broadcast shim `{shim}` — register the endpoints \
                             in a `Driver` and use addressed routing"
                    ),
                );
            }
        }
    }
}

fn no_print_in_lib(view: &FileView, sink: &mut Sink) {
    if view.is_bin_or_example() || view.is_bench() || view.is_test_path() {
        return;
    }
    for (i, line) in view.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for pat in ["println!", "eprintln!", "print!", "eprint!"] {
            if has_token(&line.code, pat) {
                sink.report(
                    i,
                    "no-print-in-lib",
                    format!(
                        "`{pat}` in library code — stdout/stderr belong to src/bin, \
                             examples and benches"
                    ),
                );
            }
        }
    }
}

fn no_bare_unwrap_in_core(view: &FileView, sink: &mut Sink) {
    if !view.is_core_crate() {
        return;
    }
    for (i, line) in view.lines.iter().enumerate() {
        if view.test_line(i) || !line.code.contains(".unwrap()") {
            continue;
        }
        let has_comment = |l: &Line| !l.comment.trim().is_empty() || !l.doc.trim().is_empty();
        let documented = has_comment(line) || (i > 0 && has_comment(&view.lines[i - 1]));
        if !documented {
            sink.report(
                i,
                "no-bare-unwrap-in-core",
                "bare `.unwrap()` in a core crate — state the invariant in a comment \
                 on this or the previous line, or use `.expect(\"…\")`"
                    .to_string(),
            );
        }
    }
}

/// The leading token of the first argument after an open paren: a
/// digit-leading literal (`42`, `0xBEEF`) or the last segment of an
/// identifier path (`SiteModel::RANK_STREAM` → `RANK_STREAM`). `None`
/// for anything else — closures, string/char separators (already
/// scrubbed to bare quotes), references.
fn leading_arg_token(after_paren: &str) -> Option<String> {
    let rest = after_paren.trim_start();
    let first = rest.chars().next()?;
    if !is_ident_char(first) {
        return None;
    }
    let path: String = rest.chars().take_while(|&c| is_ident_char(c) || c == ':').collect();
    let last = path.rsplit("::").next().unwrap_or(&path).trim_matches(':');
    if last.is_empty() {
        None
    } else {
        Some(last.to_string())
    }
}

/// An ALL_CAPS constant name (at least one uppercase letter; only
/// uppercase, digits and underscores).
fn is_screaming(tok: &str) -> bool {
    tok.chars().any(|c| c.is_ascii_uppercase())
        && tok.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// Seeds and stream labels decide every simulated byte, so they must be
/// auditable at the call site: a literal `42` fed to `SimRng::new`, or a
/// constant whose name hides that it is a seed, is how two subsystems
/// end up sharing a stream by accident. Outside test code the first
/// argument of `SimRng::new` / `.split` / `.split_rng` must be a named
/// `*_SEED` / `*_STREAM` constant (or a runtime variable such as a sweep
/// seed, which lowercase names are).
fn seed_discipline(view: &FileView, sink: &mut Sink) {
    for (i, line) in view.lines.iter().enumerate() {
        if view.test_line(i) {
            continue;
        }
        for (api, method) in [("SimRng::new", false), ("split_rng", true), ("split", true)] {
            let mut from = 0;
            while let Some(pos) = find_token(&line.code, api, from) {
                from = pos + api.len();
                if method && !line.code[..pos].trim_end().ends_with('.') {
                    continue;
                }
                let Some(args) = line.code[from..].trim_start().strip_prefix('(') else {
                    continue;
                };
                let Some(tok) = leading_arg_token(args) else { continue };
                if tok.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                    sink.report(
                        i,
                        "seed-discipline",
                        format!(
                            "literal seed `{tok}` passed to `{api}` — name it as a \
                             `*_SEED`/`*_STREAM` constant"
                        ),
                    );
                } else if is_screaming(&tok)
                    && !(tok.ends_with("_SEED")
                        || tok.ends_with("_STREAM")
                        || tok == "SEED"
                        || tok == "STREAM")
                {
                    sink.report(
                        i,
                        "seed-discipline",
                        format!(
                            "seed constant `{tok}` passed to `{api}` — rename it to end \
                             in `_SEED` or `_STREAM` so the stream is auditable"
                        ),
                    );
                }
            }
        }
    }
}

// ------------------------------------------------------------------
// The workspace rules (v2): structural checks over the item model
// ------------------------------------------------------------------

/// The `Sim` wake-scheduling entry points `wake-via-driver` guards.
const WAKE_APIS: &[&str] = &["schedule_app", "schedule_app_in", "next_wake", "next_wake_owned"];

/// The one file whose wake calls are blessed: the `Driver` registry and
/// its pump helpers (`drain_routed`, `advance_routed`, `resolve_routed`).
const DRIVER_FILE: &str = "crates/doh/src/driver.rs";

/// Does this call path name a wake API (`sim.next_wake_owned()`,
/// `Sim::schedule_app(...)`)?
fn is_wake_call(path: &str) -> bool {
    let last = path.rsplit("::").next().unwrap_or(path);
    WAKE_APIS.contains(&last)
}

/// Wakes must route through the `Driver` registry: any `Sim` wake call
/// made — or transitively reachable over resolvable calls — from
/// `crates/doh/src/` code outside `driver.rs` is a finding. The
/// reachability join is what the PR 8 lexical pass could not express:
/// it needs to know which `fn` a line lives in and what that `fn` calls.
fn wake_via_driver(ws: &Workspace, sinks: &mut [Sink]) {
    let exempt = |fi: usize| ws.views[fi].rel == DRIVER_FILE || ws.views[fi].is_test_path();
    // Pass 1: the tainted set — every non-exempt Fn that calls a wake
    // API directly, grown to a fixpoint through resolvable calls.
    // Exempt items never taint, so calling the driver's own pump
    // helpers stays legal.
    let mut tainted: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if exempt(fi) {
            continue;
        }
        for (ii, item) in file.items.iter().enumerate() {
            if item.kind == ItemKind::Fn
                && item
                    .calls
                    .iter()
                    .any(|c| !ws.views[fi].lines[c.line].in_test && is_wake_call(&c.path))
            {
                tainted.insert((fi, ii));
            }
        }
    }
    loop {
        let mut grew = false;
        for (fi, file) in ws.files.iter().enumerate() {
            if exempt(fi) {
                continue;
            }
            for (ii, item) in file.items.iter().enumerate() {
                if item.kind != ItemKind::Fn || tainted.contains(&(fi, ii)) {
                    continue;
                }
                let reaches = item.calls.iter().any(|c| {
                    !ws.views[fi].lines[c.line].in_test
                        && ws.resolve(fi, Some(item), c).is_some_and(|hit| tainted.contains(&hit))
                });
                if reaches {
                    tainted.insert((fi, ii));
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    // Pass 2: findings at the call sites in doh endpoint code.
    for (fi, file) in ws.files.iter().enumerate() {
        let view = &ws.views[fi];
        if !view.rel.starts_with("crates/doh/src/") || exempt(fi) {
            continue;
        }
        for item in file.items.iter().filter(|i| i.kind == ItemKind::Fn) {
            for call in &item.calls {
                if view.lines[call.line].in_test {
                    continue;
                }
                if is_wake_call(&call.path) {
                    sinks[fi].report(
                        call.line,
                        "wake-via-driver",
                        format!(
                            "direct Sim wake call `{}` outside doh::driver — endpoints \
                             rearm through the Driver registry",
                            call.path
                        ),
                    );
                } else if let Some((tfi, tii)) = ws.resolve(fi, Some(item), call) {
                    if tainted.contains(&(tfi, tii)) {
                        sinks[fi].report(
                            call.line,
                            "wake-via-driver",
                            format!(
                                "`{}` reaches Sim wake scheduling via `{}` — route the \
                                 wake through doh::driver",
                                call.path, ws.files[tfi].items[tii].path
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// The files `no-float-accumulation` covers and the helpers whose
/// iteration order is pinned to slice order (reviewed by hand, and the
/// fleet-scale byte tests pin their output).
const FLOAT_SCOPE: &[&str] = &["crates/bench/src/stats.rs", "crates/bench/src/report.rs"];
const FLOAT_BLESSED: &[&str] = &["mean", "bootstrap_ci"];
const FLOAT_PATTERNS: &[&str] = &["+=", ".sum::<", ".sum()", ".fold(", ".product("];

/// Float addition is not associative, so *where* an accumulation
/// iterates decides report bytes. All summation in `bench::stats` /
/// `bench::report` must live in the blessed fixed-order helpers.
fn no_float_accumulation(ws: &Workspace, sinks: &mut [Sink]) {
    for (fi, view) in ws.views.iter().enumerate() {
        if !FLOAT_SCOPE.contains(&view.rel.as_str()) {
            continue;
        }
        for (i, line) in view.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let Some(pat) = FLOAT_PATTERNS.iter().find(|p| line.code.contains(*p)) else {
                continue;
            };
            let blessed = ws.item_at(fi, i).is_some_and(|item| {
                item.kind == ItemKind::Fn && FLOAT_BLESSED.contains(&item.name.as_str())
            });
            if !blessed {
                sinks[fi].report(
                    i,
                    "no-float-accumulation",
                    format!(
                        "`{pat}` accumulates outside the blessed fixed-order helpers \
                         ({}) — summation order is report-visible; extend a blessed \
                         helper instead",
                        FLOAT_BLESSED.join(", ")
                    ),
                );
            }
        }
    }
}

/// The crates whose sorts can reach `Report` rows.
const REPORT_FEEDING: &[&str] = &["crates/workload/src/", "crates/bench/src/", "crates/doh/src/"];

/// `sort_unstable_by{,_key}` leaves equal keys in arbitrary order; in a
/// report-feeding crate that is a byte-determinism hazard. Plain
/// `.sort_unstable()` on a total order stays legal — with a full key
/// there is nothing for instability to reorder.
fn stable_sort_for_reports(ws: &Workspace, sinks: &mut [Sink]) {
    for (fi, view) in ws.views.iter().enumerate() {
        if !REPORT_FEEDING.iter().any(|p| view.rel.starts_with(p)) || view.is_bench() {
            continue;
        }
        for (i, line) in view.lines.iter().enumerate() {
            if view.test_line(i) {
                continue;
            }
            for (pat, stable) in
                [("sort_unstable_by_key", "sort_by_key"), ("sort_unstable_by", "sort_by")]
            {
                if line.code.contains(&format!(".{pat}(")) {
                    let item = ws.enclosing_path(fi, i);
                    sinks[fi].report(
                        i,
                        "stable-sort-for-reports",
                        format!(
                            "`.{pat}()` in `{item}` — equal keys land in arbitrary \
                             order and can reach report rows; use the stable \
                             `.{stable}()` or key on the whole element"
                        ),
                    );
                    break;
                }
            }
        }
    }
}

/// Is `text` (starting at `remove-by`) a well-formed
/// `remove-by: PR <digits>` marker?
fn well_formed_remove_by(text: &str) -> bool {
    text.strip_prefix("remove-by")
        .and_then(|r| r.trim_start().strip_prefix(':'))
        .and_then(|r| r.trim_start().strip_prefix("PR"))
        .map(|r| r.trim_start())
        .is_some_and(|r| r.chars().next().is_some_and(|c| c.is_ascii_digit()))
}

/// Every `#[deprecated]` item must carry a `remove-by: PR <n>` marker in
/// its doc/comment block, so shims name the PR that deletes them instead
/// of rotting. Malformed markers are findings too.
fn shim_expiry(ws: &Workspace, sinks: &mut [Sink]) {
    for (fi, file) in ws.files.iter().enumerate() {
        let view = &ws.views[fi];
        if view.is_test_path() {
            continue;
        }
        for item in &file.items {
            if !item.deprecated || view.lines[item.start].in_test {
                continue;
            }
            let mut marker: Option<(usize, String)> = None;
            for i in item.doc_start..=item.start {
                let l = &view.lines[i];
                for chan in [l.comment.as_str(), l.doc.as_str()] {
                    if let Some(pos) = chan.find("remove-by") {
                        marker = Some((i, chan[pos..].to_string()));
                    }
                }
            }
            match marker {
                None => sinks[fi].report(
                    item.start,
                    "shim-expiry",
                    format!(
                        "deprecated item `{}` has no `remove-by: PR <n>` marker — \
                         name the PR that deletes this shim",
                        item.path
                    ),
                ),
                Some((i, text)) if !well_formed_remove_by(&text) => sinks[fi].report(
                    i,
                    "shim-expiry",
                    format!(
                        "malformed expiry marker for `{}` — write `remove-by: PR <n>`",
                        item.path
                    ),
                ),
                Some(_) => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        crate::lint_files(vec![(rel.to_string(), src.to_string())])
    }

    #[test]
    fn wall_clock_is_legal_in_benches() {
        let src = "use std::time::Instant;\nfn main() { let t = Instant::now(); t.elapsed(); }\n";
        assert!(run("crates/bench/benches/transports.rs", src).is_empty());
        assert_eq!(run("crates/netsim/src/sim.rs", src).len(), 2);
    }

    #[test]
    fn binding_names_are_extracted_from_decl_shapes() {
        assert_eq!(binding_name("    conns: ").as_deref(), Some("conns"));
        assert_eq!(binding_name("let seen = ").as_deref(), Some("seen"));
        assert_eq!(binding_name("let seen: std::collections::").as_deref(), Some("seen"));
        assert_eq!(binding_name("fn f(m: &mut ").as_deref(), Some("m"));
        assert_eq!(binding_name("fn f() -> ").as_deref(), None);
        assert_eq!(binding_name("if x == ").as_deref(), None);
    }

    #[test]
    fn keyed_lookup_is_legal_iteration_is_not() {
        let src = "use std::collections::HashMap;\n\
                   struct S { conns: HashMap<u32, u32> }\n\
                   impl S {\n\
                   fn get(&self) -> Option<&u32> { self.conns.get(&1) }\n\
                   fn bad(&self) { for c in self.conns.values() { use_it(c); } }\n\
                   }\n";
        let found = run("crates/doh/src/x.rs", src);
        // `.values()` and the `for … in` heuristic both fire on line 5.
        assert!(found.iter().all(|f| f.line == 5 && f.rule == "no-unordered-iteration"));
        assert!(!found.is_empty());
    }

    #[test]
    fn hash_iteration_in_unit_tests_is_exempt() {
        let src = "struct S;\n#[cfg(test)]\nmod tests {\n\
                   fn t() { let seen: std::collections::HashSet<u32> = it.collect(); \
                   for x in seen.iter() { check(x); } }\n}\n";
        assert!(run("crates/workload/src/lib.rs", src).is_empty());
    }

    #[test]
    fn threads_and_atomics_are_confined_to_the_sweep_runner() {
        let src = "use std::thread;\nuse std::sync::atomic::{AtomicUsize, Ordering};\n";
        assert!(run("crates/bench/src/sweep.rs", src).is_empty());
        let found = run("crates/bench/src/stats.rs", src);
        assert_eq!(found.iter().filter(|f| f.rule == "no-thread-outside-sweep").count(), 3);
    }

    #[test]
    fn broadcast_shims_are_flagged_outside_their_definition() {
        let src = "fn f(sim: &mut Sim) { resolve_with(sim, &mut c, &mut s, &n, 1); \
                   drain_endpoints_impl(sim, &mut []); }\n";
        assert!(run("crates/doh/src/lib.rs", src).is_empty(), "definitions file is exempt");
        let found = run("crates/doh/src/do53.rs", src);
        assert_eq!(found.len(), 1, "the _impl helper is a different token: {found:?}");
        assert_eq!(found[0].rule, "no-deprecated-broadcast");
    }

    #[test]
    fn prints_are_legal_in_bins_examples_and_tests() {
        let src = "fn f() { println!(\"x\"); }\n";
        assert!(run("crates/bench/src/bin/fig3.rs", src).is_empty());
        assert!(run("examples/quickstart.rs", src).is_empty());
        assert!(run("tests/transport_matrix.rs", src).is_empty());
        assert_eq!(run("crates/bench/src/report.rs", src).len(), 1);
    }

    #[test]
    fn unwrap_needs_an_invariant_comment_only_in_core_crates() {
        let bare = "fn f() { x().unwrap(); }\n";
        let documented =
            "fn f() {\n    // invariant: x is Some after setup\n    x().unwrap();\n}\n";
        assert_eq!(run("crates/netsim/src/tcp.rs", bare).len(), 1);
        assert!(run("crates/netsim/src/tcp.rs", documented).is_empty());
        assert!(run("crates/bench/src/stats.rs", bare).is_empty(), "bench is not a core crate");
    }

    #[test]
    fn literal_seeds_are_flagged_outside_tests() {
        let src = "pub fn f(sim: &mut Sim, rng: &mut SimRng) {\n\
                   \x20   let a = SimRng::new(42);\n\
                   \x20   let b = rng.split(0xBEEF);\n\
                   \x20   let c = sim.split_rng(7);\n}\n";
        let found = run("crates/workload/src/lib.rs", src);
        assert_eq!(found.len(), 3, "{found:?}");
        assert!(found.iter().all(|f| f.rule == "seed-discipline"));
        assert!(found[1].message.contains("0xBEEF"));
    }

    #[test]
    fn named_seed_constants_and_runtime_seeds_are_legal() {
        let src = "pub fn f(sim: &mut Sim, rng: &mut SimRng, seed: u64) {\n\
                   \x20   let a = SimRng::new(BOOT_SEED);\n\
                   \x20   let b = rng.split(Self::RANK_STREAM);\n\
                   \x20   let c = sim.split_rng(seed);\n}\n";
        assert!(run("crates/workload/src/lib.rs", src).is_empty());
    }

    #[test]
    fn misnamed_seed_constants_are_flagged() {
        let src = "pub fn f(rng: &mut SimRng) -> SimRng {\n    rng.split(LANE_COUNT)\n}\n";
        let found = run("crates/workload/src/lib.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!((found[0].rule, found[0].line), ("seed-discipline", 2));
        assert!(found[0].message.contains("LANE_COUNT"));
    }

    #[test]
    fn string_splits_and_test_seeds_do_not_trip_seed_discipline() {
        let strings = "pub fn f(s: &str) -> Option<&str> {\n    s.split(\"::\").next()\n}\n";
        assert!(run("crates/workload/src/lib.rs", strings).is_empty());
        let test_code = "fn mk() -> SimRng { SimRng::new(7) }\n";
        assert!(run("crates/workload/tests/seeds.rs", test_code).is_empty());
        let unit = "#[cfg(test)]\nmod tests {\n    fn mk() -> SimRng { SimRng::new(7) }\n}\n";
        assert!(run("crates/workload/src/lib.rs", unit).is_empty());
    }

    #[test]
    fn allows_suppress_mark_used_and_surface_when_unused_or_malformed() {
        let src = "// simlint::allow(no-print-in-lib): CLI front-end owns stdout\n\
                   fn f() { println!(\"ok\"); }\n\
                   // simlint::allow(no-print-in-lib): nothing here\n\
                   fn g() {}\n\
                   // simlint::allow(no-print-in-lib)\n\
                   fn h() { println!(\"missing reason does not suppress\"); }\n\
                   // simlint::allow(not-a-rule): whatever\n";
        let found = run("crates/doh/src/zone.rs", src);
        let rules: Vec<&str> = found.iter().map(|f| f.rule).collect();
        assert_eq!(
            rules,
            vec!["unused-allow", "allow-syntax", "no-print-in-lib", "allow-syntax"],
            "{found:?}"
        );
    }

    fn multi_run(files: &[(&str, &str)]) -> Vec<Finding> {
        crate::lint_files(files.iter().map(|(r, s)| (r.to_string(), s.to_string())).collect())
    }

    #[test]
    fn direct_wakes_outside_the_driver_are_flagged() {
        let src = "pub fn on_wake(sim: &mut Sim) {\n    sim.schedule_app(5, 1);\n}\n";
        let found = run("crates/doh/src/doh2.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!((found[0].rule, found[0].line), ("wake-via-driver", 2));
        assert!(run("crates/doh/src/driver.rs", src).is_empty(), "the driver file is blessed");
        assert!(run("crates/netsim/src/sim.rs", src).is_empty(), "only doh code is scoped");
    }

    #[test]
    fn transitive_wakes_are_flagged_at_the_reaching_call() {
        let endpoint = "use crate::util::rearm;\n\
                        pub fn on_wake(sim: &mut Sim) {\n    rearm(sim);\n}\n";
        let util = "pub fn rearm(sim: &mut Sim) {\n    sim.schedule_app_in(3, 1);\n}\n";
        let found =
            multi_run(&[("crates/doh/src/doh2.rs", endpoint), ("crates/doh/src/util.rs", util)]);
        let wake: Vec<&Finding> = found.iter().filter(|f| f.rule == "wake-via-driver").collect();
        assert_eq!(wake.len(), 2, "{found:?}");
        assert!(wake.iter().any(|f| f.file.ends_with("doh2.rs")
            && f.line == 3
            && f.message.contains("doh::util::rearm")));
        assert!(wake.iter().any(|f| f.file.ends_with("util.rs") && f.line == 2));
    }

    #[test]
    fn calls_into_driver_pump_helpers_stay_legal() {
        let endpoint = "use crate::driver::drain_routed;\n\
                        pub fn pump(sim: &mut Sim) {\n    drain_routed(sim);\n}\n";
        let driver = "pub fn drain_routed(sim: &mut Sim) {\n    sim.next_wake_owned();\n}\n";
        let found =
            multi_run(&[("crates/doh/src/lib.rs", endpoint), ("crates/doh/src/driver.rs", driver)]);
        assert!(
            found.iter().all(|f| f.rule != "wake-via-driver"),
            "driver items must not taint their callers: {found:?}"
        );
    }

    #[test]
    fn float_accumulation_is_confined_to_blessed_helpers() {
        let src = "pub fn mean(xs: &[f64]) -> f64 {\n    xs.iter().sum::<f64>() / 2.0\n}\n\
                   pub fn rogue(xs: &[f64]) -> f64 {\n    let mut t = 0.0;\n    \
                   for x in xs {\n        t += x;\n    }\n    t\n}\n";
        let found = run("crates/bench/src/stats.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!((found[0].rule, found[0].line), ("no-float-accumulation", 7));
        assert!(run("crates/bench/src/sweep.rs", src).is_empty(), "only stats/report scoped");
    }

    #[test]
    fn keyed_unstable_sorts_are_flagged_in_report_feeding_crates() {
        let src = "pub fn rows(v: &mut Vec<(u64, u32)>) {\n    \
                   v.sort_unstable_by_key(|r| r.0);\n    v.sort_unstable();\n}\n";
        let found = run("crates/workload/src/lib.rs", src);
        assert_eq!(found.len(), 1, "plain sort_unstable is legal: {found:?}");
        assert_eq!(found[0].rule, "stable-sort-for-reports");
        assert!(found[0].message.contains("workload::rows"));
        assert!(run("crates/netsim/src/sim.rs", src).is_empty(), "netsim is not report-feeding");
    }

    #[test]
    fn deprecated_items_need_a_well_formed_expiry_marker() {
        let missing = "#[deprecated(note = \"old\")]\npub fn shim() {}\n";
        let found = run("crates/doh/src/lib.rs", missing);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!((found[0].rule, found[0].line), ("shim-expiry", 2));

        let malformed = "/// Old. remove-by: next release\n\
                         #[deprecated(note = \"old\")]\npub fn shim() {}\n";
        let found = run("crates/doh/src/lib.rs", malformed);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("malformed"));

        let ok = "/// Old. remove-by: PR 11.\n\
                  #[deprecated(note = \"old\")]\npub fn shim() {}\n";
        assert!(run("crates/doh/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn findings_carry_their_enclosing_item_path() {
        let src = "impl S {\n    fn f(&self) {\n        let t = Instant::now();\n    }\n}\n";
        let found = run("crates/doh/src/dot.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].item, "doh::dot::S::f");
    }
}
