//! The rule catalog and the finding sink with `simlint::allow` support.
//!
//! Every rule is a plain function over a [`FileView`] registered in the
//! [`RULES`] table — adding a rule is writing one function, one table
//! row, and one golden fixture. Rules report through [`Sink::report`],
//! which consults the file's `// simlint::allow(<rule>): <reason>`
//! annotations: an allow on the finding's line or the line directly
//! above suppresses it (and is marked used; unused or malformed allows
//! become findings themselves).

use crate::lexer::{find_token, has_token, is_ident_char, Line};
use std::collections::BTreeSet;

/// One lint finding, printed as `file:line rule message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier from the catalog.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{} {} {}", self.file, self.line, self.rule, self.message)
    }
}

/// A scrubbed file plus the path-derived facts rules scope on.
pub struct FileView {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Scrubbed lines, 0-indexed (findings report 1-based).
    pub lines: Vec<Line>,
}

impl FileView {
    fn has_component(&self, name: &str) -> bool {
        self.rel.split('/').any(|c| c == name)
    }

    /// Wall-clock timing harnesses live under a `benches/` directory.
    pub fn is_bench(&self) -> bool {
        self.has_component("benches")
    }

    /// Binaries and examples own stdout.
    pub fn is_bin_or_example(&self) -> bool {
        self.has_component("bin")
            || self.has_component("examples")
            || self.rel.ends_with("/main.rs")
    }

    /// Integration tests (a `tests/` path component).
    pub fn is_test_path(&self) -> bool {
        self.has_component("tests")
    }

    /// The determinism-critical crates `no-bare-unwrap-in-core` covers.
    pub fn is_core_crate(&self) -> bool {
        ["crates/netsim/src/", "crates/doh/src/", "crates/httpsim/src/"]
            .iter()
            .any(|p| self.rel.starts_with(p))
    }

    /// Is line `i` exempt as test code (unit-test mod or tests/ file)?
    fn test_line(&self, i: usize) -> bool {
        self.is_test_path() || self.lines[i].in_test
    }
}

/// One row of the catalog.
pub struct Rule {
    /// The identifier used in findings and `simlint::allow(...)`.
    pub name: &'static str,
    /// One-line description for `--list-rules` and the README table.
    pub summary: &'static str,
    /// The check itself.
    pub check: fn(&FileView, &mut Sink),
}

/// The rule catalog. Order is the report order within a line.
pub const RULES: &[Rule] = &[
    Rule {
        name: "no-wall-clock",
        summary: "Instant::now / SystemTime::now / .elapsed() outside benches/ — \
                  simulated code reads time from Sim::now()",
        check: no_wall_clock,
    },
    Rule {
        name: "no-unordered-iteration",
        summary: "iterating, draining or collecting from a HashMap/HashSet in non-test \
                  code — keyed lookup is legal, ordered traversal needs BTreeMap or a sort",
        check: no_unordered_iteration,
    },
    Rule {
        name: "no-thread-outside-sweep",
        summary: "std::thread / atomics outside bench::sweep — parallelism is confined \
                  to the sweep runner",
        check: no_thread_outside_sweep,
    },
    Rule {
        name: "no-deprecated-broadcast",
        summary: "the deprecated broadcast shims (resolve_with, drain_endpoints, …) \
                  outside their definition and the one pinned test",
        check: no_deprecated_broadcast,
    },
    Rule {
        name: "no-print-in-lib",
        summary: "println!/eprintln! in library code — stdout belongs to src/bin, \
                  examples and benches",
        check: no_print_in_lib,
    },
    Rule {
        name: "no-bare-unwrap-in-core",
        summary: ".unwrap() in netsim/doh/httpsim non-test code without an invariant \
                  comment on the same or previous line",
        check: no_bare_unwrap_in_core,
    },
];

/// Is `name` a catalog rule (valid in `simlint::allow`)?
pub fn is_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

// ------------------------------------------------------------------
// The allow sink
// ------------------------------------------------------------------

#[derive(Debug)]
struct Allow {
    line: usize, // 0-based
    rule: String,
    has_reason: bool,
    used: bool,
}

/// Collects findings, applying `simlint::allow` suppression.
pub struct Sink {
    allows: Vec<Allow>,
    findings: Vec<Finding>,
}

impl Sink {
    /// Parses the allows out of a file's comment channel.
    pub fn new(view: &FileView) -> Sink {
        let mut allows = Vec::new();
        for (i, line) in view.lines.iter().enumerate() {
            let mut rest = line.comment.as_str();
            while let Some(pos) = rest.find("simlint::allow") {
                rest = &rest[pos + "simlint::allow".len()..];
                let Some(inner) = rest.strip_prefix('(') else { continue };
                let Some(close) = inner.find(')') else { continue };
                let rule = inner[..close].trim().to_string();
                let tail = inner[close + 1..].trim_start();
                let has_reason = tail.strip_prefix(':').is_some_and(|r| !r.trim().is_empty());
                allows.push(Allow { line: i, rule, has_reason, used: false });
                rest = &inner[close + 1..];
            }
        }
        Sink { allows, findings: Vec::new() }
    }

    /// Reports a finding at 0-based line `i`, unless an allow for `rule`
    /// sits on that line or the one above.
    pub fn report(&mut self, view: &FileView, i: usize, rule: &'static str, message: String) {
        let allowed = self
            .allows
            .iter_mut()
            .find(|a| a.rule == rule && a.has_reason && (a.line == i || a.line + 1 == i));
        if let Some(a) = allowed {
            a.used = true;
            return;
        }
        self.findings.push(Finding { file: view.rel.clone(), line: i + 1, rule, message });
    }

    /// Emits the meta-findings (malformed / unknown / unused allows) and
    /// returns everything sorted by line, then rule.
    pub fn finish(mut self, view: &FileView) -> Vec<Finding> {
        for a in &self.allows {
            let (rule, message) = if !is_rule(&a.rule) {
                ("allow-syntax", format!("unknown rule {:?} in simlint::allow", a.rule))
            } else if !a.has_reason {
                (
                    "allow-syntax",
                    format!(
                        "simlint::allow({}) needs a reason: `// simlint::allow({}): <why>`",
                        a.rule, a.rule
                    ),
                )
            } else if !a.used {
                (
                    "unused-allow",
                    format!(
                        "simlint::allow({}) suppresses nothing on this or the next line",
                        a.rule
                    ),
                )
            } else {
                continue;
            };
            self.findings.push(Finding { file: view.rel.clone(), line: a.line + 1, rule, message });
        }
        self.findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
        self.findings
    }
}

// ------------------------------------------------------------------
// The rules
// ------------------------------------------------------------------

fn no_wall_clock(view: &FileView, sink: &mut Sink) {
    if view.is_bench() {
        return;
    }
    for (i, line) in view.lines.iter().enumerate() {
        for pat in ["Instant::now", "SystemTime::now"] {
            if has_token(&line.code, pat) {
                sink.report(
                    view,
                    i,
                    "no-wall-clock",
                    format!("wall clock `{pat}` outside benches/ — use Sim::now()"),
                );
            }
        }
        if line.code.contains(".elapsed(") {
            sink.report(
                view,
                i,
                "no-wall-clock",
                "wall clock `.elapsed()` outside benches/ — use Sim::now() arithmetic".to_string(),
            );
        }
    }
}

/// Methods whose call on a hash collection observes its random order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

fn no_unordered_iteration(view: &FileView, sink: &mut Sink) {
    // Pass 1: names declared (or annotated) as HashMap/HashSet anywhere
    // in the file's non-test code — fields, lets, parameters.
    let mut tracked: BTreeSet<String> = BTreeSet::new();
    for (i, line) in view.lines.iter().enumerate() {
        if view.test_line(i) {
            continue;
        }
        for ty in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(pos) = find_token(&line.code, ty, from) {
                if let Some(name) = binding_name(&line.code[..pos]) {
                    tracked.insert(name);
                }
                from = pos + ty.len();
            }
        }
    }
    // Pass 2: order-observing uses of a tracked name.
    for (i, line) in view.lines.iter().enumerate() {
        if view.test_line(i) {
            continue;
        }
        for name in &tracked {
            if let Some(method) = iterating_call(&line.code, name) {
                sink.report(
                    view,
                    i,
                    "no-unordered-iteration",
                    format!(
                        "`{name}` is a HashMap/HashSet; `.{method}()` observes random \
                         order — use a BTreeMap or sort first"
                    ),
                );
            }
            if for_loop_over(&line.code, name) {
                sink.report(
                    view,
                    i,
                    "no-unordered-iteration",
                    format!(
                        "`{name}` is a HashMap/HashSet; `for … in` observes random \
                         order — use a BTreeMap or sort first"
                    ),
                );
            }
        }
    }
}

/// Given the code before a `HashMap`/`HashSet` token, the identifier the
/// collection is bound to: `conns: HashMap<…>` → `conns`,
/// `let seen = HashSet::new()` → `seen`. `None` for positions that bind
/// nothing (return types, turbofish, …).
fn binding_name(before: &str) -> Option<String> {
    let mut s = before;
    // Strip reference sigils and a path prefix: `&mut std::collections::HashMap`.
    loop {
        s = s.trim_end();
        if let Some(stripped) = s.strip_suffix("::") {
            s = stripped.trim_end_matches(is_ident_char);
        } else if let Some(stripped) = s.strip_suffix('&') {
            s = stripped;
        } else if s.ends_with("mut") && !ends_in_longer_ident(s, "mut") {
            s = &s[..s.len() - 3];
        } else {
            break;
        }
    }
    let s = if let Some(stripped) = s.strip_suffix(':') {
        // `name: HashMap<…>` — a field, let, or parameter annotation.
        stripped
    } else if let Some(stripped) = s.strip_suffix('=') {
        let stripped = stripped.trim_end();
        // `name = HashMap::new()`, not `==`, `>=`, `<=`.
        if stripped.ends_with(['=', '>', '<', '!']) {
            return None;
        }
        stripped
    } else {
        return None;
    };
    let s = s.trim_end();
    let name: String = s
        .chars()
        .rev()
        .take_while(|&c| is_ident_char(c))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(name)
    }
}

fn ends_in_longer_ident(s: &str, suffix: &str) -> bool {
    s.len() > suffix.len()
        && s[..s.len() - suffix.len()].chars().next_back().is_some_and(is_ident_char)
}

/// The iterating method, if `code` contains `name.<iter-method>(`.
fn iterating_call(code: &str, name: &str) -> Option<&'static str> {
    let mut from = 0;
    while let Some(pos) = find_token(code, name, from) {
        let after = code[pos + name.len()..].trim_start();
        if let Some(rest) = after.strip_prefix('.') {
            let rest = rest.trim_start();
            for &m in ITER_METHODS {
                if let Some(tail) = rest.strip_prefix(m) {
                    if tail.trim_start().starts_with('(') {
                        return Some(m);
                    }
                }
            }
        }
        from = pos + name.len();
    }
    None
}

/// Is there a `for … in … name` loop header on this line?
fn for_loop_over(code: &str, name: &str) -> bool {
    let Some(for_pos) = find_token(code, "for", 0) else { return false };
    let Some(in_pos) = find_token(code, "in", for_pos + 3) else { return false };
    find_token(code, name, in_pos + 2).is_some()
}

fn no_thread_outside_sweep(view: &FileView, sink: &mut Sink) {
    // benches/ are wall-clock harnesses (already outside the
    // determinism domain, cf. no-wall-clock) and may query core counts;
    // everything else threads only through the sweep runner.
    if view.rel == "crates/bench/src/sweep.rs" || view.is_bench() {
        return;
    }
    for (i, line) in view.lines.iter().enumerate() {
        for pat in ["std::thread", "std::sync::atomic"] {
            if has_token(&line.code, pat) {
                sink.report(
                    view,
                    i,
                    "no-thread-outside-sweep",
                    format!(
                        "`{pat}` outside bench::sweep — the simulator is single-threaded \
                             by design; parallelism lives in the sweep runner"
                    ),
                );
            }
        }
        if let Some(atomic) = atomic_type_token(&line.code) {
            sink.report(
                view,
                i,
                "no-thread-outside-sweep",
                format!(
                    "atomic type `{atomic}` outside bench::sweep — shared mutable state \
                         belongs in the sweep runner"
                ),
            );
        }
    }
}

/// The first `Atomic*` type token on the line (`AtomicUsize`, `AtomicBool`, …).
fn atomic_type_token(code: &str) -> Option<String> {
    let mut from = 0;
    while let Some(pos) = find_token_prefix(code, "Atomic", from) {
        let tail: String = code[pos..].chars().take_while(|&c| is_ident_char(c)).collect();
        if tail.len() > "Atomic".len() {
            return Some(tail);
        }
        from = pos + "Atomic".len();
    }
    None
}

/// Like [`find_token`] but only the *left* boundary is checked, so the
/// pattern may be an identifier prefix.
fn find_token_prefix(code: &str, pat: &str, from: usize) -> Option<usize> {
    let mut start = from;
    while let Some(off) = code[start..].find(pat) {
        let pos = start + off;
        if code[..pos].chars().next_back().map_or(true, |c| !is_ident_char(c)) {
            return Some(pos);
        }
        start = pos + 1;
    }
    None
}

/// The deprecated broadcast entry points quarantined by
/// `no-deprecated-broadcast`. Their definitions live in
/// `crates/doh/src/lib.rs` (exempt); every use elsewhere needs an allow.
const BROADCAST_SHIMS: &[&str] =
    &["resolve_with", "resolve_with_extras", "drain_endpoints", "advance_endpoints_until"];

fn no_deprecated_broadcast(view: &FileView, sink: &mut Sink) {
    if view.rel == "crates/doh/src/lib.rs" {
        return;
    }
    for (i, line) in view.lines.iter().enumerate() {
        for &shim in BROADCAST_SHIMS {
            if has_token(&line.code, shim) {
                sink.report(
                    view,
                    i,
                    "no-deprecated-broadcast",
                    format!(
                        "deprecated broadcast shim `{shim}` — register the endpoints \
                             in a `Driver` and use addressed routing"
                    ),
                );
            }
        }
    }
}

fn no_print_in_lib(view: &FileView, sink: &mut Sink) {
    if view.is_bin_or_example() || view.is_bench() || view.is_test_path() {
        return;
    }
    for (i, line) in view.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for pat in ["println!", "eprintln!", "print!", "eprint!"] {
            if has_token(&line.code, pat) {
                sink.report(
                    view,
                    i,
                    "no-print-in-lib",
                    format!(
                        "`{pat}` in library code — stdout/stderr belong to src/bin, \
                             examples and benches"
                    ),
                );
            }
        }
    }
}

fn no_bare_unwrap_in_core(view: &FileView, sink: &mut Sink) {
    if !view.is_core_crate() {
        return;
    }
    for (i, line) in view.lines.iter().enumerate() {
        if view.test_line(i) || !line.code.contains(".unwrap()") {
            continue;
        }
        let has_comment = |l: &Line| !l.comment.trim().is_empty() || !l.doc.trim().is_empty();
        let documented = has_comment(line) || (i > 0 && has_comment(&view.lines[i - 1]));
        if !documented {
            sink.report(
                view,
                i,
                "no-bare-unwrap-in-core",
                "bare `.unwrap()` in a core crate — state the invariant in a comment \
                 on this or the previous line, or use `.expect(\"…\")`"
                    .to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scrub;

    fn view(rel: &str, src: &str) -> FileView {
        FileView { rel: rel.to_string(), lines: scrub(src) }
    }

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let v = view(rel, src);
        let mut sink = Sink::new(&v);
        for rule in RULES {
            (rule.check)(&v, &mut sink);
        }
        sink.finish(&v)
    }

    #[test]
    fn wall_clock_is_legal_in_benches() {
        let src = "use std::time::Instant;\nfn main() { let t = Instant::now(); t.elapsed(); }\n";
        assert!(run("crates/bench/benches/transports.rs", src).is_empty());
        assert_eq!(run("crates/netsim/src/sim.rs", src).len(), 2);
    }

    #[test]
    fn binding_names_are_extracted_from_decl_shapes() {
        assert_eq!(binding_name("    conns: ").as_deref(), Some("conns"));
        assert_eq!(binding_name("let seen = ").as_deref(), Some("seen"));
        assert_eq!(binding_name("let seen: std::collections::").as_deref(), Some("seen"));
        assert_eq!(binding_name("fn f(m: &mut ").as_deref(), Some("m"));
        assert_eq!(binding_name("fn f() -> ").as_deref(), None);
        assert_eq!(binding_name("if x == ").as_deref(), None);
    }

    #[test]
    fn keyed_lookup_is_legal_iteration_is_not() {
        let src = "use std::collections::HashMap;\n\
                   struct S { conns: HashMap<u32, u32> }\n\
                   impl S {\n\
                   fn get(&self) -> Option<&u32> { self.conns.get(&1) }\n\
                   fn bad(&self) { for c in self.conns.values() { use_it(c); } }\n\
                   }\n";
        let found = run("crates/doh/src/x.rs", src);
        // `.values()` and the `for … in` heuristic both fire on line 5.
        assert!(found.iter().all(|f| f.line == 5 && f.rule == "no-unordered-iteration"));
        assert!(!found.is_empty());
    }

    #[test]
    fn hash_iteration_in_unit_tests_is_exempt() {
        let src = "struct S;\n#[cfg(test)]\nmod tests {\n\
                   fn t() { let seen: std::collections::HashSet<u32> = it.collect(); \
                   for x in seen.iter() { check(x); } }\n}\n";
        assert!(run("crates/workload/src/lib.rs", src).is_empty());
    }

    #[test]
    fn threads_and_atomics_are_confined_to_the_sweep_runner() {
        let src = "use std::thread;\nuse std::sync::atomic::{AtomicUsize, Ordering};\n";
        assert!(run("crates/bench/src/sweep.rs", src).is_empty());
        let found = run("crates/bench/src/stats.rs", src);
        assert_eq!(found.iter().filter(|f| f.rule == "no-thread-outside-sweep").count(), 3);
    }

    #[test]
    fn broadcast_shims_are_flagged_outside_their_definition() {
        let src = "fn f(sim: &mut Sim) { resolve_with(sim, &mut c, &mut s, &n, 1); \
                   drain_endpoints_impl(sim, &mut []); }\n";
        assert!(run("crates/doh/src/lib.rs", src).is_empty(), "definitions file is exempt");
        let found = run("crates/doh/src/do53.rs", src);
        assert_eq!(found.len(), 1, "the _impl helper is a different token: {found:?}");
        assert_eq!(found[0].rule, "no-deprecated-broadcast");
    }

    #[test]
    fn prints_are_legal_in_bins_examples_and_tests() {
        let src = "fn f() { println!(\"x\"); }\n";
        assert!(run("crates/bench/src/bin/fig3.rs", src).is_empty());
        assert!(run("examples/quickstart.rs", src).is_empty());
        assert!(run("tests/transport_matrix.rs", src).is_empty());
        assert_eq!(run("crates/bench/src/report.rs", src).len(), 1);
    }

    #[test]
    fn unwrap_needs_an_invariant_comment_only_in_core_crates() {
        let bare = "fn f() { x().unwrap(); }\n";
        let documented =
            "fn f() {\n    // invariant: x is Some after setup\n    x().unwrap();\n}\n";
        assert_eq!(run("crates/netsim/src/tcp.rs", bare).len(), 1);
        assert!(run("crates/netsim/src/tcp.rs", documented).is_empty());
        assert!(run("crates/bench/src/stats.rs", bare).is_empty(), "bench is not a core crate");
    }

    #[test]
    fn allows_suppress_mark_used_and_surface_when_unused_or_malformed() {
        let src = "// simlint::allow(no-print-in-lib): CLI front-end owns stdout\n\
                   fn f() { println!(\"ok\"); }\n\
                   // simlint::allow(no-print-in-lib): nothing here\n\
                   fn g() {}\n\
                   // simlint::allow(no-print-in-lib)\n\
                   fn h() { println!(\"missing reason does not suppress\"); }\n\
                   // simlint::allow(not-a-rule): whatever\n";
        let found = run("crates/doh/src/zone.rs", src);
        let rules: Vec<&str> = found.iter().map(|f| f.rule).collect();
        assert_eq!(
            rules,
            vec!["unused-allow", "allow-syntax", "no-print-in-lib", "allow-syntax"],
            "{found:?}"
        );
    }
}
