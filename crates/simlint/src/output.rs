//! Finding renderers: the canonical text format, a machine-readable
//! JSON document, and GitHub Actions workflow annotations.
//!
//! The JSON writer goes through `dohmark_dns_wire::jsontext` — the same
//! in-tree layer the bench reports use — so the schema round-trips
//! through [`dohmark_dns_wire::jsontext::parse`] by construction and
//! simlint stays free of external dependencies.

use crate::rules::Finding;
use dohmark_dns_wire::jsontext;

/// Renders findings as the `--format json` document:
///
/// ```json
/// {"findings": [{"file": "...", "line": 7, "rule": "...",
///                "message": "...", "item": "..."}, ...],
///  "count": 1}
/// ```
///
/// `item` is the enclosing item's path (`doh::driver::Driver::resolve`),
/// or the file's module path for file-level findings. Key order and
/// formatting are fixed, so the output is byte-stable for a given
/// finding list.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"file\": ");
        jsontext::write_escaped(&mut out, &f.file);
        out.push_str(&format!(", \"line\": {}", f.line));
        out.push_str(", \"rule\": ");
        jsontext::write_escaped(&mut out, f.rule);
        out.push_str(", \"message\": ");
        jsontext::write_escaped(&mut out, &f.message);
        out.push_str(", \"item\": ");
        jsontext::write_escaped(&mut out, &f.item);
        out.push('}');
    }
    out.push_str(&format!("], \"count\": {}}}\n", findings.len()));
    out
}

/// Renders findings as GitHub Actions `::error` workflow commands, one
/// per line, so a CI lint job annotates the offending lines of a PR
/// diff in place.
pub fn render_github(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str("::error file=");
        out.push_str(&escape_property(&f.file));
        out.push_str(&format!(
            ",line={},title={}",
            f.line,
            escape_property(&format!("simlint: {}", f.rule))
        ));
        out.push_str("::");
        out.push_str(&escape_data(&f.message));
        out.push('\n');
    }
    out
}

/// Escapes a workflow-command data section (the message after `::`).
fn escape_data(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

/// Escapes a workflow-command property value (`file=`, `title=`), which
/// additionally reserves `:` and `,`.
fn escape_property(s: &str) -> String {
    escape_data(s).replace(':', "%3A").replace(',', "%2C")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            file: "crates/doh/src/dot.rs".into(),
            line: 7,
            rule: "no-wall-clock",
            message: "wall clock `Instant::now` — use \"Sim::now()\"".into(),
            item: "doh::dot::DotClient::on_wake".into(),
        }
    }

    #[test]
    fn json_output_parses_back_with_the_documented_schema() {
        let text = render_json(&[finding()]);
        let doc = jsontext::parse(&text).expect("render_json emits valid JSON");
        assert_eq!(doc.get("count").and_then(|v| v.as_u64()), Some(1));
        let rows = doc.get("findings").and_then(|v| v.as_array()).expect("findings array");
        let row = &rows[0];
        assert_eq!(row.get("file").and_then(|v| v.as_str()), Some("crates/doh/src/dot.rs"));
        assert_eq!(row.get("line").and_then(|v| v.as_u64()), Some(7));
        assert_eq!(row.get("rule").and_then(|v| v.as_str()), Some("no-wall-clock"));
        assert_eq!(
            row.get("message").and_then(|v| v.as_str()),
            Some("wall clock `Instant::now` — use \"Sim::now()\"")
        );
        assert_eq!(row.get("item").and_then(|v| v.as_str()), Some("doh::dot::DotClient::on_wake"));
    }

    #[test]
    fn empty_findings_is_an_empty_well_formed_document() {
        let text = render_json(&[]);
        let doc = jsontext::parse(&text).expect("valid");
        assert_eq!(doc.get("count").and_then(|v| v.as_u64()), Some(0));
        assert_eq!(doc.get("findings").and_then(|v| v.as_array()).map(<[_]>::len), Some(0));
    }

    #[test]
    fn github_annotations_escape_properties_and_data() {
        let mut f = finding();
        f.message = "50% lost\nsecond line".into();
        let line = render_github(&[f]);
        assert_eq!(
            line,
            "::error file=crates/doh/src/dot.rs,line=7,title=simlint%3A no-wall-clock\
             ::50%25 lost%0Asecond line\n"
        );
    }
}
