//! A line-oriented Rust scrubber: the lexical front half of simlint.
//!
//! Rules never see raw source. [`scrub`] walks the file once with a small
//! state machine and hands each line back in two channels:
//!
//! * `code` — the source text with comment bodies and string/char-literal
//!   contents blanked out (the delimiters survive, so token boundaries
//!   and brace structure are preserved). Pattern matching on this channel
//!   cannot be fooled by a forbidden API name inside a doc comment or a
//!   format string.
//! * `comment` — the concatenated comment text of the line, which is
//!   where `simlint::allow(...)` annotations and invariant comments live.
//!
//! A second pass tracks `#[cfg(test)]` items by brace depth and marks
//! every line inside them `in_test`, so rules can exempt unit-test
//! modules without any path heuristics.

/// One scrubbed source line.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Code text with comments and literal contents blanked.
    pub code: String,
    /// Plain (non-doc) comment text on this line — the channel
    /// `simlint::allow` annotations and invariant comments live in.
    pub comment: String,
    /// Doc-comment text (`///`, `//!`, `/** */`) on this line. Kept
    /// separate so prose *examples* of forbidden APIs or allow syntax
    /// in rustdoc never register as live annotations.
    pub doc: String,
    /// Whether the line sits inside a `#[cfg(test)]` item's braces.
    pub in_test: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    /// A `//` comment; `doc` is true for `///` and `//!` forms.
    LineComment {
        doc: bool,
    },
    /// Block comments nest in Rust; the payload is the nesting depth.
    BlockComment {
        depth: u32,
        doc: bool,
    },
    Str,
    /// Raw string; the payload is the number of `#`s in the delimiter.
    RawStr(u32),
}

/// Scrubs `source` into per-line code/comment channels and marks
/// `#[cfg(test)]` regions.
pub fn scrub(source: &str) -> Vec<Line> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines: Vec<Line> = Vec::new();
    let mut cur = Line::default();
    let mut state = State::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(state, State::LineComment { .. }) {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    let doc = matches!(chars.get(i + 2), Some(&'/') | Some(&'!'));
                    state = State::LineComment { doc };
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    let doc = matches!(chars.get(i + 2), Some(&'*') | Some(&'!'));
                    state = State::BlockComment { depth: 1, doc };
                    i += 2;
                } else if let Some(hashes) = raw_string_start(&chars, i) {
                    // `r"`, `r#"`, `br##"` … — emit the opening quote so
                    // tokens on either side stay separated.
                    cur.code.push('"');
                    state = State::RawStr(hashes);
                    i += raw_prefix_len(&chars, i) + 1;
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Str;
                    i += 1;
                } else if c == '\'' {
                    i = lex_quote(&chars, i, &mut cur.code);
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::LineComment { doc } => {
                if doc {
                    cur.doc.push(c);
                } else {
                    cur.comment.push(c);
                }
                i += 1;
            }
            State::BlockComment { depth, doc } => {
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment { depth: depth + 1, doc };
                    i += 2;
                } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment { depth: depth - 1, doc }
                    };
                    i += 2;
                } else {
                    if doc {
                        cur.doc.push(c);
                    } else {
                        cur.comment.push(c);
                    }
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2; // skip the escaped char, whatever it is
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    cur.code.push('"');
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
        }
    }
    lines.push(cur);
    mark_test_regions(&mut lines);
    lines
}

/// Is `i` the start of a raw (byte) string literal? Returns the hash
/// count if so. The char before must not be an identifier char, or the
/// `r` could be the tail of an identifier like `var`.
fn raw_string_start(chars: &[char], i: usize) -> Option<u32> {
    if i > 0 && is_ident_char(chars[i - 1]) {
        return None;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some(hashes)
    } else {
        None
    }
}

/// Length of the raw-string prefix up to (excluding) the opening quote.
fn raw_prefix_len(chars: &[char], i: usize) -> usize {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    j += 1; // the `r`
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    j - i
}

fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Handles a `'` in code position: a char literal (contents blanked) or
/// a lifetime (passed through). Returns the next index.
fn lex_quote(chars: &[char], i: usize, code: &mut String) -> usize {
    let next = chars.get(i + 1).copied();
    if next == Some('\\') {
        // Escaped char literal: skip to the closing quote.
        code.push_str("' '");
        let mut j = i + 2;
        if chars.get(j).is_some() {
            j += 1; // the escaped char itself ('\n', '\'', '\u')
        }
        while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
            j += 1; // tail of \u{…} escapes
        }
        j + 1
    } else if chars.get(i + 2) == Some(&'\'') && next.is_some() {
        // Plain 'x' char literal.
        code.push_str("' '");
        i + 3
    } else {
        // A lifetime: keep it verbatim (it is code, and contains no
        // quotes to confuse the scanner).
        code.push('\'');
        i + 1
    }
}

/// An identifier character for token-boundary purposes.
pub fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Marks lines inside `#[cfg(test)]` items by tracking brace depth: the
/// attribute arms a flag, the next `{` opens a test region at the
/// current depth, and the region closes when depth falls back to it.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut armed = false;
    let mut stack: Vec<i64> = Vec::new();
    for line in lines.iter_mut() {
        let mut in_test = !stack.is_empty();
        if line.code.contains("#[cfg(test)]") {
            armed = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    if armed {
                        stack.push(depth);
                        armed = false;
                    }
                    depth += 1;
                    in_test = in_test || !stack.is_empty();
                }
                '}' => {
                    depth -= 1;
                    if stack.last().is_some_and(|&d| depth <= d) {
                        stack.pop();
                    }
                }
                _ => {}
            }
        }
        line.in_test = in_test;
    }
}

/// Does `code` contain `pat` as a whole token — i.e. not embedded in a
/// longer identifier on either side? `pat` itself may contain `::` or
/// `.`; only its outer boundaries are checked.
pub fn has_token(code: &str, pat: &str) -> bool {
    find_token(code, pat, 0).is_some()
}

/// The byte offset of the first whole-token occurrence of `pat` at or
/// after `from`, if any.
pub fn find_token(code: &str, pat: &str, from: usize) -> Option<usize> {
    let mut start = from;
    while let Some(off) = code[start..].find(pat) {
        let pos = start + off;
        let before_ok = code[..pos].chars().next_back().map_or(true, |c| !is_ident_char(c));
        let after_ok = code[pos + pat.len()..].chars().next().map_or(true, |c| !is_ident_char(c));
        if before_ok && after_ok {
            return Some(pos);
        }
        start = pos + 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        scrub(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_are_moved_to_the_comment_channel() {
        let lines = scrub("let x = 1; // Instant::now() in prose\n");
        assert!(!lines[0].code.contains("Instant"));
        assert!(lines[0].comment.contains("Instant::now()"));
    }

    #[test]
    fn doc_comments_and_nested_block_comments_are_scrubbed() {
        let src = "/// uses HashMap iteration\n/* outer /* inner */ still comment */ fn f() {}\n";
        let c = codes(src);
        assert_eq!(c[0].trim(), "");
        assert_eq!(c[1].trim(), "fn f() {}");
    }

    #[test]
    fn string_contents_are_blanked_but_quotes_survive() {
        let c = codes("let s = \"println!(\\\"HashMap\\\")\";\n");
        assert!(!c[0].contains("HashMap"));
        assert!(c[0].contains("\"\""));
        assert!(c[0].ends_with(';'));
    }

    #[test]
    fn raw_strings_hide_their_contents_including_quotes() {
        let c = codes("let s = r#\"He said \"SystemTime::now\" loudly\"#; let t = 2;\n");
        assert!(!c[0].contains("SystemTime"));
        assert!(c[0].contains("let t = 2;"));
    }

    #[test]
    fn char_literals_and_lifetimes_disambiguate() {
        let c =
            codes("fn f<'a>(x: &'a str) -> char { if x.starts_with('{') { '}' } else { 'q' } }\n");
        // Literal braces inside char literals must not reach the code
        // channel, or brace tracking would desynchronize.
        let opens = c[0].matches('{').count();
        let closes = c[0].matches('}').count();
        assert_eq!(opens, 3, "fn + then + else blocks, not the '{{' literal");
        assert_eq!(closes, 3);
        assert!(c[0].contains("<'a>"));
    }

    #[test]
    fn multi_line_strings_stay_scrubbed_across_lines() {
        let c = codes("let s = \"first\nsecond HashMap\nthird\"; let x = 1;\n");
        assert!(!c[1].contains("HashMap"));
        assert!(c[2].contains("let x = 1;"));
    }

    #[test]
    fn cfg_test_region_is_marked_by_brace_depth() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { work(); }\n}\nfn after() {}\n";
        let lines = scrub(src);
        assert!(!lines[0].in_test, "code before the attribute");
        assert!(lines[3].in_test, "body of the test mod");
        assert!(!lines[5].in_test, "code after the closing brace");
    }

    #[test]
    fn token_boundaries_reject_identifier_tails() {
        assert!(has_token("drain_endpoints(sim)", "drain_endpoints"));
        assert!(!has_token("drain_endpoints_impl(sim)", "drain_endpoints"));
        assert!(!has_token("my_drain_endpoints(sim)", "drain_endpoints"));
        assert!(has_token("use std::thread;", "std::thread"));
        assert!(has_token("std::thread::spawn(f)", "std::thread"));
    }
}
