//! A lightweight syntactic item model on top of [`crate::lexer`].
//!
//! The lexer gives rules a per-line `{code, comment, doc, in_test}`
//! view; this module recovers the *item structure* above those lines —
//! which `fn`/`impl`/`trait`/`mod` a line lives in, what the file's
//! `use` statements alias, and which paths each function calls — and
//! joins the items of every file into a workspace-level callable index.
//!
//! That is deliberately **not** a Rust parser. Spans come from brace
//! tracking over scrubbed code (string and comment braces are already
//! blanked, so depth never desynchronises), names from token scans of
//! the item header, and calls from `ident(` / `path::ident(` /
//! `.method(` shapes. The model is approximate in ways that do not
//! matter for linting: generics are stripped, macro bodies are opaque,
//! and an unresolvable call simply does not propagate. What it buys is
//! the class of rule PR 8's lexical pass could not express — *cross-file
//! determinism rules* like "no wake scheduling reachable from endpoint
//! code outside the driver", where the offence depends on which item a
//! line sits in and what that item transitively calls.

use crate::lexer::{find_token, is_ident_char, Line};
use crate::rules::FileView;
use std::collections::BTreeMap;

/// The item kinds the model distinguishes. `Other` covers `struct` /
/// `enum` / `union` headers — tracked only so their attributes (e.g.
/// `#[deprecated]`) attach to the right item and never leak forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// A function or method (the only kind that carries calls).
    Fn,
    /// An `impl` block; the item's `name` is the implementing type.
    Impl,
    /// A `trait` definition.
    Trait,
    /// An inline `mod` block.
    Mod,
    /// A `struct` / `enum` / `union` definition.
    Other,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// 0-based line of the call.
    pub line: usize,
    /// The called path: `rearm`, `driver::resolve_routed`,
    /// `Sim::schedule_app` — or a bare method name for `.method(` calls.
    pub path: String,
    /// Whether this was a `.method(` call (dot dispatch, receiver type
    /// unknown) rather than a path call.
    pub method: bool,
}

/// One syntactic item: a span of lines plus header-derived facts.
#[derive(Debug, Clone)]
pub struct Item {
    /// What kind of item this is.
    pub kind: ItemKind,
    /// The header name: fn name, impl target type, trait/mod name.
    pub name: String,
    /// Fully qualified display path, e.g. `doh::driver::Driver::resolve`.
    pub path: String,
    /// First line of the item's attached doc/attribute block (0-based).
    pub doc_start: usize,
    /// Header line (0-based).
    pub start: usize,
    /// Last line of the item (closing brace or `;`), inclusive, 0-based.
    pub end: usize,
    /// Whether the item carries a `#[deprecated]` attribute.
    pub deprecated: bool,
    /// Calls extracted from the body (populated for `Fn` items only).
    pub calls: Vec<Call>,
}

/// The per-file half of the model: module path, alias map, items.
#[derive(Debug, Clone)]
pub struct FileModel {
    /// Module path derived from the workspace-relative file path,
    /// e.g. `crates/doh/src/driver.rs` → `doh::driver`.
    pub module: String,
    /// `use`-alias map: last-segment alias → full imported path
    /// (`drain_routed` → `crate::driver::drain_routed`).
    pub aliases: BTreeMap<String, String>,
    /// Items in source order. Nested items (a fn inside an impl) appear
    /// after their container; spans overlap.
    pub items: Vec<Item>,
}

/// The workspace-level model: every file's items plus a callable index
/// joining them across files.
pub struct Workspace<'a> {
    /// The scrubbed files, parallel to [`Workspace::files`].
    pub views: &'a [FileView],
    /// Per-file item models, parallel to `views`.
    pub files: Vec<FileModel>,
    /// Callable index: fully qualified `Fn` item path → (file index,
    /// item index), joined across every file in the workspace.
    index: BTreeMap<String, (usize, usize)>,
}

impl<'a> Workspace<'a> {
    /// Builds the model over every scrubbed file.
    pub fn build(views: &'a [FileView]) -> Workspace<'a> {
        let files: Vec<FileModel> = views.iter().map(|v| parse_file(&v.rel, &v.lines)).collect();
        let mut index = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (ii, item) in file.items.iter().enumerate() {
                if item.kind == ItemKind::Fn && !item.name.is_empty() {
                    index.insert(item.path.clone(), (fi, ii));
                }
            }
        }
        Workspace { views, files, index }
    }

    /// The innermost `Fn` item covering `line` in file `fi`, else the
    /// innermost item of any kind, else `None` (file-level code).
    pub fn item_at(&self, fi: usize, line: usize) -> Option<&Item> {
        let items = &self.files[fi].items;
        let covering = |i: &&Item| i.start <= line && line <= i.end;
        items
            .iter()
            .filter(covering)
            .filter(|i| i.kind == ItemKind::Fn)
            .min_by_key(|i| i.end - i.start)
            .or_else(|| items.iter().filter(covering).min_by_key(|i| i.end - i.start))
    }

    /// The display path of the innermost item covering `line`, or the
    /// file's module path for file-level lines.
    pub fn enclosing_path(&self, fi: usize, line: usize) -> String {
        self.item_at(fi, line)
            .map(|i| i.path.clone())
            .unwrap_or_else(|| self.files[fi].module.clone())
    }

    /// Resolves a call made from file `fi` by item `caller` to a `Fn`
    /// item in the index, if the model can name its target.
    ///
    /// Resolution tries, in order: the caller's own impl block (`.m()` →
    /// `module::Type::m`), the file's module (`helper` →
    /// `module::helper`), the file's `use`-alias map with `crate::` /
    /// `self::` normalised, the path joined onto the module
    /// (`driver::f` from `doh` → `doh::driver::f`), and finally a unique
    /// `::`-suffix match across the workspace. Dot-method calls only try
    /// the first step — the receiver's type is unknown.
    pub fn resolve(&self, fi: usize, caller: Option<&Item>, call: &Call) -> Option<(usize, usize)> {
        let file = &self.files[fi];
        let module = &file.module;
        let last = call.path.rsplit("::").next().unwrap_or(&call.path);
        // Same-impl method or associated call.
        if let Some(container) = caller.and_then(|c| impl_of(&c.path, &c.name)) {
            if let Some(&hit) = self.index.get(&format!("{container}::{last}")) {
                return Some(hit);
            }
        }
        if call.method {
            return None;
        }
        // Free function in the same module.
        if !call.path.contains("::") {
            if let Some(&hit) = self.index.get(&format!("{module}::{}", call.path)) {
                return Some(hit);
            }
        }
        // Alias-expanded, with `crate`/`self` normalised to this file's
        // crate root / module.
        let root = module.split("::").next().unwrap_or(module);
        let first = call.path.split("::").next().unwrap_or(&call.path);
        let expanded = match file.aliases.get(first) {
            Some(full) => format!("{full}{}", call.path.strip_prefix(first).unwrap_or("")),
            None => call.path.clone(),
        };
        let normalised = expanded
            .strip_prefix("crate::")
            .map(|r| format!("{root}::{r}"))
            .or_else(|| expanded.strip_prefix("self::").map(|r| format!("{module}::{r}")))
            .unwrap_or(expanded);
        if let Some(&hit) = self.index.get(&normalised) {
            return Some(hit);
        }
        // Path relative to the current module (`driver::f` inside `doh`).
        if let Some(&hit) = self.index.get(&format!("{module}::{normalised}")) {
            return Some(hit);
        }
        // Unique suffix match across the workspace.
        let suffix = format!("::{normalised}");
        let mut matches = self.index.iter().filter(|(k, _)| k.ends_with(&suffix));
        match (matches.next(), matches.next()) {
            (Some((_, &hit)), None) => Some(hit),
            _ => None,
        }
    }
}

/// The `Type` prefix of `path` when the item is a method of `Type` —
/// i.e. `path` ends with `::Type::name` for the item's own `name`.
fn impl_of(path: &str, name: &str) -> Option<String> {
    let prefix = path.strip_suffix(name)?.strip_suffix("::")?;
    let ty = prefix.rsplit("::").next()?;
    ty.chars().next().filter(|c| c.is_ascii_uppercase())?;
    Some(prefix.to_string())
}

/// Derives a module path from a workspace-relative file path:
/// `crates/doh/src/driver.rs` → `doh::driver`, `crates/doh/src/lib.rs`
/// → `doh`, `src/lib.rs` → `dohmark`, `examples/browse.rs` →
/// `examples::browse`; `-` becomes `_` as cargo does.
pub fn module_path(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    let stem = |s: &str| s.trim_end_matches(".rs").replace('-', "_");
    let join = |head: String, rest: &[&str]| {
        let mut p = head;
        for seg in rest {
            p.push_str("::");
            p.push_str(&stem(seg));
        }
        p
    };
    match parts.as_slice() {
        ["crates", krate, "src", "lib.rs"] => stem(krate),
        ["crates", krate, "src", rest @ ..] => join(stem(krate), rest),
        ["crates", krate, kind, rest @ ..] => {
            join(format!("{}::{}", stem(krate), stem(kind)), rest)
        }
        ["src", "lib.rs"] => "dohmark".to_string(),
        _ => join(String::new(), parts.as_slice()).trim_start_matches("::").to_string(),
    }
}

/// Keywords that look like `ident(` call sites but are not.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "in", "as", "move", "let",
    "mut", "ref", "dyn", "impl", "where", "unsafe", "pub", "crate", "super", "self", "Self", "use",
    "mod", "struct", "enum", "union", "trait", "type", "const", "static",
];

/// A pending item header being accumulated until its `{` or a `;` at
/// paren/bracket nesting zero.
struct Pending {
    kind: ItemKind,
    header: String,
    doc_start: usize,
    start: usize,
    deprecated: bool,
    nest: i32,
}

/// Parses one scrubbed file into its [`FileModel`].
pub fn parse_file(rel: &str, lines: &[Line]) -> FileModel {
    let module = module_path(rel);
    let mut aliases = BTreeMap::new();
    let mut items: Vec<Item> = Vec::new();
    // Indices into `items` of the currently open containers, with the
    // brace depth at which each opened.
    let mut stack: Vec<(usize, i64)> = Vec::new();
    let mut depth: i64 = 0;
    let mut pending: Option<Pending> = None;
    // First line of the doc/attribute block that will attach to the
    // next item header, plus whether it contained `#[deprecated`.
    let mut meta_start: Option<usize> = None;
    let mut meta_deprecated = false;
    // Multi-line `use` statements accumulate until their `;`.
    let mut use_buf: Option<String> = None;

    for (ln, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        let trimmed = code.trim();

        if let Some(buf) = use_buf.as_mut() {
            buf.push(' ');
            buf.push_str(trimmed);
            if trimmed.contains(';') {
                record_use(buf, &mut aliases);
                use_buf = None;
            }
            continue;
        }

        if pending.is_none() {
            // Track the doc/attribute block. Attributes may span lines
            // (a multi-line `#[deprecated(note = "…")]` leaves a `")]`
            // residue), so only clearly-complete statements detach it.
            let doc_or_comment = !line.doc.trim().is_empty() || !line.comment.trim().is_empty();
            if meta_start.is_none()
                && (trimmed.starts_with("#[") || (trimmed.is_empty() && doc_or_comment))
            {
                meta_start = Some(ln);
            }
            if code.contains("#[deprecated") {
                meta_deprecated = true;
            }
            let blank = trimmed.is_empty() && !doc_or_comment;
            let statement = trimmed.ends_with(';') && !trimmed.starts_with("#[");
            if let Some(body) = use_stmt(trimmed) {
                if trimmed.contains(';') {
                    record_use(body, &mut aliases);
                } else {
                    use_buf = Some(body.to_string());
                }
                meta_start = None;
                meta_deprecated = false;
                continue;
            }
            if let Some(kind) = item_header(code) {
                pending = Some(Pending {
                    kind,
                    header: code.to_string(),
                    doc_start: meta_start.take().unwrap_or(ln),
                    start: ln,
                    deprecated: meta_deprecated,
                    nest: 0,
                });
                meta_deprecated = false;
            } else if blank || statement {
                meta_start = None;
                meta_deprecated = false;
            }
        } else if let Some(p) = pending.as_mut() {
            p.header.push(' ');
            p.header.push_str(code);
        }

        // Brace tracking with pending open/close.
        for c in code.chars() {
            if let Some(p) = pending.as_mut() {
                match c {
                    '(' | '[' => p.nest += 1,
                    ')' | ']' => p.nest -= 1,
                    ';' if p.nest == 0 => {
                        // A bodyless item: trait method decl, tuple or
                        // unit struct.
                        let p = pending.take().expect("pending checked above");
                        let mut item = open_item(p, &module, &items, &stack);
                        item.end = ln;
                        items.push(item);
                    }
                    '{' => {
                        let p = pending.take().expect("pending checked above");
                        let item = open_item(p, &module, &items, &stack);
                        items.push(item);
                        stack.push((items.len() - 1, depth));
                        depth += 1;
                    }
                    _ => {}
                }
                continue;
            }
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    while let Some(&(idx, d)) = stack.last() {
                        if depth <= d {
                            items[idx].end = ln;
                            stack.pop();
                        } else {
                            break;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    // Close anything left open at EOF (unbalanced input).
    let last = lines.len().saturating_sub(1);
    for (idx, _) in stack {
        items[idx].end = last;
    }
    if let Some(p) = pending.take() {
        let mut item = open_item(p, &module, &items, &[]);
        item.end = last;
        items.push(item);
    }

    // Second pass: attribute each line's calls to the innermost `Fn`
    // item covering it (header param lists produce no call shapes, so
    // scanning whole spans is safe).
    let mut extracted: Vec<(usize, Call)> = Vec::new();
    for (ln, line) in lines.iter().enumerate() {
        let target = items
            .iter()
            .enumerate()
            .filter(|(_, i)| i.kind == ItemKind::Fn && i.start <= ln && ln <= i.end)
            .min_by_key(|(_, i)| i.end - i.start)
            .map(|(idx, _)| idx);
        if let Some(idx) = target {
            let mut calls = Vec::new();
            extract_calls(&line.code, ln, &mut calls);
            extracted.extend(calls.into_iter().map(|c| (idx, c)));
        }
    }
    for (idx, call) in extracted {
        items[idx].calls.push(call);
    }
    FileModel { module, aliases, items }
}

/// Finalises a pending header into an [`Item`] (`end` is patched when
/// the closing brace is seen).
fn open_item(p: Pending, module: &str, items: &[Item], stack: &[(usize, i64)]) -> Item {
    let name = header_name(p.kind, &p.header).unwrap_or_default();
    let mut path = module.to_string();
    for &(idx, _) in stack {
        let it = &items[idx];
        if !it.name.is_empty() && it.kind != ItemKind::Other {
            path.push_str("::");
            path.push_str(&it.name);
        }
    }
    if !name.is_empty() {
        path.push_str("::");
        path.push_str(&name);
    }
    Item {
        kind: p.kind,
        name,
        path,
        doc_start: p.doc_start,
        start: p.start,
        end: p.start,
        deprecated: p.deprecated,
        calls: Vec::new(),
    }
}

/// The `use` statement body (`use` keyword onward) if this line starts
/// one, tolerating `pub` / `pub(crate)` / `pub(super)` prefixes.
fn use_stmt(trimmed: &str) -> Option<&str> {
    let pos = find_token(trimmed, "use", 0)?;
    let prefix = trimmed[..pos].trim();
    matches!(prefix, "" | "pub" | "pub(crate)" | "pub(super)" | "pub(in crate)")
        .then(|| &trimmed[pos..])
}

/// Does this line's code open an item header? Checks `fn` / `impl` /
/// `trait` / `mod` / `struct` / `enum` / `union` keyword tokens,
/// rejecting type-position uses (`: fn(…)`, `-> impl Trait`, `<dyn …`).
fn item_header(code: &str) -> Option<ItemKind> {
    for (kw, kind) in [
        ("fn", ItemKind::Fn),
        ("impl", ItemKind::Impl),
        ("trait", ItemKind::Trait),
        ("mod", ItemKind::Mod),
        ("struct", ItemKind::Other),
        ("enum", ItemKind::Other),
        ("union", ItemKind::Other),
    ] {
        if let Some(pos) = find_token(code, kw, 0) {
            let before = code[..pos].trim_end();
            if before.ends_with(['.', '<', ':', '&', '(', ',', '=', '|', '>']) {
                continue;
            }
            return Some(kind);
        }
    }
    None
}

/// Extracts the item's name from its full header text.
fn header_name(kind: ItemKind, header: &str) -> Option<String> {
    match kind {
        ItemKind::Fn => ident_after(header, "fn"),
        ItemKind::Trait => ident_after(header, "trait"),
        ItemKind::Mod => ident_after(header, "mod"),
        ItemKind::Other => ident_after(header, "struct")
            .or_else(|| ident_after(header, "enum"))
            .or_else(|| ident_after(header, "union")),
        ItemKind::Impl => {
            // `impl<…> Type<…> {` or `impl<…> Trait for Type<…> {` —
            // the implementing type is the path after the `for` when one
            // is present, else the first path after the generics.
            let pos = find_token(header, "impl", 0)?;
            let mut rest = header[pos + 4..].trim_start();
            if rest.starts_with('<') {
                let mut angle = 0usize;
                let mut cut = rest.len();
                for (i, c) in rest.char_indices() {
                    match c {
                        '<' => angle += 1,
                        '>' => {
                            angle -= 1;
                            if angle == 0 {
                                cut = i + 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                rest = rest[cut..].trim_start();
            }
            let rest = match find_token(rest, "for", 0) {
                Some(fp) => rest[fp + 3..].trim_start(),
                None => rest,
            };
            let path: String = rest.chars().take_while(|&c| is_ident_char(c) || c == ':').collect();
            let name = path.rsplit("::").next().unwrap_or(&path).to_string();
            (!name.is_empty()).then_some(name)
        }
    }
}

/// The identifier token directly after keyword `kw`, if any.
fn ident_after(code: &str, kw: &str) -> Option<String> {
    let pos = find_token(code, kw, 0)?;
    let rest = code[pos + kw.len()..].trim_start();
    let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
    (!name.is_empty()).then_some(name)
}

/// Records the aliases a `use` statement introduces. Handles `as`
/// renames and nested `{…}` grouping.
fn record_use(stmt: &str, aliases: &mut BTreeMap<String, String>) {
    let Some(body) = stmt.trim().strip_prefix("use ") else { return };
    record_use_tree("", body.trim_end_matches(';').trim(), aliases);
}

fn record_use_tree(prefix: &str, tree: &str, aliases: &mut BTreeMap<String, String>) {
    let tree = tree.trim();
    if let Some(open) = tree.find('{') {
        // `path::{a, b::c, d as e}` — recurse on each comma-split arm at
        // this nesting level.
        let base = format!("{prefix}{}", &tree[..open]);
        let inner = tree[open + 1..].trim_end().trim_end_matches('}');
        let mut nest = 0usize;
        let mut start = 0usize;
        for (i, c) in inner.char_indices() {
            match c {
                '{' => nest += 1,
                '}' => nest = nest.saturating_sub(1),
                ',' if nest == 0 => {
                    record_use_tree(&base, &inner[start..i], aliases);
                    start = i + 1;
                }
                _ => {}
            }
        }
        record_use_tree(&base, &inner[start..], aliases);
        return;
    }
    let (path, alias) = match tree.split_once(" as ") {
        Some((p, a)) => (p.trim(), a.trim().to_string()),
        None => {
            let p = tree.trim();
            (p, p.rsplit("::").next().unwrap_or(p).to_string())
        }
    };
    if path.is_empty() || alias.is_empty() || alias == "*" || alias == "_" {
        return;
    }
    aliases.insert(alias, format!("{prefix}{path}"));
}

/// Extracts `ident(`, `a::b::ident(` and `.method(` call shapes from one
/// scrubbed code line into `out`. Macro calls (`ident!(`) and keyword
/// heads (`if (…)`) are skipped; tuple-struct constructors (`Some(…)`)
/// come through but resolve to nothing.
pub fn extract_calls(code: &str, line: usize, out: &mut Vec<Call>) {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'(' {
            continue;
        }
        // Walk back over the path: idents and `::` separators.
        let mut j = i;
        while j > 0 {
            let c = bytes[j - 1] as char;
            if is_ident_char(c) {
                j -= 1;
            } else if c == ':' && j >= 2 && bytes[j - 2] == b':' {
                j -= 2;
            } else {
                break;
            }
        }
        if j == i {
            continue; // `(` with no path before it
        }
        let path = &code[j..i];
        if path.starts_with(|c: char| c.is_ascii_digit()) || path.starts_with("::") {
            continue;
        }
        let last = path.rsplit("::").next().unwrap_or(path);
        if NON_CALL_KEYWORDS.contains(&last) {
            continue;
        }
        let before = code[..j].trim_end();
        if before.ends_with('!') {
            continue; // macro
        }
        if before.ends_with("fn") {
            continue; // the definition site itself
        }
        let method = before.ends_with('.');
        out.push(Call { line, path: path.to_string(), method });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scrub;

    fn model(rel: &str, src: &str) -> FileModel {
        parse_file(rel, &scrub(src))
    }

    #[test]
    fn module_paths_follow_cargo_layout() {
        assert_eq!(module_path("crates/doh/src/lib.rs"), "doh");
        assert_eq!(module_path("crates/doh/src/driver.rs"), "doh::driver");
        assert_eq!(module_path("crates/dns-wire/src/jsontext.rs"), "dns_wire::jsontext");
        assert_eq!(module_path("crates/bench/src/bin/fig3.rs"), "bench::bin::fig3");
        assert_eq!(module_path("crates/bench/tests/fleet_scale.rs"), "bench::tests::fleet_scale");
        assert_eq!(module_path("src/lib.rs"), "dohmark");
        assert_eq!(module_path("examples/browse.rs"), "examples::browse");
    }

    #[test]
    fn fn_spans_paths_and_calls_are_recovered() {
        let src = "pub struct S;\n\
                   impl S {\n    pub fn a(&self) -> u32 {\n        helper(1)\n    }\n}\n\
                   fn helper(x: u32) -> u32 {\n    x\n}\n";
        let m = model("crates/doh/src/x.rs", src);
        let a = m.items.iter().find(|i| i.name == "a").expect("method a");
        assert_eq!(a.path, "doh::x::S::a");
        assert_eq!((a.start, a.end), (2, 4));
        assert_eq!(a.calls.len(), 1);
        assert_eq!(a.calls[0].path, "helper");
        let h = m.items.iter().find(|i| i.name == "helper").expect("fn helper");
        assert_eq!(h.path, "doh::x::helper");
        assert_eq!((h.start, h.end), (6, 8));
    }

    #[test]
    fn impl_trait_for_type_names_the_type() {
        let src = "impl<'a> Route for Broadcast<'a, 'a> {\n    fn deliver(&mut self) {}\n}\n";
        let m = model("crates/doh/src/driver.rs", src);
        let imp = m.items.iter().find(|i| i.kind == ItemKind::Impl).expect("impl");
        assert_eq!(imp.name, "Broadcast");
        let f = m.items.iter().find(|i| i.name == "deliver").expect("method");
        assert_eq!(f.path, "doh::driver::Broadcast::deliver");
    }

    #[test]
    fn multi_line_fn_headers_and_array_semicolons_resolve() {
        let src = "pub fn advance(\n    sim: &mut Sim,\n    buf: [u8; 4],\n) -> bool {\n    sim.next_wake_owned()\n        .is_some()\n}\n";
        let m = model("crates/doh/src/y.rs", src);
        let f = &m.items[0];
        assert_eq!(f.name, "advance");
        assert_eq!((f.start, f.end), (0, 6), "the `;` in [u8; 4] must not end the header");
        assert!(f.calls.iter().any(|c| c.method && c.path == "next_wake_owned"));
    }

    #[test]
    fn one_line_fns_still_carry_their_calls() {
        let m = model("crates/doh/src/z.rs", "fn f(sim: &mut Sim) { rearm(sim) }\n");
        assert_eq!(m.items[0].calls.len(), 1);
        assert_eq!(m.items[0].calls[0].path, "rearm");
    }

    #[test]
    fn use_trees_build_the_alias_map() {
        let src = "use crate::driver::{drain_routed, Broadcast as Bcast};\n\
                   pub use dohmark_netsim::{Sim, trace::CostMeter};\n\
                   use std::fmt;\n";
        let m = model("crates/doh/src/lib.rs", src);
        let get = |k: &str| m.aliases.get(k).map(String::as_str);
        assert_eq!(get("drain_routed"), Some("crate::driver::drain_routed"));
        assert_eq!(get("Bcast"), Some("crate::driver::Broadcast"));
        assert_eq!(get("CostMeter"), Some("dohmark_netsim::trace::CostMeter"));
        assert_eq!(get("fmt"), Some("std::fmt"));
    }

    #[test]
    fn multi_line_use_trees_do_not_desync_brace_depth() {
        let src = "use crate::driver::{\n    drain_routed,\n    Broadcast,\n};\n\
                   fn after() {\n    work();\n}\n";
        let m = model("crates/doh/src/lib.rs", src);
        assert!(m.aliases.contains_key("drain_routed"));
        let f = m.items.iter().find(|i| i.name == "after").expect("fn after");
        assert_eq!((f.start, f.end), (4, 6));
    }

    #[test]
    fn deprecated_attribute_attaches_to_its_item_only() {
        let src = "/// Docs.\n#[deprecated(note = \"gone \\\n                     soon\")]\npub fn old() {}\n\npub fn fresh() {}\n";
        let m = model("crates/doh/src/lib.rs", src);
        let old = m.items.iter().find(|i| i.name == "old").expect("old");
        assert!(old.deprecated);
        assert_eq!(old.doc_start, 0);
        let fresh = m.items.iter().find(|i| i.name == "fresh").expect("fresh");
        assert!(!fresh.deprecated);
    }

    #[test]
    fn calls_skip_macros_keywords_and_definitions() {
        let mut calls = Vec::new();
        extract_calls("    if ready(x) { done!(y); return make(z); }", 3, &mut calls);
        let paths: Vec<&str> = calls.iter().map(|c| c.path.as_str()).collect();
        assert_eq!(paths, vec!["ready", "make"]);
        calls.clear();
        extract_calls("    Sim::schedule_app(at, tok); sim.next_wake();", 0, &mut calls);
        assert_eq!((calls[0].path.as_str(), calls[0].method), ("Sim::schedule_app", false));
        assert_eq!((calls[1].path.as_str(), calls[1].method), ("next_wake", true));
    }

    #[test]
    fn workspace_resolves_cross_file_calls() {
        let a = FileView {
            rel: "crates/doh/src/lib.rs".into(),
            lines: scrub(
                "use crate::driver::drain_routed;\n\
                 pub fn pump(sim: &mut Sim) {\n    drain_routed(sim)\n}\n",
            ),
        };
        let b = FileView {
            rel: "crates/doh/src/driver.rs".into(),
            lines: scrub("pub fn drain_routed(sim: &mut Sim) {\n    sim.next_wake_owned();\n}\n"),
        };
        let views = vec![a, b];
        let ws = Workspace::build(&views);
        let pump = ws.files[0].items.iter().find(|i| i.name == "pump").expect("pump").clone();
        let call = pump.calls.iter().find(|c| c.path == "drain_routed").expect("call");
        let (fi, ii) = ws.resolve(0, Some(&pump), call).expect("resolves");
        assert_eq!(ws.files[fi].items[ii].path, "doh::driver::drain_routed");
    }

    #[test]
    fn same_impl_method_calls_resolve() {
        let src = "impl Endpoint {\n\
                   fn rearm(&self, sim: &mut Sim) {\n    sim.schedule_app(1, 2);\n}\n\
                   fn on_wake(&self, sim: &mut Sim) {\n    self.rearm(sim);\n}\n}\n";
        let views = vec![FileView { rel: "crates/doh/src/e.rs".into(), lines: scrub(src) }];
        let ws = Workspace::build(&views);
        let on_wake =
            ws.files[0].items.iter().find(|i| i.name == "on_wake").expect("on_wake").clone();
        let call = on_wake.calls.iter().find(|c| c.path == "rearm").expect("call");
        let (fi, ii) = ws.resolve(0, Some(&on_wake), call).expect("resolves");
        assert_eq!(ws.files[fi].items[ii].path, "doh::e::Endpoint::rearm");
    }

    #[test]
    fn item_at_prefers_the_innermost_fn() {
        let src = "impl S {\n    fn outer(&self) {\n        work();\n    }\n}\n";
        let views = vec![FileView { rel: "crates/doh/src/x.rs".into(), lines: scrub(src) }];
        let ws = Workspace::build(&views);
        assert_eq!(ws.enclosing_path(0, 2), "doh::x::S::outer");
        assert_eq!(ws.enclosing_path(0, 0), "doh::x::S");
    }
}
