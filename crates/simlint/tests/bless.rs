//! `--bless` self-consistency: the committed corpus is already blessed,
//! blessing is idempotent, and blessing actually repairs a drifted
//! `.expected` file. Runs against a copy of the corpus under
//! `CARGO_TARGET_TMPDIR` so the committed fixtures are never touched.

use std::fs;
use std::path::{Path, PathBuf};

use dohmark_simlint::bless_fixtures;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Copies the committed corpus into a scratch dir unique to `name`.
fn scratch_corpus(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("clean scratch dir");
    }
    fs::create_dir_all(&dir).expect("create scratch dir");
    for entry in fs::read_dir(fixtures_dir()).expect("fixtures dir") {
        let path = entry.expect("dir entry").path();
        if path.is_file() {
            fs::copy(&path, dir.join(path.file_name().expect("file name"))).expect("copy fixture");
        }
    }
    dir
}

#[test]
fn committed_corpus_is_already_blessed_and_blessing_is_idempotent() {
    let dir = scratch_corpus("bless_idempotent");
    let first = bless_fixtures(&dir).expect("bless runs");
    assert!(first.len() >= 12, "corpus shrank: {} fixtures", first.len());
    let drifted: Vec<_> = first.iter().filter(|(_, changed)| *changed).collect();
    assert!(
        drifted.is_empty(),
        "committed .expected files drifted from the rule catalog — run \
         `cargo run -p dohmark-simlint -- --bless` and commit: {drifted:?}"
    );
    // Idempotency: a second bless over freshly blessed output rewrites
    // nothing and renders byte-identically.
    let before: Vec<(PathBuf, String)> = first
        .iter()
        .map(|(p, _)| (p.clone(), fs::read_to_string(p).expect("expected readable")))
        .collect();
    let second = bless_fixtures(&dir).expect("bless runs twice");
    assert!(second.iter().all(|(_, changed)| !changed), "second bless rewrote files");
    for (path, contents) in before {
        assert_eq!(
            fs::read_to_string(&path).expect("expected readable"),
            contents,
            "bless is not byte-idempotent for {}",
            path.display()
        );
    }
}

#[test]
fn bless_repairs_a_drifted_expected_file() {
    let dir = scratch_corpus("bless_repairs");
    let victim = dir.join("wake_outside_driver.expected");
    let good = fs::read_to_string(&victim).expect("victim readable");
    fs::write(&victim, "stale findings\n").expect("inject drift");
    let results = bless_fixtures(&dir).expect("bless runs");
    let repaired = results.iter().find(|(p, _)| *p == victim).expect("victim visited");
    assert!(repaired.1, "bless must report the drifted file as changed");
    assert_eq!(fs::read_to_string(&victim).expect("victim readable"), good);
    // Everything else was already blessed and must not be rewritten.
    assert_eq!(results.iter().filter(|(_, changed)| *changed).count(), 1);
}
