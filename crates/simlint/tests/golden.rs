//! Golden-corpus tests: every fixture under `tests/fixtures/` is linted
//! with [`dohmark_simlint::lint_source`] and the rendered findings are
//! compared byte-for-byte against the sibling `.expected` file.
//!
//! The corpus doubles as executable documentation of the rule catalog:
//! together the fixtures must exercise every rule plus the allow
//! machinery's own meta-findings (`unused-allow`, `allow-syntax`).
//!
//! To regenerate the expectations after an intentional rule change:
//! `cargo run -p dohmark-simlint -- --bless` (see `tests/bless.rs` for
//! the self-consistency guarantees).

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use dohmark_simlint::{lint_source, render};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_sources() -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(fixtures_dir())
        .expect("fixtures dir exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "rs"))
        .collect();
    out.sort();
    out
}

#[test]
fn every_fixture_matches_its_expected_findings() {
    let sources = fixture_sources();
    assert!(
        sources.len() >= 13,
        "golden corpus shrank: expected at least 13 fixtures, found {}",
        sources.len()
    );
    for path in sources {
        let source = fs::read_to_string(&path).expect("fixture readable");
        let rel = path.file_name().expect("file name").to_string_lossy();
        let got = render(&lint_source(&rel, &source));
        let expected_path = path.with_extension("expected");
        let expected = fs::read_to_string(&expected_path).unwrap_or_else(|_| {
            panic!("missing {} — regenerate with the simlint binary", expected_path.display())
        });
        assert_eq!(got, expected, "findings drifted for fixture {}", path.display());
    }
}

#[test]
fn every_fixture_produces_findings() {
    for path in fixture_sources() {
        let source = fs::read_to_string(&path).expect("fixture readable");
        let rel = path.file_name().expect("file name").to_string_lossy();
        let findings = lint_source(&rel, &source);
        assert!(
            !findings.is_empty(),
            "fixture {} yields no findings — it no longer guards anything \
             (and `--deny` would exit 0 on it)",
            path.display()
        );
    }
}

#[test]
fn corpus_covers_every_rule_and_the_allow_meta_findings() {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for path in fixture_sources() {
        let source = fs::read_to_string(&path).expect("fixture readable");
        let rel = path.file_name().expect("file name").to_string_lossy();
        for f in lint_source(&rel, &source) {
            seen.insert(f.rule.to_string());
        }
    }
    let mut required: BTreeSet<String> =
        dohmark_simlint::rules::RULES.iter().map(|r| r.name.to_string()).collect();
    required.insert("unused-allow".to_string());
    required.insert("allow-syntax".to_string());
    let missing: Vec<&String> = required.difference(&seen).collect();
    assert!(missing.is_empty(), "no fixture exercises: {missing:?} — add one per uncovered rule");
}

#[test]
fn corpus_findings_round_trip_through_the_json_format() {
    // The whole corpus through `--format json`'s renderer, parsed back
    // with the same in-tree JSON layer CI consumers would use: every
    // field of every finding must survive, in order.
    let mut all = Vec::new();
    for path in fixture_sources() {
        let source = fs::read_to_string(&path).expect("fixture readable");
        let rel = path.file_name().expect("file name").to_string_lossy();
        all.extend(lint_source(&rel, &source));
    }
    assert!(!all.is_empty());
    let doc = dohmark_dns_wire::jsontext::parse(&dohmark_simlint::render_json(&all))
        .expect("render_json emits valid jsontext");
    assert_eq!(doc.get("count").and_then(|v| v.as_u64()), Some(all.len() as u64));
    let rows = doc.get("findings").and_then(|v| v.as_array()).expect("findings array");
    assert_eq!(rows.len(), all.len());
    for (row, f) in rows.iter().zip(&all) {
        assert_eq!(row.get("file").and_then(|v| v.as_str()), Some(f.file.as_str()));
        assert_eq!(row.get("line").and_then(|v| v.as_u64()), Some(f.line as u64));
        assert_eq!(row.get("rule").and_then(|v| v.as_str()), Some(f.rule));
        assert_eq!(row.get("message").and_then(|v| v.as_str()), Some(f.message.as_str()));
        assert_eq!(row.get("item").and_then(|v| v.as_str()), Some(f.item.as_str()));
        assert!(!f.item.is_empty(), "every finding carries an item or module path: {f:?}");
    }
}
