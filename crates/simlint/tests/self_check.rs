//! The workspace lints itself: `cargo test -p dohmark-simlint` fails if
//! any checked-in source trips a rule, so determinism regressions are
//! caught even where CI's explicit `--deny` run is skipped.

use std::path::Path;

use dohmark_simlint::{lint_workspace, render};

#[test]
fn workspace_is_simlint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let findings = lint_workspace(&root).expect("workspace walk succeeds");
    assert!(
        findings.is_empty(),
        "workspace is not simlint-clean — fix or `simlint::allow` each:\n{}",
        render(&findings)
    );
}
