//@ path: crates/workload/src/fake_seeds.rs
//! Seed-discipline fixture: literal seeds and a misnamed stream
//! constant all flag; named `*_SEED`/`*_STREAM` constants, runtime
//! seeds and test code stay legal.

pub const BOOT_SEED: u64 = 0xD00D;
pub const LANE_STREAM: u64 = 2;
const LANE_COUNT: u64 = 7;

pub fn fresh() -> SimRng {
    SimRng::new(42)
}

pub fn shard(rng: &mut SimRng) -> SimRng {
    rng.split(0xBEEF)
}

pub fn misnamed(sim: &mut Sim) -> SimRng {
    sim.split_rng(LANE_COUNT)
}

pub fn legal(sim: &mut Sim, rng: &mut SimRng, seed: u64) -> (SimRng, SimRng, SimRng) {
    let _ = seed;
    (SimRng::new(BOOT_SEED), rng.split(LANE_STREAM), sim.split_rng(seed))
}

#[cfg(test)]
mod tests {
    #[test]
    fn literal_seeds_are_fine_in_tests() {
        let mut rng = SimRng::new(7);
        let _ = rng.split(1);
    }
}
