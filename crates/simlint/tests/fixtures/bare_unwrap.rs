//@ path: crates/httpsim/src/fixture_unwrap.rs
//! Golden fixture: `no-bare-unwrap-in-core` wants every `.unwrap()` in
//! netsim/doh/httpsim non-test code justified by a nearby comment (same
//! line or the line above) — or replaced by `.expect("…")`.

pub fn bare(input: &str) -> u64 {
    input.parse().unwrap()
}

pub fn documented_same_line(input: &str) -> u64 {
    input.parse().unwrap() // invariant: caller validated digits
}

pub fn documented_line_above(input: &str) -> u64 {
    // invariant: caller validated digits
    input.parse().unwrap()
}

pub fn expect_is_always_legal(input: &str) -> u64 {
    input.parse().expect("caller validated digits")
}

#[cfg(test)]
mod tests {
    pub fn tests_may_unwrap(input: &str) -> u64 {
        input.parse().unwrap()
    }
}
