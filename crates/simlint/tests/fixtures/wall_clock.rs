//@ path: crates/netsim/src/fixture_wall_clock.rs
//! Golden fixture: `no-wall-clock` fires on every wall-clock API in
//! simulator code — but never on mentions in comments or strings, and
//! unit-test code is *not* exempt (only `benches/` is).

use std::time::{Instant, SystemTime};

/// Doc prose may say Instant::now() freely.
pub fn timed() -> f64 {
    let started = Instant::now();
    let _epoch = SystemTime::now();
    // A comment may say SystemTime::now() freely too.
    let note = "Instant::now() inside a string literal is invisible";
    let _ = note;
    started.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    pub fn still_flagged_in_tests() {
        let _ = std::time::Instant::now();
    }
}
