//@ path: crates/doh/src/fake_endpoint.rs
//! A fixture endpoint that schedules its own wakes instead of routing
//! them through the `Driver` registry — both the direct call and the
//! call reaching it through an in-file helper must flag.

pub fn on_wake(sim: &mut Sim) {
    sim.schedule_app(5, 1);
    rearm_later(sim);
}

fn rearm_later(sim: &mut Sim) {
    sim.schedule_app_in(3, 1);
}
