//@ path: crates/workload/src/fixture_print.rs
//! Golden fixture: `no-print-in-lib` keeps stdout/stderr out of library
//! code; strings and unit tests don't count.

pub fn chatty(x: u64) {
    println!("x = {x}");
    eprintln!("warning: {x}");
    let template = "println!(\"not a real print\")";
    drop(template);
}

#[cfg(test)]
mod tests {
    pub fn tests_may_print() {
        println!("debugging a test is fine");
    }
}
