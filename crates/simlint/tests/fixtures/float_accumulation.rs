//@ path: crates/bench/src/stats.rs
//! Rogue float accumulation outside the blessed fixed-order helpers:
//! `mean` is blessed, `total` is not — its `+=` loop and `.fold()` both
//! flag.

pub fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

pub fn total(xs: &[f64]) -> f64 {
    let mut t = 0.0;
    for x in xs {
        t += x;
    }
    xs.iter().fold(t, |acc, x| acc + x)
}
