//@ path: crates/netsim/src/fixture_thread.rs
//! Golden fixture: `no-thread-outside-sweep` fires on `std::thread`
//! and atomics anywhere but `crates/bench/src/sweep.rs` and `benches/`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

pub fn spawn_workers(n: usize) {
    let counter = AtomicUsize::new(0);
    let handle = thread::spawn(move || counter.fetch_add(n, Ordering::SeqCst));
    drop(handle);
}

pub fn full_paths_are_caught_too() {
    let _ = std::thread::available_parallelism();
}
