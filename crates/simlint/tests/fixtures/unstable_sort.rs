//@ path: crates/workload/src/fake.rs
//! Keyed unstable sorts in a report-feeding crate: both `_by_key` and
//! `_by` forms flag (ties land in arbitrary order); the plain
//! `.sort_unstable()` on the whole element stays legal.

pub struct Rows;

impl Rows {
    pub fn order(v: &mut Vec<(u64, u32)>) {
        v.sort_unstable_by_key(|r| r.0);
        v.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        v.sort_unstable();
    }
}
