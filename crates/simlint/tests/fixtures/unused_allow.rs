//@ path: crates/doh/src/fixture_allows.rs
//! Golden fixture: the allow mechanism polices itself — an allow that
//! suppresses nothing, lacks a reason, or names an unknown rule is a
//! finding in its own right (and a reasonless allow suppresses nothing).

// simlint::allow(no-wall-clock): stale — the wall-clock call below was removed long ago
pub fn nothing_to_suppress() {}

pub fn reasonless_allow_does_not_suppress() {
    // simlint::allow(no-print-in-lib)
    println!("still flagged");
}

// simlint::allow(no-flux-capacitor): not a rule the catalog knows
pub fn unknown_rule() {}
