//@ path: crates/netsim/src/fixture_suppressed.rs
//! Golden fixture: a well-formed `simlint::allow` (rule + reason) on
//! the finding's line or the line above suppresses it and counts as
//! used. One unsuppressed finding remains so `--deny` still exits 1.

pub fn calibrated() -> std::time::Instant {
    // simlint::allow(no-wall-clock): fixture — pretend this calibrates the sim clock against the host
    std::time::Instant::now()
}

pub fn same_line_allow() -> std::time::SystemTime {
    std::time::SystemTime::now() // simlint::allow(no-wall-clock): fixture — same-line allows work too
}

pub fn not_suppressed() {
    println!("this one still fires");
}
