//@ path: crates/bench/src/fixture_broadcast.rs
//! Golden fixture: `no-deprecated-broadcast` quarantines the deprecated
//! broadcast shims. The `_impl` helpers are different tokens and legal.

pub fn drives_by_broadcast(sim: &mut Sim, client: &mut C, server: &mut S, name: &Name) {
    let _ = resolve_with(sim, client, server, name, 1);
    let _ = resolve_with_extras(sim, client, server, &mut [], name, 2);
    drain_endpoints(sim, &mut [client, server]);
    advance_endpoints_until(sim, &mut [client, server], at);
}

pub fn impl_helpers_are_different_tokens(sim: &mut Sim) {
    drain_endpoints_impl(sim, &mut []);
    resolve_with_extras_impl(sim);
}
