//@ path: crates/doh/src/fake_shims.rs
//! Deprecated shims and their expiry markers: a missing `remove-by`
//! flags at the item, a malformed one flags at the marker, and a
//! well-formed `remove-by: PR <n>` passes.

/// Old entry point with no expiry marker at all.
#[deprecated(note = "use the new one")]
pub fn old_no_marker() {}

/// Old entry point. remove-by: next release
#[deprecated(note = "use the new one")]
pub fn old_malformed() {}

/// Old entry point. remove-by: PR 12
#[deprecated(note = "use the new one")]
pub fn old_ok() {}
