//@ path: crates/doh/src/fixture_unordered.rs
//! Golden fixture: `no-unordered-iteration` fires on order-observing
//! uses of a `HashMap`/`HashSet` binding — keyed lookup stays legal,
//! `BTreeMap` traversal stays legal, and unit tests are exempt.

use std::collections::{BTreeMap, HashMap, HashSet};

pub struct Registry {
    conns: HashMap<u64, String>,
    ordered: BTreeMap<u64, String>,
}

impl Registry {
    pub fn keyed_lookup_is_legal(&self, id: u64) -> Option<&String> {
        self.conns.get(&id)
    }

    pub fn values_observe_random_order(&self) -> usize {
        self.conns.values().map(|s| s.len()).sum()
    }

    pub fn for_loops_observe_random_order(&self) {
        for (id, name) in &self.conns {
            drop((id, name));
        }
    }

    pub fn draining_observes_random_order(&mut self) {
        let _: Vec<(u64, String)> = self.conns.drain().collect();
    }

    pub fn btreemap_traversal_is_legal(&self) -> Vec<u64> {
        self.ordered.keys().copied().collect()
    }
}

pub fn local_sets_are_tracked_too(items: &[u64]) -> usize {
    let seen: HashSet<u64> = items.iter().copied().collect();
    let first = seen.iter().next();
    drop(first);
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    pub fn test_code_may_iterate_freely() {
        let seen: HashSet<u64> = [1, 2, 3].into_iter().collect();
        for x in seen.iter() {
            drop(x);
        }
    }
}
