//! Workload models (under construction).
//!
//! # Planned design
//!
//! Query workload generation for the experiments: Poisson query arrivals
//! (the paper's §3 controlled experiment), Zipf-ish name popularity over an
//! Alexa-like site list, constant-length random query names for uniform
//! compressibility, and per-site domain fan-out for the page-load model.
//! All randomness flows from the simulator's seeded `SimRng` so whole
//! experiment suites replay bit-for-bit.

#![forbid(unsafe_code)]
