//! Query workload generation for the cost experiments.
//!
//! Two generators, both fed exclusively by the simulator's seeded
//! [`SimRng`] (obtain independent streams with
//! [`Sim::split_rng`](dohmark_netsim::Sim::split_rng) or
//! [`SimRng::split`]), so whole experiment suites replay bit-for-bit:
//!
//! * [`PoissonArrivals`] — exponentially distributed inter-arrival gaps,
//!   the paper's §3 controlled query process.
//! * [`NameGen`] — constant-length random query names under a fixed zone
//!   (e.g. `k7f2q9xw.dohmark.test.`). The paper uses constant-length
//!   random prefixes so every query has identical wire size and
//!   compressibility, making per-resolution byte counts directly
//!   comparable.
//!
//! # Example
//!
//! ```
//! use dohmark_dns_wire::Name;
//! use dohmark_netsim::{SimDuration, SimRng};
//! use dohmark_workload::{NameGen, PoissonArrivals};
//!
//! let mut rng = SimRng::new(42);
//! let mut arrivals = PoissonArrivals::new(rng.split(1), SimDuration::from_millis(50));
//! let mut names = NameGen::new(rng.split(2), 8, &Name::parse("dohmark.test").unwrap());
//! let gap = arrivals.next_gap();
//! let name = names.next_name();
//! assert_eq!(name.labels()[0].len(), 8);
//! assert!(gap.as_nanos() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use dohmark_dns_wire::Name;
use dohmark_netsim::{SimDuration, SimRng, SimTime};

/// A Poisson query-arrival process: i.i.d. exponential inter-arrival gaps
/// with a configurable mean.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rng: SimRng,
    mean: SimDuration,
}

impl PoissonArrivals {
    /// A process with the given mean inter-arrival gap, driven by `rng`
    /// (pass a [`SimRng::split`] stream so arrivals never perturb other
    /// randomness).
    pub fn new(rng: SimRng, mean: SimDuration) -> PoissonArrivals {
        PoissonArrivals { rng, mean }
    }

    /// The configured mean gap.
    pub fn mean(&self) -> SimDuration {
        self.mean
    }

    /// The next inter-arrival gap.
    pub fn next_gap(&mut self) -> SimDuration {
        self.rng.exp_duration(self.mean)
    }
}

/// Generates query names with a constant-length random first label under a
/// fixed zone, so every query encodes to exactly the same wire length.
#[derive(Debug, Clone)]
pub struct NameGen {
    rng: SimRng,
    label_len: usize,
    zone: Name,
}

impl NameGen {
    /// Names of the form `<random label_len chars>.<zone>`.
    pub fn new(rng: SimRng, label_len: usize, zone: &Name) -> NameGen {
        NameGen { rng, label_len, zone: zone.clone() }
    }

    /// The wire length every generated name encodes to (uncompressed).
    pub fn wire_len(&self) -> usize {
        self.zone.wire_len() + 1 + self.label_len
    }

    /// The next random query name.
    pub fn next_name(&mut self) -> Name {
        let label = self.rng.alnum_string(self.label_len);
        self.zone.child(&label).expect("alnum label under a valid zone is valid")
    }
}

/// A complete query workload: Poisson arrival times paired with random
/// names, the `(when, what)` stream every transport-matrix experiment
/// replays identically across its cells.
///
/// ```
/// use dohmark_dns_wire::Name;
/// use dohmark_netsim::{SimDuration, SimRng};
/// use dohmark_workload::QuerySchedule;
///
/// let mut rng = SimRng::new(42);
/// let zone = Name::parse("dohmark.test").unwrap();
/// let mut schedule = QuerySchedule::new(&mut rng, SimDuration::from_millis(50), 8, &zone);
/// let (at, name) = schedule.next().unwrap();
/// assert!(at.as_nanos() > 0);
/// assert!(name.is_subdomain_of(&zone));
/// ```
#[derive(Debug, Clone)]
pub struct QuerySchedule {
    arrivals: PoissonArrivals,
    names: NameGen,
    at: SimTime,
}

impl QuerySchedule {
    /// Split-stream labels used for arrivals and names, so a schedule
    /// built from a simulator's root RNG never perturbs other randomness.
    pub const ARRIVALS_STREAM: u64 = 1;
    /// See [`QuerySchedule::ARRIVALS_STREAM`].
    pub const NAMES_STREAM: u64 = 2;

    /// A schedule drawing both streams from `rng` (labels
    /// [`QuerySchedule::ARRIVALS_STREAM`] / [`QuerySchedule::NAMES_STREAM`]):
    /// exponential gaps with mean `mean_gap`, names
    /// `<label_len random chars>.<zone>`.
    pub fn new(
        rng: &mut SimRng,
        mean_gap: SimDuration,
        label_len: usize,
        zone: &Name,
    ) -> QuerySchedule {
        QuerySchedule {
            arrivals: PoissonArrivals::new(rng.split(QuerySchedule::ARRIVALS_STREAM), mean_gap),
            names: NameGen::new(rng.split(QuerySchedule::NAMES_STREAM), label_len, zone),
            at: SimTime::ZERO,
        }
    }

    /// The wire length every scheduled name encodes to.
    pub fn name_wire_len(&self) -> usize {
        self.names.wire_len()
    }
}

impl Iterator for QuerySchedule {
    type Item = (SimTime, Name);

    /// The next query: its absolute arrival time and name. Never `None` —
    /// callers `take(n)` what they need.
    fn next(&mut self) -> Option<(SimTime, Name)> {
        self.at += self.arrivals.next_gap();
        Some((self.at, self.names.next_name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zone() -> Name {
        Name::parse("dohmark.test").unwrap()
    }

    #[test]
    fn arrivals_have_roughly_the_configured_mean() {
        let mut arrivals = PoissonArrivals::new(SimRng::new(1), SimDuration::from_millis(50));
        let n = 20_000u64;
        let total: u64 = (0..n).map(|_| arrivals.next_gap().as_nanos()).sum();
        let mean = total / n;
        let target = SimDuration::from_millis(50).as_nanos();
        assert!(
            (mean as i64 - target as i64).unsigned_abs() < target / 20,
            "mean {mean} vs target {target}"
        );
    }

    #[test]
    fn arrival_streams_replay_bit_for_bit() {
        let gaps = |seed: u64| {
            let mut a = PoissonArrivals::new(SimRng::new(seed), SimDuration::from_millis(10));
            (0..100).map(|_| a.next_gap()).collect::<Vec<_>>()
        };
        assert_eq!(gaps(7), gaps(7));
        assert_ne!(gaps(7), gaps(8));
    }

    #[test]
    fn names_have_constant_wire_length() {
        let mut names = NameGen::new(SimRng::new(3), 8, &zone());
        let expected = names.wire_len();
        for _ in 0..50 {
            let n = names.next_name();
            assert_eq!(n.wire_len(), expected);
            assert_eq!(n.labels()[0].len(), 8);
            assert!(n.is_subdomain_of(&zone()));
        }
    }

    #[test]
    fn name_streams_replay_bit_for_bit() {
        let names = |seed: u64| {
            let mut g = NameGen::new(SimRng::new(seed), 10, &zone());
            (0..20).map(|_| g.next_name().to_string()).collect::<Vec<_>>()
        };
        assert_eq!(names(5), names(5));
        assert_ne!(names(5), names(6));
    }

    #[test]
    fn schedule_is_monotone_and_replays_bit_for_bit() {
        let take = |seed: u64| {
            let mut rng = SimRng::new(seed);
            QuerySchedule::new(&mut rng, SimDuration::from_millis(50), 8, &zone())
                .take(50)
                .collect::<Vec<_>>()
        };
        let a = take(3);
        assert_eq!(a, take(3));
        assert_ne!(a, take(4));
        for pair in a.windows(2) {
            assert!(pair[0].0 < pair[1].0, "arrival times must increase");
        }
    }

    #[test]
    fn schedule_matches_its_component_generators() {
        // QuerySchedule must be a drop-in for the hand-rolled
        // arrivals+names pairing the examples used before it existed.
        let mut rng1 = SimRng::new(11);
        let schedule = QuerySchedule::new(&mut rng1, SimDuration::from_millis(10), 8, &zone());
        let mut rng2 = SimRng::new(11);
        let mut arrivals = PoissonArrivals::new(rng2.split(1), SimDuration::from_millis(10));
        let mut names = NameGen::new(rng2.split(2), 8, &zone());
        let mut at = dohmark_netsim::SimTime::ZERO;
        for (got_at, got_name) in schedule.take(20) {
            at += arrivals.next_gap();
            assert_eq!(got_at, at);
            assert_eq!(got_name, names.next_name());
        }
    }

    #[test]
    fn split_streams_are_independent() {
        // Consuming arrivals must not change the names drawn, because both
        // come from independent split streams of one parent.
        let mut parent1 = SimRng::new(9);
        let _unused_arrivals_stream = parent1.split(1);
        let mut names1 = NameGen::new(parent1.split(2), 8, &zone());
        let mut parent2 = SimRng::new(9);
        let mut arrivals = PoissonArrivals::new(parent2.split(1), SimDuration::from_millis(1));
        for _ in 0..100 {
            arrivals.next_gap();
        }
        let mut names2 = NameGen::new(parent2.split(2), 8, &zone());
        for _ in 0..10 {
            assert_eq!(names1.next_name(), names2.next_name());
        }
    }
}
