//! Workload models (under construction).
