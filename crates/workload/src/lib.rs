//! Query workload generation for the cost experiments.
//!
//! Two generators, both fed exclusively by the simulator's seeded
//! [`SimRng`] (obtain independent streams with
//! [`Sim::split_rng`](dohmark_netsim::Sim::split_rng) or
//! [`SimRng::split`]), so whole experiment suites replay bit-for-bit:
//!
//! * [`PoissonArrivals`] — exponentially distributed inter-arrival gaps,
//!   the paper's §3 controlled query process.
//! * [`NameGen`] — constant-length random query names under a fixed zone
//!   (e.g. `k7f2q9xw.dohmark.test.`). The paper uses constant-length
//!   random prefixes so every query has identical wire size and
//!   compressibility, making per-resolution byte counts directly
//!   comparable.
//!
//! # Example
//!
//! ```
//! use dohmark_dns_wire::Name;
//! use dohmark_netsim::{SimDuration, SimRng};
//! use dohmark_workload::{NameGen, PoissonArrivals};
//!
//! let mut rng = SimRng::new(42);
//! let mut arrivals = PoissonArrivals::new(rng.split(1), SimDuration::from_millis(50));
//! let mut names = NameGen::new(rng.split(2), 8, &Name::parse("dohmark.test").unwrap());
//! let gap = arrivals.next_gap();
//! let name = names.next_name();
//! assert_eq!(name.labels()[0].len(), 8);
//! assert!(gap.as_nanos() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use dohmark_dns_wire::Name;
use dohmark_netsim::{SimDuration, SimRng, SimTime};

/// A Poisson query-arrival process: i.i.d. exponential inter-arrival gaps
/// with a configurable mean.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rng: SimRng,
    mean: SimDuration,
}

impl PoissonArrivals {
    /// A process with the given mean inter-arrival gap, driven by `rng`
    /// (pass a [`SimRng::split`] stream so arrivals never perturb other
    /// randomness).
    pub fn new(rng: SimRng, mean: SimDuration) -> PoissonArrivals {
        PoissonArrivals { rng, mean }
    }

    /// The configured mean gap.
    pub fn mean(&self) -> SimDuration {
        self.mean
    }

    /// The next inter-arrival gap.
    pub fn next_gap(&mut self) -> SimDuration {
        self.rng.exp_duration(self.mean)
    }
}

/// Generates query names with a constant-length random first label under a
/// fixed zone, so every query encodes to exactly the same wire length.
#[derive(Debug, Clone)]
pub struct NameGen {
    rng: SimRng,
    label_len: usize,
    zone: Name,
}

impl NameGen {
    /// Names of the form `<random label_len chars>.<zone>`.
    pub fn new(rng: SimRng, label_len: usize, zone: &Name) -> NameGen {
        NameGen { rng, label_len, zone: zone.clone() }
    }

    /// The wire length every generated name encodes to (uncompressed).
    pub fn wire_len(&self) -> usize {
        self.zone.wire_len() + 1 + self.label_len
    }

    /// The next random query name.
    pub fn next_name(&mut self) -> Name {
        let label = self.rng.alnum_string(self.label_len);
        self.zone.child(&label).expect("alnum label under a valid zone is valid")
    }
}

/// A complete query workload: Poisson arrival times paired with random
/// names, the `(when, what)` stream every transport-matrix experiment
/// replays identically across its cells.
///
/// ```
/// use dohmark_dns_wire::Name;
/// use dohmark_netsim::{SimDuration, SimRng};
/// use dohmark_workload::QuerySchedule;
///
/// let mut rng = SimRng::new(42);
/// let zone = Name::parse("dohmark.test").unwrap();
/// let mut schedule = QuerySchedule::new(&mut rng, SimDuration::from_millis(50), 8, &zone);
/// let (at, name) = schedule.next().unwrap();
/// assert!(at.as_nanos() > 0);
/// assert!(name.is_subdomain_of(&zone));
/// ```
#[derive(Debug, Clone)]
pub struct QuerySchedule {
    arrivals: PoissonArrivals,
    names: NameGen,
    at: SimTime,
}

impl QuerySchedule {
    /// Split-stream labels used for arrivals and names, so a schedule
    /// built from a simulator's root RNG never perturbs other randomness.
    pub const ARRIVALS_STREAM: u64 = 1;
    /// See [`QuerySchedule::ARRIVALS_STREAM`].
    pub const NAMES_STREAM: u64 = 2;

    /// A schedule drawing both streams from `rng` (labels
    /// [`QuerySchedule::ARRIVALS_STREAM`] / [`QuerySchedule::NAMES_STREAM`]):
    /// exponential gaps with mean `mean_gap`, names
    /// `<label_len random chars>.<zone>`.
    pub fn new(
        rng: &mut SimRng,
        mean_gap: SimDuration,
        label_len: usize,
        zone: &Name,
    ) -> QuerySchedule {
        QuerySchedule {
            arrivals: PoissonArrivals::new(rng.split(QuerySchedule::ARRIVALS_STREAM), mean_gap),
            names: NameGen::new(rng.split(QuerySchedule::NAMES_STREAM), label_len, zone),
            at: SimTime::ZERO,
        }
    }

    /// The wire length every scheduled name encodes to.
    pub fn name_wire_len(&self) -> usize {
        self.names.wire_len()
    }
}

impl Iterator for QuerySchedule {
    type Item = (SimTime, Name);

    /// The next query: its absolute arrival time and name. Never `None` —
    /// callers `take(n)` what they need.
    fn next(&mut self) -> Option<(SimTime, Name)> {
        self.at += self.arrivals.next_gap();
        Some((self.at, self.names.next_name()))
    }
}

/// Zipf-distributed name popularity over a fixed, shared name universe —
/// the workload shape that makes a shared resolver cache pay off.
///
/// The universe is the deterministic set `w0000000.<zone>` …
/// `w<N-1>.<zone>` (constant-width labels, so — like [`NameGen`] — every
/// query encodes to exactly the same wire length). Rank `r` (0-based) is
/// drawn with probability proportional to `1 / (r + 1)^s`; smaller
/// universes and larger exponents concentrate queries on few names and
/// drive the cache-hit ratio up, which is exactly the knob the
/// `fig_cache_hit_cost` experiment sweeps.
#[derive(Debug, Clone)]
pub struct ZipfNames {
    rng: SimRng,
    zone: Name,
    /// Normalised cumulative weights; `cdf[r]` = P(rank ≤ r).
    cdf: Vec<f64>,
}

impl ZipfNames {
    /// Width of the digit part of every label (`w` + 7 digits = 8 chars,
    /// matching the experiments' 8-char [`NameGen`] labels).
    const DIGITS: usize = 7;

    /// A sampler over `universe` names under `zone` with Zipf exponent
    /// `exponent` (1.0 is the classic web/DNS value). `universe` is capped
    /// to the `10^7` names the label width can express.
    pub fn new(rng: SimRng, zone: &Name, universe: usize, exponent: f64) -> ZipfNames {
        let universe = universe.clamp(1, 10usize.pow(ZipfNames::DIGITS as u32));
        ZipfNames { rng, zone: zone.clone(), cdf: zipf_cdf(universe, exponent) }
    }

    /// The number of distinct names in the universe.
    pub fn universe(&self) -> usize {
        self.cdf.len()
    }

    /// The `rank`-th (0-based, most popular first) name of the universe.
    pub fn name_for(&self, rank: usize) -> Name {
        let label = format!("w{rank:0width$}", width = ZipfNames::DIGITS);
        self.zone.child(&label).expect("fixed-width label under a valid zone is valid")
    }

    /// The wire length every sampled name encodes to (uncompressed).
    pub fn wire_len(&self) -> usize {
        self.zone.wire_len() + 2 + ZipfNames::DIGITS
    }

    /// Samples the next name.
    pub fn next_name(&mut self) -> Name {
        let u = self.rng.next_f64();
        self.name_for(zipf_sample(&self.cdf, u))
    }
}

/// Normalised cumulative Zipf weights over `universe` ranks:
/// `cdf[r] = P(rank ≤ r)` with rank `r` weighted `1 / (r + 1)^exponent`.
fn zipf_cdf(universe: usize, exponent: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(universe);
    let mut total = 0.0;
    for rank in 0..universe {
        total += 1.0 / ((rank + 1) as f64).powf(exponent);
        cdf.push(total);
    }
    for c in &mut cdf {
        *c /= total;
    }
    cdf
}

/// Inverts a [`zipf_cdf`] at the uniform draw `u`.
fn zipf_sample(cdf: &[f64], u: f64) -> usize {
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

/// A multi-client workload: every stub client gets its own Poisson arrival
/// process while all of them draw names from **one** shared Zipf universe
/// — so what client A resolved a moment ago is disproportionately likely
/// to be what client B asks next, and a resolver cache shared across the
/// fleet pays off.
#[derive(Debug, Clone)]
pub struct FleetSchedule {
    /// The merged query stream: `(arrival time, client index, name)`,
    /// sorted by time (ties broken by client index).
    pub queries: Vec<(SimTime, usize, Name)>,
    /// The fleet size the schedule was generated for.
    pub clients: usize,
}

impl FleetSchedule {
    /// Split-stream label for the per-client arrival processes (client
    /// `i` uses sub-stream `i`).
    pub const ARRIVALS_STREAM: u64 = 3;
    /// Split-stream label for the shared Zipf name draw.
    pub const ZIPF_STREAM: u64 = 4;

    /// Generates the full schedule: `clients` Poisson processes with mean
    /// gap `mean_gap` and `queries_per_client` queries each, names drawn
    /// in global arrival order from a shared [`ZipfNames`] universe of
    /// `universe` names under `zone` with the given `exponent`.
    ///
    /// Deterministic in `rng`: the per-client arrival streams and the name
    /// stream are independent splits, so the same seed replays the same
    /// schedule bit for bit regardless of how the caller consumed `rng`
    /// elsewhere.
    #[allow(clippy::too_many_arguments)]
    pub fn generate(
        rng: &mut SimRng,
        clients: usize,
        mean_gap: SimDuration,
        queries_per_client: usize,
        zone: &Name,
        universe: usize,
        exponent: f64,
    ) -> FleetSchedule {
        let mut arrivals_parent = rng.split(FleetSchedule::ARRIVALS_STREAM);
        let mut queries = Vec::with_capacity(clients * queries_per_client);
        for client in 0..clients {
            let mut arrivals = PoissonArrivals::new(arrivals_parent.split(client as u64), mean_gap);
            let mut at = SimTime::ZERO;
            for _ in 0..queries_per_client {
                at += arrivals.next_gap();
                queries.push((at, client));
            }
        }
        // Deterministic global time order; client index breaks exact
        // ties, so the key is the whole element and tied entries are
        // identical tuples — instability cannot reorder observable bytes.
        // simlint::allow(stable-sort-for-reports): key is the whole element
        queries.sort_unstable_by_key(|&(at, client)| (at, client));
        // Names are drawn in arrival order from the one shared universe:
        // popularity is a property of the *workload*, not of any client.
        let mut names =
            ZipfNames::new(rng.split(FleetSchedule::ZIPF_STREAM), zone, universe, exponent);
        let queries =
            queries.into_iter().map(|(at, client)| (at, client, names.next_name())).collect();
        FleetSchedule { queries, clients }
    }

    /// Total query count.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The number of distinct names actually queried — the lower bound on
    /// compulsory cache misses.
    pub fn distinct_names(&self) -> usize {
        let mut names: Vec<&Name> = self.queries.iter().map(|(_, _, n)| n).collect();
        // A stable sort: distinct `Name`s can render to the same string
        // key, and `dedup` only folds *adjacent* equals — tie order must
        // not depend on the sort algorithm.
        names.sort_by_key(|n| n.to_string());
        names.dedup();
        names.len()
    }
}

/// One resource of a page's dependency tree: a fetch on one of the
/// page's domains, startable only once its parent resource finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resource {
    /// Index into [`PageSpec::domains`] — the domain the fetch needs a
    /// DNS answer for.
    pub domain: usize,
    /// Index of the resource that references this one (`None` only for
    /// the root document, resource 0). Always an *earlier* index, so the
    /// resource list is a topological order of the tree.
    pub parent: Option<usize>,
    /// Response body size of the fetch.
    pub bytes: u32,
}

/// One page load: the domains it touches and the dependency tree of
/// resources spread over them. A browser with a per-page DNS cache
/// issues exactly one resolution per entry of `domains` — the paper's
/// Figure 1 "DNS queries per page" quantity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageSpec {
    /// Popularity rank of the site this page belongs to (0 = most
    /// popular). The page shape is a deterministic function of the rank.
    pub site_rank: usize,
    /// Distinct domains the page's resources fan out over; index 0 is
    /// the primary domain serving the root document.
    pub domains: Vec<Name>,
    /// The dependency tree in topological (discovery) order; resource 0
    /// is the root document on domain 0.
    pub resources: Vec<Resource>,
}

impl PageSpec {
    /// DNS resolutions a per-page-cached browser issues: one per domain.
    pub fn dns_queries(&self) -> usize {
        self.domains.len()
    }

    /// Depth of the dependency tree (the root document is depth 0).
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.resources.len()];
        for (i, r) in self.resources.iter().enumerate() {
            if let Some(p) = r.parent {
                depth[i] = depth[p] + 1;
            }
        }
        depth.into_iter().max().unwrap_or(0)
    }

    /// Total bytes of all resource bodies.
    pub fn total_bytes(&self) -> u64 {
        self.resources.iter().map(|r| u64::from(r.bytes)).sum()
    }
}

/// An Alexa-like site universe: Zipf-distributed site popularity, and a
/// deterministic per-site page shape — how many domains the page fans
/// out over, how many resources each serves, and how those resources
/// depend on each other.
///
/// Popularity and shape draw from independent [`SimRng::split`] streams
/// of the constructor's rng, and each site's shape derives from its
/// *rank* alone — so `page_for(rank)` replays bit for bit no matter how
/// many pages were sampled before it, and two experiment cells visiting
/// the same site load the identical page.
///
/// The shape distributions target the paper's Figure 1: most pages touch
/// a handful of domains, the tail stretches to dozens (mean ≈ 8 with the
/// defaults), and each domain serves a few resources of
/// lognormal-distributed size.
#[derive(Debug, Clone)]
pub struct SiteModel {
    zone: Name,
    /// Normalised cumulative Zipf weights over site ranks.
    cdf: Vec<f64>,
    /// Which site each [`SiteModel::next_page`] visits.
    rank_rng: SimRng,
    /// Parent stream of the per-rank shape streams.
    shape_base: SimRng,
    /// Mean of the exponential extra-domain count (domains = 1 + extra).
    mean_extra_domains: f64,
    /// Mean of the exponential extra-resource count per domain.
    mean_extra_resources: f64,
    /// Lognormal (mu, sigma) of per-resource body bytes.
    bytes_mu: f64,
    bytes_sigma: f64,
}

impl SiteModel {
    /// Split-stream label for the site-popularity draw.
    pub const RANK_STREAM: u64 = 5;
    /// Split-stream label the per-rank page shapes derive from.
    pub const SHAPE_STREAM: u64 = 6;

    /// Hard cap on domains per page — bounds the DNS fan-out (and the
    /// transaction-id budget a harness must reserve per page).
    pub const MAX_DOMAINS: usize = 64;
    /// Hard cap on resources per domain.
    const MAX_RESOURCES_PER_DOMAIN: usize = 12;
    /// Hard cap on dependency depth; deeper picks re-parent to the root.
    const MAX_DEPTH: usize = 5;
    /// Body-size clamp, in bytes.
    const BYTES_RANGE: (f64, f64) = (200.0, 2_000_000.0);

    /// A model of `sites` sites under `zone` with Zipf popularity
    /// exponent `exponent` and the default Figure-1-like shape
    /// distributions. Draws two independent streams
    /// ([`SiteModel::RANK_STREAM`], [`SiteModel::SHAPE_STREAM`]) from
    /// `rng`.
    pub fn new(rng: &mut SimRng, zone: &Name, sites: usize, exponent: f64) -> SiteModel {
        let sites = sites.clamp(1, 1_000_000);
        SiteModel {
            zone: zone.clone(),
            cdf: zipf_cdf(sites, exponent),
            rank_rng: rng.split(SiteModel::RANK_STREAM),
            shape_base: rng.split(SiteModel::SHAPE_STREAM),
            mean_extra_domains: 7.0,
            mean_extra_resources: 2.0,
            bytes_mu: 9.5,
            bytes_sigma: 1.0,
        }
    }

    /// The number of sites in the universe.
    pub fn sites(&self) -> usize {
        self.cdf.len()
    }

    /// The page of the `rank`-th most popular site — a pure function of
    /// the model seed and `rank`.
    pub fn page_for(&self, rank: usize) -> PageSpec {
        let rank = rank.min(self.cdf.len() - 1);
        let mut rng = self.shape_base.clone().split(rank as u64);
        let extra_domains =
            (rng.exp_f64(self.mean_extra_domains) as usize).min(SiteModel::MAX_DOMAINS - 1);
        let n_domains = 1 + extra_domains;
        let site = self
            .zone
            .child(&format!("s{rank}"))
            .expect("short numeric label under a valid zone is valid");
        let domains: Vec<Name> = (0..n_domains)
            .map(|d| {
                if d == 0 {
                    site.clone()
                } else {
                    site.child(&format!("d{d}")).expect("short numeric label is valid")
                }
            })
            .collect();

        let mut resources =
            vec![Resource { domain: 0, parent: None, bytes: self.draw_bytes(&mut rng) }];
        let mut depth = vec![0usize];
        for domain in 0..n_domains {
            let extra = (rng.exp_f64(self.mean_extra_resources) as usize)
                .min(SiteModel::MAX_RESOURCES_PER_DOMAIN - 1);
            // Domain 0 already serves the root document; every other
            // domain serves at least one resource (that's what makes it
            // part of the page).
            let count = if domain == 0 { extra } else { 1 + extra };
            for _ in 0..count {
                let pick = rng.below(resources.len() as u64) as usize;
                let parent = if depth[pick] >= SiteModel::MAX_DEPTH { 0 } else { pick };
                depth.push(depth[parent] + 1);
                resources.push(Resource {
                    domain,
                    parent: Some(parent),
                    bytes: self.draw_bytes(&mut rng),
                });
            }
        }
        PageSpec { site_rank: rank, domains, resources }
    }

    /// Samples the next page visit: a Zipf draw over site ranks, then
    /// that site's deterministic page.
    pub fn next_page(&mut self) -> PageSpec {
        let u = self.rank_rng.next_f64();
        self.page_for(zipf_sample(&self.cdf, u))
    }

    fn draw_bytes(&self, rng: &mut SimRng) -> u32 {
        let (lo, hi) = SiteModel::BYTES_RANGE;
        rng.lognormal(self.bytes_mu, self.bytes_sigma).clamp(lo, hi) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zone() -> Name {
        Name::parse("dohmark.test").unwrap()
    }

    #[test]
    fn arrivals_have_roughly_the_configured_mean() {
        let mut arrivals = PoissonArrivals::new(SimRng::new(1), SimDuration::from_millis(50));
        let n = 20_000u64;
        let total: u64 = (0..n).map(|_| arrivals.next_gap().as_nanos()).sum();
        let mean = total / n;
        let target = SimDuration::from_millis(50).as_nanos();
        assert!(
            (mean as i64 - target as i64).unsigned_abs() < target / 20,
            "mean {mean} vs target {target}"
        );
    }

    #[test]
    fn arrival_streams_replay_bit_for_bit() {
        let gaps = |seed: u64| {
            let mut a = PoissonArrivals::new(SimRng::new(seed), SimDuration::from_millis(10));
            (0..100).map(|_| a.next_gap()).collect::<Vec<_>>()
        };
        assert_eq!(gaps(7), gaps(7));
        assert_ne!(gaps(7), gaps(8));
    }

    #[test]
    fn names_have_constant_wire_length() {
        let mut names = NameGen::new(SimRng::new(3), 8, &zone());
        let expected = names.wire_len();
        for _ in 0..50 {
            let n = names.next_name();
            assert_eq!(n.wire_len(), expected);
            assert_eq!(n.labels()[0].len(), 8);
            assert!(n.is_subdomain_of(&zone()));
        }
    }

    #[test]
    fn name_streams_replay_bit_for_bit() {
        let names = |seed: u64| {
            let mut g = NameGen::new(SimRng::new(seed), 10, &zone());
            (0..20).map(|_| g.next_name().to_string()).collect::<Vec<_>>()
        };
        assert_eq!(names(5), names(5));
        assert_ne!(names(5), names(6));
    }

    #[test]
    fn schedule_is_monotone_and_replays_bit_for_bit() {
        let take = |seed: u64| {
            let mut rng = SimRng::new(seed);
            QuerySchedule::new(&mut rng, SimDuration::from_millis(50), 8, &zone())
                .take(50)
                .collect::<Vec<_>>()
        };
        let a = take(3);
        assert_eq!(a, take(3));
        assert_ne!(a, take(4));
        for pair in a.windows(2) {
            assert!(pair[0].0 < pair[1].0, "arrival times must increase");
        }
    }

    #[test]
    fn schedule_matches_its_component_generators() {
        // QuerySchedule must be a drop-in for the hand-rolled
        // arrivals+names pairing the examples used before it existed.
        let mut rng1 = SimRng::new(11);
        let schedule = QuerySchedule::new(&mut rng1, SimDuration::from_millis(10), 8, &zone());
        let mut rng2 = SimRng::new(11);
        let mut arrivals = PoissonArrivals::new(rng2.split(1), SimDuration::from_millis(10));
        let mut names = NameGen::new(rng2.split(2), 8, &zone());
        let mut at = dohmark_netsim::SimTime::ZERO;
        for (got_at, got_name) in schedule.take(20) {
            at += arrivals.next_gap();
            assert_eq!(got_at, at);
            assert_eq!(got_name, names.next_name());
        }
    }

    #[test]
    fn zipf_names_are_skewed_constant_width_and_deterministic() {
        let draw = |seed: u64| {
            let mut z = ZipfNames::new(SimRng::new(seed), &zone(), 100, 1.0);
            (0..2000).map(|_| z.next_name().to_string()).collect::<Vec<_>>()
        };
        let a = draw(5);
        assert_eq!(a, draw(5), "same seed, same stream");
        assert_ne!(a, draw(6));
        let z = ZipfNames::new(SimRng::new(5), &zone(), 100, 1.0);
        let top = a.iter().filter(|n| **n == z.name_for(0).to_string()).count();
        let mid = a.iter().filter(|n| **n == z.name_for(49).to_string()).count();
        assert!(top > 5 * mid.max(1), "rank 0 ({top}) must dwarf rank 49 ({mid})");
        for n in a.iter().take(50) {
            assert_eq!(Name::parse(n).unwrap().wire_len(), z.wire_len());
        }
    }

    #[test]
    fn zipf_universe_bounds_the_name_set() {
        let mut z = ZipfNames::new(SimRng::new(1), &zone(), 5, 1.0);
        let mut seen: Vec<String> = (0..500).map(|_| z.next_name().to_string()).collect();
        seen.sort();
        seen.dedup();
        assert!(seen.len() <= 5);
        assert_eq!(seen.len(), 5, "500 draws over 5 names should hit all of them");
    }

    #[test]
    fn fleet_schedule_is_sorted_deterministic_and_shares_the_universe() {
        let gen = |seed: u64| {
            let mut rng = SimRng::new(seed);
            FleetSchedule::generate(&mut rng, 50, SimDuration::from_millis(20), 4, &zone(), 30, 1.0)
        };
        let a = gen(9);
        assert_eq!(a.queries, gen(9).queries, "same seed, same schedule");
        assert_ne!(a.queries, gen(10).queries);
        assert_eq!(a.len(), 50 * 4);
        assert_eq!(a.clients, 50);
        for pair in a.queries.windows(2) {
            assert!(pair[0].0 <= pair[1].0, "arrival times must be sorted");
        }
        // Every client queries, and the shared universe bounds the names.
        let clients: std::collections::HashSet<usize> =
            a.queries.iter().map(|&(_, c, _)| c).collect();
        assert_eq!(clients.len(), 50);
        assert!(a.distinct_names() <= 30);
    }

    #[test]
    fn smaller_universes_mean_fewer_distinct_names() {
        let distinct = |universe: usize| {
            let mut rng = SimRng::new(3);
            FleetSchedule::generate(
                &mut rng,
                20,
                SimDuration::from_millis(10),
                10,
                &zone(),
                universe,
                1.0,
            )
            .distinct_names()
        };
        assert!(distinct(5) < distinct(1000), "universe 5 must repeat names more");
    }

    #[test]
    fn split_streams_are_independent() {
        // Consuming arrivals must not change the names drawn, because both
        // come from independent split streams of one parent.
        let mut parent1 = SimRng::new(9);
        let _unused_arrivals_stream = parent1.split(1);
        let mut names1 = NameGen::new(parent1.split(2), 8, &zone());
        let mut parent2 = SimRng::new(9);
        let mut arrivals = PoissonArrivals::new(parent2.split(1), SimDuration::from_millis(1));
        for _ in 0..100 {
            arrivals.next_gap();
        }
        let mut names2 = NameGen::new(parent2.split(2), 8, &zone());
        for _ in 0..10 {
            assert_eq!(names1.next_name(), names2.next_name());
        }
    }

    #[test]
    fn site_pages_are_well_formed_dependency_trees() {
        let mut rng = SimRng::new(11);
        let mut model = SiteModel::new(&mut rng, &zone(), 200, 1.0);
        for _ in 0..50 {
            let page = model.next_page();
            assert!(!page.domains.is_empty() && page.domains.len() <= SiteModel::MAX_DOMAINS);
            assert_eq!(page.dns_queries(), page.domains.len());
            assert_eq!(page.resources[0].parent, None, "resource 0 is the root document");
            assert_eq!(page.resources[0].domain, 0);
            let mut touched = vec![false; page.domains.len()];
            for (i, r) in page.resources.iter().enumerate() {
                touched[r.domain] = true;
                assert!(r.bytes >= 200);
                if let Some(p) = r.parent {
                    assert!(p < i, "parents precede children (topological order)");
                } else {
                    assert_eq!(i, 0, "only the root lacks a parent");
                }
            }
            assert!(touched.iter().all(|&t| t), "every listed domain serves a resource");
            assert!(page.depth() <= 5 + 1);
            for d in page.domains {
                assert!(d.is_subdomain_of(&zone()));
            }
        }
    }

    #[test]
    fn page_shape_depends_only_on_rank_not_on_sampling_history() {
        let mut rng1 = SimRng::new(4);
        let model1 = SiteModel::new(&mut rng1, &zone(), 100, 1.0);
        let mut rng2 = SimRng::new(4);
        let mut model2 = SiteModel::new(&mut rng2, &zone(), 100, 1.0);
        // Drain model2's popularity stream; shapes must be unaffected.
        for _ in 0..40 {
            model2.next_page();
        }
        for rank in [0, 1, 17, 99] {
            assert_eq!(model1.page_for(rank), model2.page_for(rank));
        }
        assert_ne!(model1.page_for(0), model1.page_for(1), "different sites, different pages");
        let mut rng3 = SimRng::new(5);
        let model3 = SiteModel::new(&mut rng3, &zone(), 100, 1.0);
        assert_ne!(model1.page_for(0), model3.page_for(0), "different seeds, different shapes");
    }

    #[test]
    fn site_popularity_is_zipf_skewed_and_domain_counts_have_a_tail() {
        let mut rng = SimRng::new(7);
        let mut model = SiteModel::new(&mut rng, &zone(), 50, 1.0);
        let ranks: Vec<usize> = (0..2000).map(|_| model.next_page().site_rank).collect();
        let top = ranks.iter().filter(|&&r| r == 0).count();
        let mid = ranks.iter().filter(|&&r| r == 25).count();
        assert!(top > 5 * mid.max(1), "rank 0 ({top}) must dwarf rank 25 ({mid})");

        let counts: Vec<usize> = (0..200).map(|r| model.page_for(r).dns_queries()).collect();
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!((2.0..20.0).contains(&mean), "mean domains/page {mean} out of range");
        assert!(counts.contains(&1), "some pages stay on one domain");
        assert!(counts.iter().any(|&c| c > 15), "the domain fan-out must have a tail");
    }
}
