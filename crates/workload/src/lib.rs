//! Query workload generation for the cost experiments.
//!
//! Two generators, both fed exclusively by the simulator's seeded
//! [`SimRng`] (obtain independent streams with
//! [`Sim::split_rng`](dohmark_netsim::Sim::split_rng) or
//! [`SimRng::split`]), so whole experiment suites replay bit-for-bit:
//!
//! * [`PoissonArrivals`] — exponentially distributed inter-arrival gaps,
//!   the paper's §3 controlled query process.
//! * [`NameGen`] — constant-length random query names under a fixed zone
//!   (e.g. `k7f2q9xw.dohmark.test.`). The paper uses constant-length
//!   random prefixes so every query has identical wire size and
//!   compressibility, making per-resolution byte counts directly
//!   comparable.
//!
//! # Example
//!
//! ```
//! use dohmark_dns_wire::Name;
//! use dohmark_netsim::{SimDuration, SimRng};
//! use dohmark_workload::{NameGen, PoissonArrivals};
//!
//! let mut rng = SimRng::new(42);
//! let mut arrivals = PoissonArrivals::new(rng.split(1), SimDuration::from_millis(50));
//! let mut names = NameGen::new(rng.split(2), 8, &Name::parse("dohmark.test").unwrap());
//! let gap = arrivals.next_gap();
//! let name = names.next_name();
//! assert_eq!(name.labels()[0].len(), 8);
//! assert!(gap.as_nanos() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use dohmark_dns_wire::Name;
use dohmark_netsim::{SimDuration, SimRng, SimTime};

/// A Poisson query-arrival process: i.i.d. exponential inter-arrival gaps
/// with a configurable mean.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rng: SimRng,
    mean: SimDuration,
}

impl PoissonArrivals {
    /// A process with the given mean inter-arrival gap, driven by `rng`
    /// (pass a [`SimRng::split`] stream so arrivals never perturb other
    /// randomness).
    pub fn new(rng: SimRng, mean: SimDuration) -> PoissonArrivals {
        PoissonArrivals { rng, mean }
    }

    /// The configured mean gap.
    pub fn mean(&self) -> SimDuration {
        self.mean
    }

    /// The next inter-arrival gap.
    pub fn next_gap(&mut self) -> SimDuration {
        self.rng.exp_duration(self.mean)
    }
}

/// Generates query names with a constant-length random first label under a
/// fixed zone, so every query encodes to exactly the same wire length.
#[derive(Debug, Clone)]
pub struct NameGen {
    rng: SimRng,
    label_len: usize,
    zone: Name,
}

impl NameGen {
    /// Names of the form `<random label_len chars>.<zone>`.
    pub fn new(rng: SimRng, label_len: usize, zone: &Name) -> NameGen {
        NameGen { rng, label_len, zone: zone.clone() }
    }

    /// The wire length every generated name encodes to (uncompressed).
    pub fn wire_len(&self) -> usize {
        self.zone.wire_len() + 1 + self.label_len
    }

    /// The next random query name.
    pub fn next_name(&mut self) -> Name {
        let label = self.rng.alnum_string(self.label_len);
        self.zone.child(&label).expect("alnum label under a valid zone is valid")
    }
}

/// A complete query workload: Poisson arrival times paired with random
/// names, the `(when, what)` stream every transport-matrix experiment
/// replays identically across its cells.
///
/// ```
/// use dohmark_dns_wire::Name;
/// use dohmark_netsim::{SimDuration, SimRng};
/// use dohmark_workload::QuerySchedule;
///
/// let mut rng = SimRng::new(42);
/// let zone = Name::parse("dohmark.test").unwrap();
/// let mut schedule = QuerySchedule::new(&mut rng, SimDuration::from_millis(50), 8, &zone);
/// let (at, name) = schedule.next().unwrap();
/// assert!(at.as_nanos() > 0);
/// assert!(name.is_subdomain_of(&zone));
/// ```
#[derive(Debug, Clone)]
pub struct QuerySchedule {
    arrivals: PoissonArrivals,
    names: NameGen,
    at: SimTime,
}

impl QuerySchedule {
    /// Split-stream labels used for arrivals and names, so a schedule
    /// built from a simulator's root RNG never perturbs other randomness.
    pub const ARRIVALS_STREAM: u64 = 1;
    /// See [`QuerySchedule::ARRIVALS_STREAM`].
    pub const NAMES_STREAM: u64 = 2;

    /// A schedule drawing both streams from `rng` (labels
    /// [`QuerySchedule::ARRIVALS_STREAM`] / [`QuerySchedule::NAMES_STREAM`]):
    /// exponential gaps with mean `mean_gap`, names
    /// `<label_len random chars>.<zone>`.
    pub fn new(
        rng: &mut SimRng,
        mean_gap: SimDuration,
        label_len: usize,
        zone: &Name,
    ) -> QuerySchedule {
        QuerySchedule {
            arrivals: PoissonArrivals::new(rng.split(QuerySchedule::ARRIVALS_STREAM), mean_gap),
            names: NameGen::new(rng.split(QuerySchedule::NAMES_STREAM), label_len, zone),
            at: SimTime::ZERO,
        }
    }

    /// The wire length every scheduled name encodes to.
    pub fn name_wire_len(&self) -> usize {
        self.names.wire_len()
    }
}

impl Iterator for QuerySchedule {
    type Item = (SimTime, Name);

    /// The next query: its absolute arrival time and name. Never `None` —
    /// callers `take(n)` what they need.
    fn next(&mut self) -> Option<(SimTime, Name)> {
        self.at += self.arrivals.next_gap();
        Some((self.at, self.names.next_name()))
    }
}

/// Zipf-distributed name popularity over a fixed, shared name universe —
/// the workload shape that makes a shared resolver cache pay off.
///
/// The universe is the deterministic set `w0000000.<zone>` …
/// `w<N-1>.<zone>` (constant-width labels, so — like [`NameGen`] — every
/// query encodes to exactly the same wire length). Rank `r` (0-based) is
/// drawn with probability proportional to `1 / (r + 1)^s`; smaller
/// universes and larger exponents concentrate queries on few names and
/// drive the cache-hit ratio up, which is exactly the knob the
/// `fig_cache_hit_cost` experiment sweeps.
#[derive(Debug, Clone)]
pub struct ZipfNames {
    rng: SimRng,
    zone: Name,
    /// Normalised cumulative weights; `cdf[r]` = P(rank ≤ r).
    cdf: Vec<f64>,
}

impl ZipfNames {
    /// Width of the digit part of every label (`w` + 7 digits = 8 chars,
    /// matching the experiments' 8-char [`NameGen`] labels).
    const DIGITS: usize = 7;

    /// A sampler over `universe` names under `zone` with Zipf exponent
    /// `exponent` (1.0 is the classic web/DNS value). `universe` is capped
    /// to the `10^7` names the label width can express.
    pub fn new(rng: SimRng, zone: &Name, universe: usize, exponent: f64) -> ZipfNames {
        let universe = universe.clamp(1, 10usize.pow(ZipfNames::DIGITS as u32));
        let mut cdf = Vec::with_capacity(universe);
        let mut total = 0.0;
        for rank in 0..universe {
            total += 1.0 / ((rank + 1) as f64).powf(exponent);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        ZipfNames { rng, zone: zone.clone(), cdf }
    }

    /// The number of distinct names in the universe.
    pub fn universe(&self) -> usize {
        self.cdf.len()
    }

    /// The `rank`-th (0-based, most popular first) name of the universe.
    pub fn name_for(&self, rank: usize) -> Name {
        let label = format!("w{rank:0width$}", width = ZipfNames::DIGITS);
        self.zone.child(&label).expect("fixed-width label under a valid zone is valid")
    }

    /// The wire length every sampled name encodes to (uncompressed).
    pub fn wire_len(&self) -> usize {
        self.zone.wire_len() + 2 + ZipfNames::DIGITS
    }

    /// Samples the next name.
    pub fn next_name(&mut self) -> Name {
        let u = self.rng.next_f64();
        let rank = self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1);
        self.name_for(rank)
    }
}

/// A multi-client workload: every stub client gets its own Poisson arrival
/// process while all of them draw names from **one** shared Zipf universe
/// — so what client A resolved a moment ago is disproportionately likely
/// to be what client B asks next, and a resolver cache shared across the
/// fleet pays off.
#[derive(Debug, Clone)]
pub struct FleetSchedule {
    /// The merged query stream: `(arrival time, client index, name)`,
    /// sorted by time (ties broken by client index).
    pub queries: Vec<(SimTime, usize, Name)>,
    /// The fleet size the schedule was generated for.
    pub clients: usize,
}

impl FleetSchedule {
    /// Split-stream label for the per-client arrival processes (client
    /// `i` uses sub-stream `i`).
    pub const ARRIVALS_STREAM: u64 = 3;
    /// Split-stream label for the shared Zipf name draw.
    pub const ZIPF_STREAM: u64 = 4;

    /// Generates the full schedule: `clients` Poisson processes with mean
    /// gap `mean_gap` and `queries_per_client` queries each, names drawn
    /// in global arrival order from a shared [`ZipfNames`] universe of
    /// `universe` names under `zone` with the given `exponent`.
    ///
    /// Deterministic in `rng`: the per-client arrival streams and the name
    /// stream are independent splits, so the same seed replays the same
    /// schedule bit for bit regardless of how the caller consumed `rng`
    /// elsewhere.
    #[allow(clippy::too_many_arguments)]
    pub fn generate(
        rng: &mut SimRng,
        clients: usize,
        mean_gap: SimDuration,
        queries_per_client: usize,
        zone: &Name,
        universe: usize,
        exponent: f64,
    ) -> FleetSchedule {
        let mut arrivals_parent = rng.split(FleetSchedule::ARRIVALS_STREAM);
        let mut queries = Vec::with_capacity(clients * queries_per_client);
        for client in 0..clients {
            let mut arrivals = PoissonArrivals::new(arrivals_parent.split(client as u64), mean_gap);
            let mut at = SimTime::ZERO;
            for _ in 0..queries_per_client {
                at += arrivals.next_gap();
                queries.push((at, client));
            }
        }
        // Deterministic global time order; client index breaks exact
        // ties, so the key is the whole element and tied entries are
        // identical tuples — instability cannot reorder observable bytes.
        // simlint::allow(stable-sort-for-reports): key is the whole element
        queries.sort_unstable_by_key(|&(at, client)| (at, client));
        // Names are drawn in arrival order from the one shared universe:
        // popularity is a property of the *workload*, not of any client.
        let mut names =
            ZipfNames::new(rng.split(FleetSchedule::ZIPF_STREAM), zone, universe, exponent);
        let queries =
            queries.into_iter().map(|(at, client)| (at, client, names.next_name())).collect();
        FleetSchedule { queries, clients }
    }

    /// Total query count.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The number of distinct names actually queried — the lower bound on
    /// compulsory cache misses.
    pub fn distinct_names(&self) -> usize {
        let mut names: Vec<&Name> = self.queries.iter().map(|(_, _, n)| n).collect();
        // A stable sort: distinct `Name`s can render to the same string
        // key, and `dedup` only folds *adjacent* equals — tie order must
        // not depend on the sort algorithm.
        names.sort_by_key(|n| n.to_string());
        names.dedup();
        names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zone() -> Name {
        Name::parse("dohmark.test").unwrap()
    }

    #[test]
    fn arrivals_have_roughly_the_configured_mean() {
        let mut arrivals = PoissonArrivals::new(SimRng::new(1), SimDuration::from_millis(50));
        let n = 20_000u64;
        let total: u64 = (0..n).map(|_| arrivals.next_gap().as_nanos()).sum();
        let mean = total / n;
        let target = SimDuration::from_millis(50).as_nanos();
        assert!(
            (mean as i64 - target as i64).unsigned_abs() < target / 20,
            "mean {mean} vs target {target}"
        );
    }

    #[test]
    fn arrival_streams_replay_bit_for_bit() {
        let gaps = |seed: u64| {
            let mut a = PoissonArrivals::new(SimRng::new(seed), SimDuration::from_millis(10));
            (0..100).map(|_| a.next_gap()).collect::<Vec<_>>()
        };
        assert_eq!(gaps(7), gaps(7));
        assert_ne!(gaps(7), gaps(8));
    }

    #[test]
    fn names_have_constant_wire_length() {
        let mut names = NameGen::new(SimRng::new(3), 8, &zone());
        let expected = names.wire_len();
        for _ in 0..50 {
            let n = names.next_name();
            assert_eq!(n.wire_len(), expected);
            assert_eq!(n.labels()[0].len(), 8);
            assert!(n.is_subdomain_of(&zone()));
        }
    }

    #[test]
    fn name_streams_replay_bit_for_bit() {
        let names = |seed: u64| {
            let mut g = NameGen::new(SimRng::new(seed), 10, &zone());
            (0..20).map(|_| g.next_name().to_string()).collect::<Vec<_>>()
        };
        assert_eq!(names(5), names(5));
        assert_ne!(names(5), names(6));
    }

    #[test]
    fn schedule_is_monotone_and_replays_bit_for_bit() {
        let take = |seed: u64| {
            let mut rng = SimRng::new(seed);
            QuerySchedule::new(&mut rng, SimDuration::from_millis(50), 8, &zone())
                .take(50)
                .collect::<Vec<_>>()
        };
        let a = take(3);
        assert_eq!(a, take(3));
        assert_ne!(a, take(4));
        for pair in a.windows(2) {
            assert!(pair[0].0 < pair[1].0, "arrival times must increase");
        }
    }

    #[test]
    fn schedule_matches_its_component_generators() {
        // QuerySchedule must be a drop-in for the hand-rolled
        // arrivals+names pairing the examples used before it existed.
        let mut rng1 = SimRng::new(11);
        let schedule = QuerySchedule::new(&mut rng1, SimDuration::from_millis(10), 8, &zone());
        let mut rng2 = SimRng::new(11);
        let mut arrivals = PoissonArrivals::new(rng2.split(1), SimDuration::from_millis(10));
        let mut names = NameGen::new(rng2.split(2), 8, &zone());
        let mut at = dohmark_netsim::SimTime::ZERO;
        for (got_at, got_name) in schedule.take(20) {
            at += arrivals.next_gap();
            assert_eq!(got_at, at);
            assert_eq!(got_name, names.next_name());
        }
    }

    #[test]
    fn zipf_names_are_skewed_constant_width_and_deterministic() {
        let draw = |seed: u64| {
            let mut z = ZipfNames::new(SimRng::new(seed), &zone(), 100, 1.0);
            (0..2000).map(|_| z.next_name().to_string()).collect::<Vec<_>>()
        };
        let a = draw(5);
        assert_eq!(a, draw(5), "same seed, same stream");
        assert_ne!(a, draw(6));
        let z = ZipfNames::new(SimRng::new(5), &zone(), 100, 1.0);
        let top = a.iter().filter(|n| **n == z.name_for(0).to_string()).count();
        let mid = a.iter().filter(|n| **n == z.name_for(49).to_string()).count();
        assert!(top > 5 * mid.max(1), "rank 0 ({top}) must dwarf rank 49 ({mid})");
        for n in a.iter().take(50) {
            assert_eq!(Name::parse(n).unwrap().wire_len(), z.wire_len());
        }
    }

    #[test]
    fn zipf_universe_bounds_the_name_set() {
        let mut z = ZipfNames::new(SimRng::new(1), &zone(), 5, 1.0);
        let mut seen: Vec<String> = (0..500).map(|_| z.next_name().to_string()).collect();
        seen.sort();
        seen.dedup();
        assert!(seen.len() <= 5);
        assert_eq!(seen.len(), 5, "500 draws over 5 names should hit all of them");
    }

    #[test]
    fn fleet_schedule_is_sorted_deterministic_and_shares_the_universe() {
        let gen = |seed: u64| {
            let mut rng = SimRng::new(seed);
            FleetSchedule::generate(&mut rng, 50, SimDuration::from_millis(20), 4, &zone(), 30, 1.0)
        };
        let a = gen(9);
        assert_eq!(a.queries, gen(9).queries, "same seed, same schedule");
        assert_ne!(a.queries, gen(10).queries);
        assert_eq!(a.len(), 50 * 4);
        assert_eq!(a.clients, 50);
        for pair in a.queries.windows(2) {
            assert!(pair[0].0 <= pair[1].0, "arrival times must be sorted");
        }
        // Every client queries, and the shared universe bounds the names.
        let clients: std::collections::HashSet<usize> =
            a.queries.iter().map(|&(_, c, _)| c).collect();
        assert_eq!(clients.len(), 50);
        assert!(a.distinct_names() <= 30);
    }

    #[test]
    fn smaller_universes_mean_fewer_distinct_names() {
        let distinct = |universe: usize| {
            let mut rng = SimRng::new(3);
            FleetSchedule::generate(
                &mut rng,
                20,
                SimDuration::from_millis(10),
                10,
                &zone(),
                universe,
                1.0,
            )
            .distinct_names()
        };
        assert!(distinct(5) < distinct(1000), "universe 5 must repeat names more");
    }

    #[test]
    fn split_streams_are_independent() {
        // Consuming arrivals must not change the names drawn, because both
        // come from independent split streams of one parent.
        let mut parent1 = SimRng::new(9);
        let _unused_arrivals_stream = parent1.split(1);
        let mut names1 = NameGen::new(parent1.split(2), 8, &zone());
        let mut parent2 = SimRng::new(9);
        let mut arrivals = PoissonArrivals::new(parent2.split(1), SimDuration::from_millis(1));
        for _ in 0..100 {
            arrivals.next_gap();
        }
        let mut names2 = NameGen::new(parent2.split(2), 8, &zone());
        for _ in 0..10 {
            assert_eq!(names1.next_name(), names2.next_name());
        }
    }
}
