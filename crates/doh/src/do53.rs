//! Classic DNS over UDP (Do53) — the paper's §3 baseline transport.
//!
//! The client binds a **fresh ephemeral source port per query** (as the
//! paper's measurement client does, so OS-level demultiplexing never
//! correlates resolutions) and the server answers every well-formed query
//! with a fixed A record, mirroring the paper's controlled resolver.
//! Query and response bytes are tagged
//! [`LayerTag::DnsPayload`](dohmark_netsim::LayerTag) and attributed to the
//! DNS transaction id.

use crate::resolver::ServerBackend;
use crate::{Endpoint, Resolver};
use dohmark_dns_wire::{Message, Name, RecordType};
use dohmark_netsim::{HostId, LayerTag, Sim, SimDuration, SockId, Wake};
use std::net::Ipv4Addr;

/// Retransmission policy for queries over UDP: resend after `initial`,
/// doubling the timeout on every retry (capped at [`UdpRetry::max_rto`]),
/// up to `max_retries` resends — after which the query is abandoned.
///
/// The defaults mirror the simulator's TCP loss-recovery constants
/// (200 ms initial RTO, 6 retries), so a lossy-link comparison between
/// Do53 and the TCP transports measures head-of-line blocking, not a
/// difference in how aggressively each side retries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UdpRetry {
    /// Timeout before the first retransmission.
    pub initial: SimDuration,
    /// Maximum number of retransmissions per query.
    pub max_retries: u32,
}

impl UdpRetry {
    /// Backoff ceiling, matching TCP's maximum RTO.
    pub fn max_rto() -> SimDuration {
        SimDuration::from_secs(60)
    }

    /// The TCP-mirroring default policy: 200 ms initial, 6 retries.
    pub fn standard() -> UdpRetry {
        UdpRetry { initial: SimDuration::from_millis(200), max_retries: 6 }
    }
}

/// High bits of the retransmission-timer tokens, keeping them disjoint
/// from [`ADVANCE_TOKEN`](crate::ADVANCE_TOKEN) (`u64::MAX`) and from any
/// harness-owned token namespace; the low 16 bits carry the transaction
/// id the timer belongs to.
const RETRY_TOKEN_BASE: u64 = 0xD053 << 32;

/// A Do53 server answering from a pluggable [`ServerBackend`] —
/// authoritative zone data or a shared caching recursive resolver.
#[derive(Debug)]
pub struct Do53Server {
    sock: SockId,
    backend: ServerBackend,
}

/// Packs a parked query's return address into a waiter token: Do53 needs
/// no table — the token *is* the `(host, port)` pair.
fn waiter_token(host: HostId, port: u16) -> u64 {
    ((host.0 as u64) << 16) | u64::from(port)
}

fn waiter_addr(token: u64) -> (HostId, u16) {
    (HostId((token >> 16) as usize), (token & 0xFFFF) as u16)
}

impl Do53Server {
    /// Binds the server on `(host, port)` answering every query with one
    /// fixed A record `answer`/`ttl` — the paper's §3 echo resolver.
    pub fn bind(sim: &mut Sim, host: HostId, port: u16, answer: Ipv4Addr, ttl: u32) -> Do53Server {
        Do53Server::bind_with(sim, host, port, ServerBackend::fixed(answer, ttl))
    }

    /// Binds the server on `(host, port)` answering from `backend`.
    pub fn bind_with(sim: &mut Sim, host: HostId, port: u16, backend: ServerBackend) -> Do53Server {
        let sock = sim.udp_bind(host, port);
        Do53Server { sock, backend }
    }

    /// The backend's cache statistics, if it has a cache.
    pub fn cache_stats(&self) -> Option<crate::cache::CacheStats> {
        self.backend.cache_stats()
    }

    fn send_response(&mut self, sim: &mut Sim, dst: (HostId, u16), response: &Message) {
        sim.set_attr(u32::from(response.header.id));
        sim.udp_send(self.sock, dst, LayerTag::DnsPayload, response.encode());
    }
}

impl Endpoint for Do53Server {
    fn on_wake(&mut self, sim: &mut Sim, wake: &Wake) {
        // Upstream completions first: a recursive backend may have parked
        // queries waiting on the wake we are handling.
        for (waiter, response) in self.backend.poll(sim, wake) {
            self.send_response(sim, waiter_addr(waiter), &response);
        }
        let Wake::UdpReadable { sock, .. } = wake else { return };
        if *sock != self.sock {
            return;
        }
        while let Some((src_host, src_port, data)) = sim.udp_recv(self.sock) {
            // Corrupted datagrams that no longer parse are dropped, exactly
            // like a real resolver would drop them.
            let Ok(query) = Message::decode(&data) else { continue };
            let waiter = waiter_token(src_host, src_port);
            if let Some(response) = self.backend.answer(sim, &query, waiter) {
                self.send_response(sim, (src_host, src_port), &response);
            }
        }
    }
}

/// One in-flight Do53 query and its retransmission state.
#[derive(Debug)]
struct PendingQuery {
    /// DNS transaction id (doubles as the attribution id).
    id: u16,
    /// The ephemeral socket the reply arrives on; retransmissions reuse
    /// it, as a real stub resolver resends from the same source port.
    sock: SockId,
    /// The encoded query, kept for retransmission.
    wire: Vec<u8>,
    /// Retransmissions still allowed.
    retries_left: u32,
    /// Timeout armed for the *next* retransmission (doubles each time).
    next_timeout: SimDuration,
}

/// A Do53 client multiplexing queries over fresh ephemeral source ports,
/// optionally retransmitting on an [`UdpRetry`] timeout schedule.
#[derive(Debug)]
pub struct Do53Client {
    host: HostId,
    server: (HostId, u16),
    retry: Option<UdpRetry>,
    pending: Vec<PendingQuery>,
    responses: Vec<Message>,
}

impl Do53Client {
    /// A client on `host` querying `server`. No retransmission: a lost
    /// datagram loses the query, the paper's §3 measurement-client shape.
    pub fn new(host: HostId, server: (HostId, u16)) -> Do53Client {
        Do53Client { host, server, retry: None, pending: Vec::new(), responses: Vec::new() }
    }

    /// A client that retransmits unanswered queries on `retry`'s timeout
    /// schedule — the stub-resolver shape the page-load experiments need
    /// on lossy links, where "a lost query never resolves" would conflate
    /// transport loss behaviour with client give-up behaviour.
    pub fn with_retry(host: HostId, server: (HostId, u16), retry: UdpRetry) -> Do53Client {
        Do53Client { host, server, retry: Some(retry), pending: Vec::new(), responses: Vec::new() }
    }

    /// Handles a retransmission-timer wake; returns `true` if the token
    /// belonged to this client's timer namespace.
    fn on_retry_timer(&mut self, sim: &mut Sim, token: u64) -> bool {
        if token & !0xFFFF != RETRY_TOKEN_BASE {
            return false;
        }
        let id = (token & 0xFFFF) as u16;
        // A stale timer for an already-answered query finds no pending
        // entry and falls through silently — each fire rearms at most
        // one successor, so chains die with their query.
        if let Some(q) = self.pending.iter_mut().find(|q| q.id == id) {
            if q.retries_left > 0 {
                q.retries_left -= 1;
                sim.set_attr(u32::from(q.id));
                sim.udp_send(q.sock, self.server, LayerTag::DnsPayload, q.wire.clone());
                let doubled = SimDuration::from_nanos(q.next_timeout.as_nanos().saturating_mul(2));
                q.next_timeout =
                    if doubled > UdpRetry::max_rto() { UdpRetry::max_rto() } else { doubled };
                crate::driver::schedule_endpoint_timer(sim, q.next_timeout, token);
            }
        }
        true
    }

    /// Sends the query and runs the simulation until its response arrives,
    /// broadcasting every wake to `self` and `peer` — a two-endpoint
    /// convenience; registry topologies use
    /// [`Driver::resolve`](crate::Driver::resolve) instead.
    pub fn resolve(
        &mut self,
        sim: &mut Sim,
        peer: &mut dyn Endpoint,
        name: &Name,
        id: u16,
    ) -> Option<Message> {
        crate::resolve_with_extras_impl(sim, self, peer, &mut [], name, id)
    }
}

impl Resolver for Do53Client {
    /// Sends an A query for `name` with transaction (and attribution) id
    /// `id` from a freshly bound ephemeral port, arming the first
    /// retransmission timer when the client has an [`UdpRetry`] policy.
    fn send_query(&mut self, sim: &mut Sim, name: &Name, id: u16) {
        let sock = sim.udp_bind(self.host, 0);
        sim.set_attr(u32::from(id));
        let query = Message::query(id, name, RecordType::A);
        let wire = query.encode();
        sim.udp_send(sock, self.server, LayerTag::DnsPayload, wire.clone());
        let (retries_left, next_timeout) = match self.retry {
            Some(retry) => {
                let token = RETRY_TOKEN_BASE | u64::from(id);
                crate::driver::schedule_endpoint_timer(sim, retry.initial, token);
                (retry.max_retries, retry.initial)
            }
            None => (0, SimDuration::ZERO),
        };
        self.pending.push(PendingQuery { id, sock, wire, retries_left, next_timeout });
    }

    fn take_response(&mut self, id: u16) -> Option<Message> {
        let idx = self.responses.iter().position(|m| m.header.id == id)?;
        Some(self.responses.remove(idx))
    }

    /// Closes the ephemeral sockets of any still-unanswered queries.
    fn close(&mut self, sim: &mut Sim) {
        for q in self.pending.drain(..) {
            sim.udp_close(q.sock);
        }
    }
}

impl Endpoint for Do53Client {
    fn on_wake(&mut self, sim: &mut Sim, wake: &Wake) {
        match wake {
            Wake::AppTimer { token, .. } => {
                self.on_retry_timer(sim, *token);
            }
            Wake::UdpReadable { sock, .. } => {
                let Some(idx) = self.pending.iter().position(|q| q.sock == *sock) else {
                    return;
                };
                while let Some((_, _, data)) = sim.udp_recv(*sock) {
                    let Ok(response) = Message::decode(&data) else { continue };
                    if response.header.id == self.pending[idx].id {
                        self.pending.remove(idx);
                        self.responses.push(response);
                        // The query's ephemeral socket has served its purpose;
                        // closing it keeps a long-running client from aliasing
                        // wrapped ephemeral ports onto dead sockets.
                        sim.udp_close(*sock);
                        break;
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dohmark_netsim::LinkConfig;
    use std::net::Ipv4Addr;

    fn setup(seed: u64) -> (Sim, Do53Client, Do53Server) {
        let mut sim = Sim::new(seed);
        let stub = sim.add_host("stub");
        let resolver = sim.add_host("resolver");
        sim.add_link(stub, resolver, LinkConfig::localhost());
        let server = Do53Server::bind(&mut sim, resolver, 53, Ipv4Addr::new(192, 0, 2, 7), 300);
        let client = Do53Client::new(stub, (resolver, 53));
        (sim, client, server)
    }

    #[test]
    fn query_resolves_to_the_fixed_answer() {
        let (mut sim, mut client, mut server) = setup(1);
        let name = Name::parse("abcdefgh.dohmark.test").unwrap();
        let response = client.resolve(&mut sim, &mut server, &name, 1).unwrap();
        assert_eq!(response.header.id, 1);
        assert_eq!(response.answers.len(), 1);
        assert_eq!(response.answers[0].name, name);
    }

    #[test]
    fn each_resolution_is_two_packets_charged_to_its_id() {
        let (mut sim, mut client, mut server) = setup(2);
        let name = Name::parse("abcdefgh.dohmark.test").unwrap();
        for id in 1..=3u16 {
            client.resolve(&mut sim, &mut server, &name, id).unwrap();
        }
        sim.drain();
        for id in 1..=3u32 {
            let cost = sim.meter.cost(id);
            assert_eq!(cost.packets, 2, "query + response for id {id}");
            // All non-header bytes are raw DNS payload on Do53.
            assert_eq!(cost.bytes, cost.layers.dns + cost.layers.l4_header);
            assert_eq!(cost.layers.l4_header, 2 * 28);
        }
    }

    #[test]
    fn each_query_uses_a_fresh_source_port() {
        let (mut sim, mut client, mut server) = setup(3);
        sim.trace.enable(100);
        let name = Name::parse("abcdefgh.dohmark.test").unwrap();
        client.resolve(&mut sim, &mut server, &name, 1).unwrap();
        client.resolve(&mut sim, &mut server, &name, 2).unwrap();
        let sources: Vec<String> = sim
            .trace
            .records()
            .iter()
            .filter(|r| r.direction.starts_with("stub"))
            .map(|r| r.direction.clone())
            .collect();
        assert_eq!(sources.len(), 2);
        assert_ne!(sources[0], sources[1], "source ports must differ");
    }

    #[test]
    fn client_closes_its_ephemeral_socket_after_the_response() {
        let (mut sim, mut client, mut server) = setup(5);
        sim.trace.enable(16);
        let name = Name::parse("abcdefgh.dohmark.test").unwrap();
        client.resolve(&mut sim, &mut server, &name, 1).unwrap();
        sim.drain();
        let dropped_before = sim.dropped_packets();
        // A stray duplicate response to the query's (now closed) source
        // port must be dropped, not queued on the dead socket.
        let query_src = sim.trace.records()[0].direction.clone();
        let port: u16 =
            query_src.split("->").next().unwrap().rsplit(':').next().unwrap().parse().unwrap();
        let stub = dohmark_netsim::HostId(0);
        let resolver_sock = sim.udp_bind(dohmark_netsim::HostId(1), 0);
        sim.udp_send(resolver_sock, (stub, port), LayerTag::DnsPayload, vec![0; 12]);
        sim.drain();
        assert_eq!(sim.dropped_packets(), dropped_before + 1);
    }

    #[test]
    fn lost_query_returns_none() {
        let mut sim = Sim::new(4);
        let stub = sim.add_host("stub");
        let resolver = sim.add_host("resolver");
        sim.add_link(stub, resolver, LinkConfig::localhost().loss(1.0));
        let mut server = Do53Server::bind(&mut sim, resolver, 53, Ipv4Addr::new(192, 0, 2, 7), 60);
        let mut client = Do53Client::new(stub, (resolver, 53));
        let name = Name::parse("abcdefgh.dohmark.test").unwrap();
        assert!(client.resolve(&mut sim, &mut server, &name, 1).is_none());
    }

    #[test]
    fn retry_recovers_a_lossy_resolution() {
        // At 30% iid loss a retry-less stub fails whole resolutions; the
        // retransmitting client recovers every one of a batch, because a
        // per-attempt success chance of ~0.49 over 7 transmissions leaves
        // a failure probability under 1%.
        let mut sim = Sim::new(11);
        let stub = sim.add_host("stub");
        let resolver = sim.add_host("resolver");
        sim.add_link(stub, resolver, LinkConfig::localhost().loss(0.3));
        let mut server = Do53Server::bind(&mut sim, resolver, 53, Ipv4Addr::new(192, 0, 2, 7), 60);
        let mut client = Do53Client::with_retry(stub, (resolver, 53), UdpRetry::standard());
        let name = Name::parse("abcdefgh.dohmark.test").unwrap();
        for id in 1..=8u16 {
            let response = client.resolve(&mut sim, &mut server, &name, id);
            assert!(response.is_some(), "id {id} failed despite retries");
        }
    }

    #[test]
    fn retry_gives_up_after_its_budget_on_a_dead_link() {
        let mut sim = Sim::new(6);
        let stub = sim.add_host("stub");
        let resolver = sim.add_host("resolver");
        sim.add_link(stub, resolver, LinkConfig::localhost().loss(1.0));
        let mut server = Do53Server::bind(&mut sim, resolver, 53, Ipv4Addr::new(192, 0, 2, 7), 60);
        let mut client = Do53Client::with_retry(stub, (resolver, 53), UdpRetry::standard());
        let name = Name::parse("abcdefgh.dohmark.test").unwrap();
        assert!(client.resolve(&mut sim, &mut server, &name, 1).is_none());
        // Original send + 6 retransmissions, every one dropped on the link.
        assert_eq!(sim.dropped_packets(), 7);
    }

    #[test]
    fn retransmissions_reuse_the_original_source_port() {
        let mut sim = Sim::new(7);
        let stub = sim.add_host("stub");
        let resolver = sim.add_host("resolver");
        sim.add_link(stub, resolver, LinkConfig::localhost().loss(1.0));
        sim.trace.enable(32);
        let mut server = Do53Server::bind(&mut sim, resolver, 53, Ipv4Addr::new(192, 0, 2, 7), 60);
        let mut client = Do53Client::with_retry(
            stub,
            (resolver, 53),
            UdpRetry { initial: SimDuration::from_millis(200), max_retries: 2 },
        );
        let name = Name::parse("abcdefgh.dohmark.test").unwrap();
        client.resolve(&mut sim, &mut server, &name, 1);
        let sources: Vec<String> = sim
            .trace
            .records()
            .iter()
            .filter(|r| r.direction.starts_with("stub"))
            .map(|r| r.direction.clone())
            .collect();
        assert_eq!(sources.len(), 3, "original + 2 retransmissions");
        assert!(sources.iter().all(|s| s == &sources[0]), "{sources:?}");
    }
}
