//! DNS over HTTPS on HTTP/1.1 (RFC 8484 over RFC 9112).
//!
//! Wire shape per query, inside TLS records over simulated TCP:
//!
//! * Request: `POST /dns-query HTTP/1.1` with `host`, `accept`,
//!   `content-type: application/dns-message` and `content-length` fields —
//!   the full header text every HTTP/1.1 request repeats, which is exactly
//!   why the paper finds h1 headers cost more than HPACK-compressed h2
//!   headers on persistent connections. The body is the raw DNS query.
//! * Response: `HTTP/1.1 200 OK` with `content-type`, `server` and
//!   `content-length`, body the raw DNS response.
//!
//! Header text is tagged [`LayerTag::HttpHeader`], bodies
//! [`LayerTag::HttpBody`], TLS record framing `Tls` — the paper's "Hdr" /
//! "Body" / "TLS" split.

use crate::resolver::ServerBackend;
use crate::tls_stream::TlsStream;
use crate::{Endpoint, Resolver, ReusePolicy};
use dohmark_dns_wire::{Message, Name, RecordType};
use dohmark_httpsim::h1::{Request, RequestParser, Response, ResponseParser};
use dohmark_netsim::{HostId, LayerTag, ListenerId, Side, Sim, TcpHandle, Wake};
use dohmark_tls_model::TlsConfig;
use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;

/// The RFC 8484 media type.
pub const DNS_MESSAGE: &str = "application/dns-message";
/// The conventional DoH endpoint path.
pub const DOH_PATH: &str = "/dns-query";

fn doh_request(authority: &str, body: Vec<u8>) -> Request {
    Request::new(
        "POST",
        DOH_PATH,
        vec![
            ("host".to_string(), authority.to_string()),
            ("accept".to_string(), DNS_MESSAGE.to_string()),
            ("content-type".to_string(), DNS_MESSAGE.to_string()),
        ],
    )
    .with_body(body)
}

fn doh_response(body: Vec<u8>) -> Response {
    Response::new(
        200,
        "OK",
        vec![
            ("content-type".to_string(), DNS_MESSAGE.to_string()),
            ("server".to_string(), "dohmark".to_string()),
        ],
    )
    .with_body(body)
}

/// A DoH/1.1 connection: TLS stream plus an HTTP/1.1 response parser.
#[derive(Debug)]
struct H1Conn {
    tls: TlsStream,
    parser: ResponseParser,
}

/// A DoH client speaking HTTP/1.1 to one resolver.
#[derive(Debug)]
pub struct DohH1Client {
    host: HostId,
    server: (HostId, u16),
    authority: String,
    tls_cfg: TlsConfig,
    policy: ReusePolicy,
    conn_attr: u32,
    conn: Option<H1Conn>,
    queued: Vec<(u16, Name)>,
    /// Queries sent (or queued) whose response has not yet arrived; a
    /// fresh connection closes only once this drains.
    inflight: usize,
    responses: Vec<Message>,
}

impl DohH1Client {
    /// A client on `host` for `server`, usually `(resolver, 443)`. The
    /// `authority` is the `host` header value (normally the TLS SNI).
    /// Setup attribution follows the same rules as
    /// [`DotClient::new`](crate::DotClient::new).
    pub fn new(
        host: HostId,
        server: (HostId, u16),
        authority: &str,
        tls_cfg: TlsConfig,
        policy: ReusePolicy,
        conn_attr: u32,
    ) -> DohH1Client {
        DohH1Client {
            host,
            server,
            authority: authority.to_string(),
            tls_cfg,
            policy,
            conn_attr,
            conn: None,
            queued: Vec::new(),
            inflight: 0,
            responses: Vec::new(),
        }
    }

    /// Whether the client currently holds an established connection.
    pub fn is_connected(&self) -> bool {
        self.conn.as_ref().is_some_and(|c| c.tls.established())
    }

    fn flush(&mut self, sim: &mut Sim) {
        let Some(conn) = self.conn.as_mut() else { return };
        if !conn.tls.established() {
            return;
        }
        for (id, name) in self.queued.drain(..) {
            let query = Message::query(id, &name, RecordType::A);
            let encoded = doh_request(&self.authority, query.encode()).encode();
            conn.tls.send_segments(
                sim,
                u32::from(id),
                &[(LayerTag::HttpHeader, &encoded.head), (LayerTag::HttpBody, &encoded.body)],
            );
        }
    }

    /// Sends the query and runs the simulation until its response arrives,
    /// broadcasting every wake to `self` and `peer` — a two-endpoint
    /// convenience; registry topologies use
    /// [`Driver::resolve`](crate::Driver::resolve) instead.
    pub fn resolve(
        &mut self,
        sim: &mut Sim,
        peer: &mut dyn Endpoint,
        name: &Name,
        id: u16,
    ) -> Option<Message> {
        crate::resolve_with_extras_impl(sim, self, peer, &mut [], name, id)
    }
}

impl Resolver for DohH1Client {
    fn send_query(&mut self, sim: &mut Sim, name: &Name, id: u16) {
        let dead = self.conn.as_ref().is_some_and(|c| sim.tcp_has_failed(c.tls.handle));
        if self.conn.is_none() || dead {
            let attr = match self.policy {
                ReusePolicy::Fresh => u32::from(id),
                ReusePolicy::Persistent => self.conn_attr,
            };
            sim.set_attr(attr);
            let handle = sim.tcp_connect(self.host, self.server);
            self.conn = Some(H1Conn {
                tls: TlsStream::new(handle, &self.tls_cfg, attr),
                parser: ResponseParser::new(),
            });
            // Queries in flight on a dead connection are lost for good.
            self.inflight = 0;
        }
        self.queued.push((id, name.clone()));
        self.inflight += 1;
        self.flush(sim);
    }

    fn take_response(&mut self, id: u16) -> Option<Message> {
        let idx = self.responses.iter().position(|m| m.header.id == id)?;
        Some(self.responses.remove(idx))
    }

    /// Closes the current connection, if any (TCP FIN), abandoning
    /// queries that were still queued for it.
    fn close(&mut self, sim: &mut Sim) {
        self.queued.clear();
        self.inflight = 0;
        if let Some(conn) = self.conn.take() {
            sim.tcp_close(conn.tls.handle);
        }
    }
}

impl Endpoint for DohH1Client {
    fn on_wake(&mut self, sim: &mut Sim, wake: &Wake) {
        let Some(conn) = self.conn.as_mut() else { return };
        match *wake {
            Wake::TcpConnected { conn: handle, .. } if handle == conn.tls.handle => {
                let _ = conn.tls.advance(sim, &[]);
                self.flush(sim);
            }
            Wake::TcpReadable { conn: handle, .. } if handle == conn.tls.handle => {
                let data = sim.tcp_recv(handle);
                let was_established = conn.tls.established();
                let plaintext = conn.tls.advance(sim, &data);
                conn.parser.push(&plaintext);
                while let Ok(Some(response)) = conn.parser.next_response() {
                    self.inflight = self.inflight.saturating_sub(1);
                    if response.status == 200 {
                        if let Ok(msg) = Message::decode(&response.body) {
                            self.responses.push(msg);
                        }
                    }
                }
                if !was_established && conn.tls.established() {
                    self.flush(sim);
                }
                if self.inflight == 0 && self.policy == ReusePolicy::Fresh {
                    let handle = self.conn.take().expect("conn is live").tls.handle;
                    sim.tcp_close(handle);
                }
            }
            Wake::TcpFin { conn: handle, .. } if handle == conn.tls.handle => {
                sim.tcp_close(handle);
                self.conn = None;
            }
            _ => {}
        }
    }
}

/// A DoH/1.1 server-side connection.
#[derive(Debug)]
struct H1ServerConn {
    tls: TlsStream,
    parser: RequestParser,
    /// Waiter tokens of requests in arrival order — HTTP/1.1 has no
    /// stream multiplexing, so responses must go out in request order
    /// even when a later request's answer (a cache hit) is ready before
    /// an earlier one's (parked on an upstream fetch): real h1
    /// head-of-line blocking.
    pipeline: VecDeque<u64>,
}

/// A DoH/1.1 server answering from a pluggable [`ServerBackend`] —
/// authoritative zone data or a shared caching recursive resolver.
#[derive(Debug)]
pub struct DohH1Server {
    listener: ListenerId,
    tls_cfg: TlsConfig,
    backend: ServerBackend,
    /// Keyed lookup only (the wake's own handle) — never iterated, so
    /// the randomized order is unobservable (no-unordered-iteration).
    conns: HashMap<TcpHandle, H1ServerConn>,
    /// Parked queries: waiter token → the connection expecting the answer.
    /// Keyed lookup only: drained in the backend's completion order.
    waiters: HashMap<u64, TcpHandle>,
    /// Responses ready to send, held until their turn in the pipeline.
    /// Keyed lookup only: popped in each connection's FIFO order.
    ready: HashMap<u64, Message>,
    next_waiter: u64,
}

impl DohH1Server {
    /// Listens on `(host, port)` answering every query with one fixed A
    /// record `answer`/`ttl`.
    pub fn bind(
        sim: &mut Sim,
        host: HostId,
        port: u16,
        tls_cfg: TlsConfig,
        answer: Ipv4Addr,
        ttl: u32,
    ) -> DohH1Server {
        DohH1Server::bind_with(sim, host, port, tls_cfg, ServerBackend::fixed(answer, ttl))
    }

    /// Listens on `(host, port)` answering from `backend`.
    pub fn bind_with(
        sim: &mut Sim,
        host: HostId,
        port: u16,
        tls_cfg: TlsConfig,
        backend: ServerBackend,
    ) -> DohH1Server {
        let listener = sim.tcp_listen(host, port);
        DohH1Server {
            listener,
            tls_cfg,
            backend,
            conns: HashMap::new(),
            waiters: HashMap::new(),
            ready: HashMap::new(),
            next_waiter: 1,
        }
    }

    /// Established-and-open connection count (for tests and reports).
    pub fn open_connections(&self) -> usize {
        self.conns.len()
    }

    /// The backend's cache statistics, if it has a cache.
    pub fn cache_stats(&self) -> Option<crate::cache::CacheStats> {
        self.backend.cache_stats()
    }

    /// Sends `handle`'s ready responses, in request order, stopping at the
    /// first whose answer is still pending (h1 head-of-line blocking).
    fn flush_conn(&mut self, sim: &mut Sim, handle: TcpHandle) {
        let Some(conn) = self.conns.get_mut(&handle) else { return };
        while let Some(&waiter) = conn.pipeline.front() {
            let Some(response) = self.ready.remove(&waiter) else { break };
            conn.pipeline.pop_front();
            let encoded = doh_response(response.encode()).encode();
            conn.tls.send_segments(
                sim,
                u32::from(response.header.id),
                &[(LayerTag::HttpHeader, &encoded.head), (LayerTag::HttpBody, &encoded.body)],
            );
        }
    }
}

impl Endpoint for DohH1Server {
    fn on_wake(&mut self, sim: &mut Sim, wake: &Wake) {
        // Upstream completions first: queue each answer at its pipeline
        // slot, then flush whatever became sendable.
        let completed = self.backend.poll(sim, wake);
        if !completed.is_empty() {
            let mut touched = Vec::new();
            for (waiter, response) in completed {
                let Some(handle) = self.waiters.remove(&waiter) else { continue };
                self.ready.insert(waiter, response);
                if !touched.contains(&handle) {
                    touched.push(handle);
                }
            }
            for handle in touched {
                self.flush_conn(sim, handle);
            }
        }
        match *wake {
            Wake::TcpAccepted { listener, conn: handle, .. } if listener == self.listener => {
                let attr = sim.attr();
                self.conns.insert(
                    handle,
                    H1ServerConn {
                        tls: TlsStream::new(handle, &self.tls_cfg, attr),
                        parser: RequestParser::new(),
                        pipeline: VecDeque::new(),
                    },
                );
            }
            Wake::TcpReadable { conn: handle, .. } if handle.side == Side::Server => {
                let Some(conn) = self.conns.get_mut(&handle) else { return };
                let data = sim.tcp_recv(handle);
                let plaintext = conn.tls.advance(sim, &data);
                conn.parser.push(&plaintext);
                let mut queries = Vec::new();
                while let Ok(Some(request)) = conn.parser.next_request() {
                    // Requests whose body is not a DNS message are dropped,
                    // like a resolver answering 400 we never retry on.
                    let Ok(query) = Message::decode(&request.body) else { continue };
                    queries.push(query);
                }
                for query in queries {
                    let waiter = self.next_waiter;
                    self.next_waiter += 1;
                    let conn = self.conns.get_mut(&handle).expect("conn is live");
                    conn.pipeline.push_back(waiter);
                    match self.backend.answer(sim, &query, waiter) {
                        Some(response) => {
                            self.ready.insert(waiter, response);
                        }
                        None => {
                            self.waiters.insert(waiter, handle);
                        }
                    }
                }
                self.flush_conn(sim, handle);
            }
            Wake::TcpFin { conn: handle, .. }
                if handle.side == Side::Server && self.conns.remove(&handle).is_some() =>
            {
                sim.tcp_close(handle);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dohmark_netsim::LinkConfig;
    use dohmark_tls_model::{handshake_bytes, ALPN_HTTP11};
    use std::net::Ipv4Addr;

    fn h1_tls() -> TlsConfig {
        TlsConfig::for_server("dns.example.net").alpn(ALPN_HTTP11)
    }

    fn setup(seed: u64, policy: ReusePolicy) -> (Sim, DohH1Client, DohH1Server) {
        let mut sim = Sim::new(seed);
        let stub = sim.add_host("stub");
        let resolver = sim.add_host("resolver");
        sim.add_link(stub, resolver, LinkConfig::localhost());
        let server =
            DohH1Server::bind(&mut sim, resolver, 443, h1_tls(), Ipv4Addr::new(192, 0, 2, 7), 300);
        let client =
            DohH1Client::new(stub, (resolver, 443), "dns.example.net", h1_tls(), policy, 0);
        (sim, client, server)
    }

    #[test]
    fn cold_resolution_pays_handshake_headers_and_body() {
        let (mut sim, mut client, mut server) = setup(1, ReusePolicy::Fresh);
        let name = Name::parse("abcdefgh.dohmark.test").unwrap();
        let response = client.resolve(&mut sim, &mut server, &name, 1).unwrap();
        assert_eq!(response.answers[0].name, name);
        sim.drain();
        let cost = sim.meter.cost(1);
        let hs = handshake_bytes(&h1_tls()) as u64;
        // Handshake + one record each way.
        assert_eq!(cost.layers.tls, hs + 2 * 21);
        // Bodies are exactly the DNS messages.
        let query_len = Message::query(1, &name, RecordType::A).encode().len() as u64;
        let resp_len = response.encode().len() as u64;
        assert_eq!(cost.layers.http_body, query_len + resp_len);
        // The request + response header text is a three-digit number of
        // bytes — the h1 header tax the paper measures.
        assert!(cost.layers.http_header > 150, "header bytes {}", cost.layers.http_header);
        assert_eq!(cost.layers.http_mgmt, 0, "h1 has no management frames");
        assert!(!client.is_connected(), "cold connection must close");
    }

    #[test]
    fn persistent_connection_repeats_header_text_every_query() {
        let (mut sim, mut client, mut server) = setup(2, ReusePolicy::Persistent);
        let name = Name::parse("abcdefgh.dohmark.test").unwrap();
        for id in 1..=3u16 {
            client.resolve(&mut sim, &mut server, &name, id).unwrap();
        }
        assert!(client.is_connected());
        sim.drain();
        let first = sim.meter.cost(1).layers.http_header;
        for id in 2..=3u32 {
            // No compression on h1: identical header bytes per query.
            assert_eq!(sim.meter.cost(id).layers.http_header, first, "id {id}");
            assert_eq!(sim.meter.cost(id).layers.tls, 2 * 21, "id {id}");
        }
        assert_eq!(sim.meter.cost(0).layers.tls, handshake_bytes(&h1_tls()) as u64);
    }

    #[test]
    fn close_then_next_query_reconnects() {
        let (mut sim, mut client, mut server) = setup(3, ReusePolicy::Persistent);
        let name = Name::parse("abcdefgh.dohmark.test").unwrap();
        client.resolve(&mut sim, &mut server, &name, 1).unwrap();
        client.close(&mut sim);
        crate::drain_endpoints_impl(&mut sim, &mut [&mut client, &mut server]);
        assert!(!client.is_connected());
        assert_eq!(server.open_connections(), 0);
        let response = client.resolve(&mut sim, &mut server, &name, 2);
        assert!(response.is_some());
    }

    #[test]
    fn identical_seeds_reproduce_identical_h1_costs() {
        let run = |seed: u64| {
            let (mut sim, mut client, mut server) = setup(seed, ReusePolicy::Persistent);
            let name = Name::parse("abcdefgh.dohmark.test").unwrap();
            for id in 1..=3u16 {
                client.resolve(&mut sim, &mut server, &name, id).unwrap();
            }
            sim.drain();
            (sim.meter.total(), sim.now())
        };
        assert_eq!(run(7), run(7));
    }
}
