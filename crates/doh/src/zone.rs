//! Zone-backed answers with configurable TTLs — the authoritative data
//! behind both the legacy fixed-echo servers and the caching recursive
//! resolver's upstream.

use dohmark_dns_wire::{Message, Name, Rcode, Rdata, Record, RecordType, SoaRdata};
use std::net::Ipv4Addr;

/// How a [`Zone`] synthesises answers.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ZoneMode {
    /// Answer **every** query with one fixed A record — the paper's §3
    /// controlled echo resolver (byte-compatible with the old
    /// `Message::fixed_a_response` servers).
    Fixed(Ipv4Addr),
    /// Synthesise a deterministic per-name A record for names under the
    /// zone origin; answer NXDOMAIN (with the SOA in the authority
    /// section, per RFC 2308) for names outside it or whose first label
    /// starts with `nx`, and NODATA for non-A queries.
    Synth,
}

/// An authoritative zone: the answer source servers consult instead of a
/// hard-coded echo response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Zone {
    origin: Name,
    ttl: u32,
    negative_ttl: u32,
    mode: ZoneMode,
}

impl Zone {
    /// The echo zone of the paper's controlled experiment: every query —
    /// whatever the name — gets one A record `answer` with `ttl`.
    pub fn fixed(answer: Ipv4Addr, ttl: u32) -> Zone {
        Zone { origin: Name::root(), ttl, negative_ttl: ttl.min(60), mode: ZoneMode::Fixed(answer) }
    }

    /// A synthetic zone rooted at `origin`: names under it resolve to a
    /// deterministic per-name address with `ttl`; everything else (and
    /// `nx*` labels) is NXDOMAIN with `negative_ttl` as the RFC 2308 SOA
    /// minimum.
    pub fn synth(origin: Name, ttl: u32, negative_ttl: u32) -> Zone {
        Zone { origin, ttl, negative_ttl, mode: ZoneMode::Synth }
    }

    /// The zone origin.
    pub fn origin(&self) -> &Name {
        &self.origin
    }

    /// The positive-answer TTL.
    pub fn ttl(&self) -> u32 {
        self.ttl
    }

    /// The RFC 2308 negative-caching TTL (the SOA `minimum`).
    pub fn negative_ttl(&self) -> u32 {
        self.negative_ttl
    }

    /// The zone's SOA record, as served in the authority section of
    /// negative answers. Its TTL and `minimum` are both the configured
    /// negative TTL, so caches obeying RFC 2308's `min(SOA TTL, MINIMUM)`
    /// rule see exactly that value.
    pub fn soa_record(&self) -> Record {
        let mname = self.origin.child("ns1").unwrap_or_else(|_| self.origin.clone());
        let rname = self.origin.child("hostmaster").unwrap_or_else(|_| self.origin.clone());
        Record::new(
            self.origin.clone(),
            self.negative_ttl,
            Rdata::Soa(SoaRdata {
                mname,
                rname,
                serial: 1,
                refresh: 7_200,
                retry: 900,
                expire: 1_209_600,
                minimum: self.negative_ttl,
            }),
        )
    }

    /// Deterministic per-name address in `10.0.0.0/8` (FNV-1a over the
    /// display form, so it is stable across runs and platforms).
    fn synth_addr(name: &Name) -> Ipv4Addr {
        let mut hash: u32 = 0x811C_9DC5;
        for byte in name.to_string().bytes() {
            hash ^= u32::from(byte);
            hash = hash.wrapping_mul(0x0100_0193);
        }
        let [_, b, c, d] = hash.to_be_bytes();
        Ipv4Addr::new(10, b, c, d)
    }

    /// Whether this zone would answer `name`/`qtype` negatively (NXDOMAIN
    /// or NODATA).
    pub fn is_negative(&self, name: &Name, qtype: RecordType) -> bool {
        match self.mode {
            ZoneMode::Fixed(_) => false,
            ZoneMode::Synth => {
                !name.is_subdomain_of(&self.origin)
                    || name.labels().first().is_some_and(|l| l.starts_with("nx"))
                    || qtype != RecordType::A
            }
        }
    }

    /// The authoritative response to `query`.
    pub fn answer(&self, query: &Message) -> Message {
        let Some(q) = query.question() else {
            return Message::response(query, Rcode::FormErr, Vec::new());
        };
        match self.mode {
            ZoneMode::Fixed(addr) => Message::fixed_a_response(query, addr, self.ttl),
            ZoneMode::Synth => {
                let nx = !q.name.is_subdomain_of(&self.origin)
                    || q.name.labels().first().is_some_and(|l| l.starts_with("nx"));
                if nx {
                    let mut m = Message::response(query, Rcode::NxDomain, Vec::new());
                    m.authorities.push(self.soa_record());
                    m
                } else if q.qtype != RecordType::A {
                    // NODATA: the name exists, the type does not.
                    let mut m = Message::response(query, Rcode::NoError, Vec::new());
                    m.authorities.push(self.soa_record());
                    m
                } else {
                    let addr = Zone::synth_addr(&q.name);
                    let record = Record::new(q.name.clone(), self.ttl, Rdata::A(addr));
                    Message::response(query, Rcode::NoError, vec![record])
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn origin() -> Name {
        Name::parse("dohmark.test").unwrap()
    }

    #[test]
    fn fixed_zone_matches_the_legacy_echo_response() {
        let zone = Zone::fixed(Ipv4Addr::new(192, 0, 2, 1), 300);
        let query = Message::query(7, &Name::parse("anything.example").unwrap(), RecordType::A);
        assert_eq!(
            zone.answer(&query),
            Message::fixed_a_response(&query, Ipv4Addr::new(192, 0, 2, 1), 300)
        );
    }

    #[test]
    fn synth_zone_answers_are_deterministic_and_distinct() {
        let zone = Zone::synth(origin(), 300, 30);
        let q = |label: &str| Message::query(1, &origin().child(label).unwrap(), RecordType::A);
        let a1 = zone.answer(&q("wwwwwww1"));
        let a2 = zone.answer(&q("wwwwwww2"));
        assert_eq!(a1, zone.answer(&q("wwwwwww1")), "same name, same answer");
        assert_eq!(a1.answers.len(), 1);
        assert_eq!(a1.answers[0].ttl, 300);
        assert_ne!(a1.answers[0].rdata, a2.answers[0].rdata, "names hash apart");
    }

    #[test]
    fn nx_labels_and_foreign_names_get_nxdomain_with_soa() {
        let zone = Zone::synth(origin(), 300, 45);
        for name in [origin().child("nxdead01").unwrap(), Name::parse("other.example").unwrap()] {
            let resp = zone.answer(&Message::query(2, &name, RecordType::A));
            assert_eq!(resp.header.rcode, Rcode::NxDomain);
            assert!(resp.answers.is_empty());
            assert_eq!(resp.authorities.len(), 1, "SOA must ride in the authority section");
            let soa = &resp.authorities[0];
            assert_eq!(soa.ttl, 45);
            assert!(matches!(&soa.rdata, Rdata::Soa(s) if s.minimum == 45));
            assert!(zone.is_negative(&name, RecordType::A));
        }
    }

    #[test]
    fn non_a_queries_get_nodata_with_soa() {
        let zone = Zone::synth(origin(), 300, 30);
        let resp =
            zone.answer(&Message::query(3, &origin().child("wwwwwww1").unwrap(), RecordType::Aaaa));
        assert_eq!(resp.header.rcode, Rcode::NoError);
        assert!(resp.answers.is_empty());
        assert_eq!(resp.authorities.len(), 1);
    }
}
