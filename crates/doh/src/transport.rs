//! The unified transport configuration and factory behind the paper's
//! transport matrix.
//!
//! A [`TransportConfig`] names one cell of the matrix — transport kind ×
//! [`ReusePolicy`] × TLS resumption — plus the topology parameters every
//! cell shares (link characteristics, the answer the resolver serves).
//! [`TransportConfig::build_server`] / [`TransportConfig::build_client`]
//! are [`Driver`](crate::Driver) registration factories, so experiment
//! harnesses iterate over configs instead of naming concrete client/server
//! types:
//!
//! ```
//! use dohmark_dns_wire::Name;
//! use dohmark_doh::{Driver, TransportConfig};
//! use dohmark_netsim::Sim;
//!
//! for cfg in TransportConfig::matrix() {
//!     let mut sim = Sim::new(1);
//!     let stub = sim.add_host("stub");
//!     let resolver = sim.add_host("resolver");
//!     sim.add_link(stub, resolver, cfg.link);
//!     let mut driver = Driver::new();
//!     driver.register(&mut sim, |sim| cfg.build_server(sim, resolver));
//!     let client = driver.register_resolver(&mut sim, |_| cfg.build_client(stub, resolver));
//!     let name = Name::parse("example.com").unwrap();
//!     let response = driver.resolve(&mut sim, client, &name, 1);
//!     assert!(response.is_some(), "{} failed", cfg.label());
//! }
//! ```

use crate::resolver::ServerBackend;
use crate::{
    Do53Client, Do53Server, DohH1Client, DohH1Server, DohH2Client, DohH2Server, DotClient,
    DotServer, Endpoint, Resolver, ReusePolicy, UdpRetry,
};
use dohmark_netsim::{HostId, LinkConfig, Sim};
use dohmark_tls_model::{TlsConfig, TlsVersion, ALPN_DOT, ALPN_H2, ALPN_HTTP11};
use std::net::Ipv4Addr;

/// The four transports of the paper's cost matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportKind {
    /// Classic DNS over UDP (§3 baseline).
    Do53,
    /// DNS over TLS (RFC 7858).
    Dot,
    /// DNS over HTTPS on HTTP/1.1.
    DohH1,
    /// DNS over HTTPS on HTTP/2.
    DohH2,
}

impl TransportKind {
    /// All kinds, in the paper's cheap-to-expensive presentation order.
    pub const ALL: [TransportKind; 4] =
        [TransportKind::Do53, TransportKind::Dot, TransportKind::DohH1, TransportKind::DohH2];

    /// Short lowercase label, e.g. `doh-h2`.
    pub fn label(self) -> &'static str {
        match self {
            TransportKind::Do53 => "do53",
            TransportKind::Dot => "dot",
            TransportKind::DohH1 => "doh-h1",
            TransportKind::DohH2 => "doh-h2",
        }
    }

    /// The well-known server port (53 / 853 / 443).
    pub fn port(self) -> u16 {
        match self {
            TransportKind::Do53 => 53,
            TransportKind::Dot => 853,
            TransportKind::DohH1 | TransportKind::DohH2 => 443,
        }
    }

    /// The ALPN protocol the client offers, if the transport runs on TLS.
    pub fn alpn(self) -> Option<&'static str> {
        match self {
            TransportKind::Do53 => None,
            TransportKind::Dot => Some(ALPN_DOT),
            TransportKind::DohH1 => Some(ALPN_HTTP11),
            TransportKind::DohH2 => Some(ALPN_H2),
        }
    }

    /// Whether the transport carries TLS (everything but Do53).
    pub fn uses_tls(self) -> bool {
        self != TransportKind::Do53
    }
}

/// One cell of the transport matrix plus shared topology parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportConfig {
    /// Which transport to build.
    pub kind: TransportKind,
    /// Fresh connection per query vs. one persistent connection
    /// (ignored by Do53, where every query is its own datagram exchange).
    pub reuse: ReusePolicy,
    /// TLS protocol version for TLS-based transports.
    pub tls_version: TlsVersion,
    /// Resume a TLS session instead of a full handshake.
    pub resumption: bool,
    /// Server name (SNI and the HTTP `host`/`:authority` value).
    pub sni: String,
    /// Link characteristics between stub and resolver.
    pub link: LinkConfig,
    /// The A record every query is answered with.
    pub answer: Ipv4Addr,
    /// Answer TTL.
    pub ttl: u32,
    /// Attribution id for persistent-connection setup bytes; fresh
    /// connections charge setup to the resolution that opened them.
    pub conn_attr: u32,
    /// Retransmission policy for Do53 (ignored by the TLS transports,
    /// whose TCP layer already retransmits). `None` — the default —
    /// models a stub with no application retry, so a lost datagram loses
    /// the resolution; lossy-link experiments set
    /// [`UdpRetry::standard`].
    pub udp_retry: Option<UdpRetry>,
}

impl TransportConfig {
    /// A matrix cell with the defaults the examples use: TLS 1.3, no
    /// resumption, the [`LinkConfig::clean_broadband`] link
    /// (14 ms/50 Mbit s⁻¹) and `dns.example.net`.
    pub fn new(kind: TransportKind, reuse: ReusePolicy) -> TransportConfig {
        TransportConfig {
            kind,
            reuse,
            tls_version: TlsVersion::Tls13,
            resumption: false,
            sni: "dns.example.net".to_string(),
            link: LinkConfig::clean_broadband(),
            answer: Ipv4Addr::new(192, 0, 2, 1),
            ttl: 300,
            conn_attr: 0,
            udp_retry: None,
        }
    }

    /// Enables TLS session resumption (builder style).
    pub fn resumed(mut self) -> TransportConfig {
        self.resumption = true;
        self
    }

    /// Enables Do53 datagram retransmission (builder style); a no-op for
    /// the TLS transports, which never consult the policy.
    pub fn with_udp_retry(mut self, retry: UdpRetry) -> TransportConfig {
        self.udp_retry = Some(retry);
        self
    }

    /// Human-readable cell label, e.g. `doh-h2 persistent resumed`.
    pub fn label(&self) -> String {
        if self.kind == TransportKind::Do53 {
            return self.kind.label().to_string();
        }
        let resumed = if self.resumption { " resumed" } else { "" };
        format!("{} {}{}", self.kind.label(), self.reuse.label(), resumed)
    }

    /// The TLS configuration this cell implies (`None` for Do53).
    pub fn tls(&self) -> Option<TlsConfig> {
        let alpn = self.kind.alpn()?;
        Some(TlsConfig {
            version: self.tls_version,
            resumption: self.resumption,
            ..TlsConfig::for_server(&self.sni).alpn(alpn)
        })
    }

    /// The full matrix the `transport_shootout` example iterates: Do53,
    /// plus every TLS transport in {fresh, persistent} and, for the fresh
    /// cells, the TLS-resumption variant — ten cells.
    pub fn matrix() -> Vec<TransportConfig> {
        let mut cells = vec![TransportConfig::new(TransportKind::Do53, ReusePolicy::Fresh)];
        for kind in [TransportKind::Dot, TransportKind::DohH1, TransportKind::DohH2] {
            cells.push(TransportConfig::new(kind, ReusePolicy::Fresh));
            cells.push(TransportConfig::new(kind, ReusePolicy::Fresh).resumed());
            cells.push(TransportConfig::new(kind, ReusePolicy::Persistent));
        }
        cells
    }

    /// Builds this cell's server on `host`, answering with the config's
    /// fixed `answer`/`ttl`. Designed as a
    /// [`Driver::register`](crate::Driver::register) factory, so handles
    /// it binds get the registering endpoint's owner id.
    pub fn build_server(&self, sim: &mut Sim, host: HostId) -> Box<dyn Endpoint> {
        self.build_server_with(sim, host, ServerBackend::fixed(self.answer, self.ttl))
    }

    /// [`TransportConfig::build_server`] with an explicit backend — a
    /// synthetic [`Zone`](crate::Zone) or a shared caching
    /// [`RecursiveResolver`](crate::RecursiveResolver).
    pub fn build_server_with(
        &self,
        sim: &mut Sim,
        host: HostId,
        backend: ServerBackend,
    ) -> Box<dyn Endpoint> {
        let port = self.kind.port();
        match self.kind {
            TransportKind::Do53 => Box::new(Do53Server::bind_with(sim, host, port, backend)),
            TransportKind::Dot => {
                let tls = self.tls().expect("dot uses tls");
                Box::new(DotServer::bind_with(sim, host, port, tls, backend))
            }
            TransportKind::DohH1 => {
                let tls = self.tls().expect("doh uses tls");
                Box::new(DohH1Server::bind_with(sim, host, port, tls, backend))
            }
            TransportKind::DohH2 => {
                let tls = self.tls().expect("doh uses tls");
                Box::new(DohH2Server::bind_with(sim, host, port, tls, backend))
            }
        }
    }

    /// Builds this cell's client on `stub`, querying the server on
    /// `resolver` at the transport's well-known port. Clients bind their
    /// handles lazily (at the first query), so this needs no simulator —
    /// but register it through
    /// [`Driver::register_resolver`](crate::Driver::register_resolver) so
    /// those lazy handles get the right owner id.
    pub fn build_client(&self, stub: HostId, resolver: HostId) -> Box<dyn Resolver> {
        let server_addr = (resolver, self.kind.port());
        match self.kind {
            TransportKind::Do53 => match self.udp_retry {
                Some(retry) => Box::new(Do53Client::with_retry(stub, server_addr, retry)),
                None => Box::new(Do53Client::new(stub, server_addr)),
            },
            TransportKind::Dot => {
                let tls = self.tls().expect("dot uses tls");
                Box::new(DotClient::new(stub, server_addr, tls, self.reuse, self.conn_attr))
            }
            TransportKind::DohH1 => {
                let tls = self.tls().expect("doh uses tls");
                Box::new(DohH1Client::new(
                    stub,
                    server_addr,
                    &self.sni,
                    tls,
                    self.reuse,
                    self.conn_attr,
                ))
            }
            TransportKind::DohH2 => {
                let tls = self.tls().expect("doh uses tls");
                Box::new(DohH2Client::new(
                    stub,
                    server_addr,
                    &self.sni,
                    tls,
                    self.reuse,
                    self.conn_attr,
                ))
            }
        }
    }
}

/// Builds the configured client/server pair on two fresh hosts ("stub",
/// "resolver") joined by the config's link — one matrix cell for the
/// deprecated broadcast drive model; registry topologies use the
/// `build_server`/`build_client` factories with a
/// [`Driver`](crate::Driver) instead.
pub fn build_pair(sim: &mut Sim, cfg: &TransportConfig) -> (Box<dyn Resolver>, Box<dyn Endpoint>) {
    let stub = sim.add_host("stub");
    let resolver = sim.add_host("resolver");
    sim.add_link(stub, resolver, cfg.link);
    build_pair_on(sim, stub, resolver, cfg)
}

/// [`build_pair`] on an existing topology: `stub` and `resolver` must
/// already be linked. Lets multi-client experiments share one resolver
/// host.
pub fn build_pair_on(
    sim: &mut Sim,
    stub: HostId,
    resolver: HostId,
    cfg: &TransportConfig,
) -> (Box<dyn Resolver>, Box<dyn Endpoint>) {
    (cfg.build_client(stub, resolver), cfg.build_server(sim, resolver))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dohmark_dns_wire::Name;
    use dohmark_tls_model::select_alpn;

    #[test]
    fn matrix_covers_every_kind_and_reuse_mode() {
        let cells = TransportConfig::matrix();
        assert_eq!(cells.len(), 10);
        for kind in TransportKind::ALL {
            assert!(cells.iter().any(|c| c.kind == kind), "{kind:?} missing");
        }
        for kind in [TransportKind::Dot, TransportKind::DohH1, TransportKind::DohH2] {
            for reuse in [ReusePolicy::Fresh, ReusePolicy::Persistent] {
                assert!(
                    cells.iter().any(|c| c.kind == kind && c.reuse == reuse),
                    "{kind:?}/{reuse:?} missing"
                );
            }
        }
        // Labels are unique (they key result tables).
        let mut labels: Vec<String> = cells.iter().map(TransportConfig::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), cells.len());
    }

    #[test]
    fn every_matrix_cell_resolves_end_to_end() {
        for cfg in TransportConfig::matrix() {
            let mut sim = Sim::new(5);
            let stub = sim.add_host("stub");
            let resolver = sim.add_host("resolver");
            sim.add_link(stub, resolver, cfg.link);
            let mut driver = crate::Driver::new();
            driver.register(&mut sim, |sim| cfg.build_server(sim, resolver));
            let client = driver.register_resolver(&mut sim, |_| cfg.build_client(stub, resolver));
            let name = Name::parse("abcdefgh.dohmark.test").unwrap();
            for id in 1..=2u16 {
                let response = driver.resolve(&mut sim, client, &name, id);
                assert!(response.is_some(), "{} id {id} failed", cfg.label());
            }
            driver.close(&mut sim, client);
            driver.run_until_quiescent(&mut sim);
        }
    }

    #[test]
    fn alpn_offers_match_what_a_doh_server_selects() {
        let h2 = TransportConfig::new(TransportKind::DohH2, ReusePolicy::Fresh);
        let offers = h2.tls().unwrap().alpn;
        assert_eq!(select_alpn(&offers, &[ALPN_H2, ALPN_HTTP11]), Some(ALPN_H2));
        let h1 = TransportConfig::new(TransportKind::DohH1, ReusePolicy::Fresh);
        let offers = h1.tls().unwrap().alpn;
        assert_eq!(select_alpn(&offers, &[ALPN_H2, ALPN_HTTP11]), Some(ALPN_HTTP11));
        assert!(TransportConfig::new(TransportKind::Do53, ReusePolicy::Fresh).tls().is_none());
    }

    #[test]
    fn resumption_shrinks_fresh_tls_bytes() {
        let run = |cfg: &TransportConfig| {
            let mut sim = Sim::new(9);
            let stub = sim.add_host("stub");
            let resolver = sim.add_host("resolver");
            sim.add_link(stub, resolver, cfg.link);
            let mut driver = crate::Driver::new();
            driver.register(&mut sim, |sim| cfg.build_server(sim, resolver));
            let client = driver.register_resolver(&mut sim, |_| cfg.build_client(stub, resolver));
            let name = Name::parse("abcdefgh.dohmark.test").unwrap();
            driver.resolve(&mut sim, client, &name, 1).unwrap();
            driver.run_until_quiescent(&mut sim);
            sim.meter.cost(1).layers.tls
        };
        for kind in [TransportKind::Dot, TransportKind::DohH1, TransportKind::DohH2] {
            let full = run(&TransportConfig::new(kind, ReusePolicy::Fresh));
            let resumed = run(&TransportConfig::new(kind, ReusePolicy::Fresh).resumed());
            // Resumption elides the ~2.3 kB certificate chain.
            assert!(resumed + 2000 < full, "{kind:?}: {resumed} vs {full}");
        }
    }
}
