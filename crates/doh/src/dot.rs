//! DNS over TLS (DoT, RFC 7858) client and server.
//!
//! Wire shape, byte for byte what a real DoT stack produces:
//!
//! * TCP to port 853 (simulated by `netsim::tcp`, so SYN options, ACKs and
//!   retransmissions are all charged).
//! * The TLS handshake flights of the configured [`TlsConfig`], sent as
//!   opaque byte bursts tagged [`LayerTag::Tls`].
//! * Application data framed into TLS records: the 5-byte
//!   record header and
//!   16-byte AEAD tag are tagged `Tls`, the carried plaintext — the
//!   RFC 7766 2-byte length prefix plus the DNS message, which the paper
//!   counts as DNS — is tagged
//!   [`LayerTag::DnsPayload`](dohmark_netsim::LayerTag).
//!
//! The [`ReusePolicy`] decides whether each resolution pays the full
//! TCP+TLS setup ([`ReusePolicy::Fresh`], the paper's cold case) or shares
//! one long-lived connection ([`ReusePolicy::Persistent`], which amortises
//! the handshake to near-zero per-resolution overhead).

use crate::resolver::ServerBackend;
use crate::tls_stream::TlsStream;
use crate::{Endpoint, Resolver};
use dohmark_dns_wire::{Message, Name, RecordType};
use dohmark_netsim::{HostId, LayerTag, ListenerId, Side, Sim, TcpHandle, Wake};
use dohmark_tls_model::TlsConfig;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Connection-reuse policy of a TLS-based client (DoT or DoH).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReusePolicy {
    /// Open a fresh connection per query and close it after the response —
    /// every resolution pays the whole TCP + TLS handshake (the paper's
    /// cold-connection case).
    Fresh,
    /// Keep one connection open and pipeline all queries over it — the
    /// handshake is paid once and amortised (the paper's persistent case).
    Persistent,
}

impl ReusePolicy {
    /// Short lowercase label (`fresh` / `persistent`) used in cell labels
    /// and result-table keys.
    pub fn label(self) -> &'static str {
        match self {
            ReusePolicy::Fresh => "fresh",
            ReusePolicy::Persistent => "persistent",
        }
    }
}

/// Extracts complete RFC 7766 2-byte-length-prefixed DNS messages from
/// the front of `buf`; undecodable payloads are skipped, exactly like a
/// real resolver drops garbage.
fn drain_prefixed_messages(buf: &mut Vec<u8>) -> Vec<Message> {
    let mut messages = Vec::new();
    while buf.len() >= 2 {
        let len = usize::from(u16::from_be_bytes([buf[0], buf[1]]));
        if buf.len() < 2 + len {
            break;
        }
        if let Ok(msg) = Message::decode(&buf[2..2 + len]) {
            messages.push(msg);
        }
        buf.drain(..2 + len);
    }
    messages
}

/// A DoT connection: the shared TLS stream plus length-prefix reassembly.
#[derive(Debug)]
struct DotConn {
    tls: TlsStream,
    rx: Vec<u8>,
}

impl DotConn {
    fn new(tls: TlsStream) -> DotConn {
        DotConn { tls, rx: Vec::new() }
    }

    fn advance(&mut self, sim: &mut Sim, incoming: &[u8]) -> Vec<Message> {
        let plaintext = self.tls.advance(sim, incoming);
        self.rx.extend_from_slice(&plaintext);
        drain_prefixed_messages(&mut self.rx)
    }

    /// Seals `message` (with its 2-byte length prefix) into TLS records,
    /// attributing the record framing to `Tls` and the prefixed DNS bytes
    /// to `DnsPayload`, all under attribution `attr`.
    fn send_message(&mut self, sim: &mut Sim, message: &Message, attr: u32) {
        let wire = message.encode();
        let mut plaintext = Vec::with_capacity(2 + wire.len());
        plaintext.extend_from_slice(&(wire.len() as u16).to_be_bytes());
        plaintext.extend_from_slice(&wire);
        self.tls.send_segments(sim, attr, &[(LayerTag::DnsPayload, &plaintext)]);
    }
}

/// A DoT client resolving names against one server.
#[derive(Debug)]
pub struct DotClient {
    host: HostId,
    server: (HostId, u16),
    tls_cfg: TlsConfig,
    policy: ReusePolicy,
    /// Attribution for connection setup under [`ReusePolicy::Persistent`];
    /// fresh connections charge setup to the resolution that opened them.
    conn_attr: u32,
    conn: Option<DotConn>,
    /// Queries accepted before the connection established.
    queued: Vec<(u16, Name)>,
    /// Queries sent (or queued) whose response has not yet arrived; a
    /// fresh connection closes only once this drains, so pipelining
    /// several queries onto one cold connection loses none of them.
    inflight: usize,
    responses: Vec<Message>,
}

impl DotClient {
    /// A client on `host` for `server`, usually `(resolver, 853)`.
    ///
    /// Under [`ReusePolicy::Persistent`] the TCP+TLS setup bytes are
    /// attributed to `conn_attr`; under [`ReusePolicy::Fresh`] each
    /// resolution's setup is attributed to its own transaction id.
    pub fn new(
        host: HostId,
        server: (HostId, u16),
        tls_cfg: TlsConfig,
        policy: ReusePolicy,
        conn_attr: u32,
    ) -> DotClient {
        DotClient {
            host,
            server,
            tls_cfg,
            policy,
            conn_attr,
            conn: None,
            queued: Vec::new(),
            inflight: 0,
            responses: Vec::new(),
        }
    }

    fn flush(&mut self, sim: &mut Sim) {
        let Some(conn) = self.conn.as_mut() else { return };
        if !conn.tls.established() {
            return;
        }
        for (id, name) in self.queued.drain(..) {
            let query = Message::query(id, &name, RecordType::A);
            conn.send_message(sim, &query, u32::from(id));
        }
    }

    /// Whether the client currently holds an established connection.
    pub fn is_connected(&self) -> bool {
        self.conn.as_ref().is_some_and(|c| c.tls.established())
    }

    /// Sends the query and runs the simulation until its response arrives,
    /// broadcasting every wake to `self` and `peer` — a two-endpoint
    /// convenience; registry topologies use
    /// [`Driver::resolve`](crate::Driver::resolve) instead.
    pub fn resolve(
        &mut self,
        sim: &mut Sim,
        peer: &mut dyn Endpoint,
        name: &Name,
        id: u16,
    ) -> Option<Message> {
        crate::resolve_with_extras_impl(sim, self, peer, &mut [], name, id)
    }
}

impl Resolver for DotClient {
    /// Queues an A query for `name` with transaction id `id`, opening a
    /// connection if none is usable. The query is transmitted as soon as
    /// the TLS handshake completes (immediately, when already established).
    fn send_query(&mut self, sim: &mut Sim, name: &Name, id: u16) {
        let dead = self.conn.as_ref().is_some_and(|c| sim.tcp_has_failed(c.tls.handle));
        if self.conn.is_none() || dead {
            let attr = match self.policy {
                ReusePolicy::Fresh => u32::from(id),
                ReusePolicy::Persistent => self.conn_attr,
            };
            sim.set_attr(attr);
            let handle = sim.tcp_connect(self.host, self.server);
            self.conn = Some(DotConn::new(TlsStream::new(handle, &self.tls_cfg, attr)));
            // Queries in flight on a dead connection are lost for good
            // (no application retries are modelled).
            self.inflight = 0;
        }
        self.queued.push((id, name.clone()));
        self.inflight += 1;
        self.flush(sim);
    }

    fn take_response(&mut self, id: u16) -> Option<Message> {
        let idx = self.responses.iter().position(|m| m.header.id == id)?;
        Some(self.responses.remove(idx))
    }

    /// Closes the current connection, if any (TCP FIN), abandoning
    /// queries that were still queued for it.
    fn close(&mut self, sim: &mut Sim) {
        self.queued.clear();
        self.inflight = 0;
        if let Some(conn) = self.conn.take() {
            sim.tcp_close(conn.tls.handle);
        }
    }
}

impl Endpoint for DotClient {
    fn on_wake(&mut self, sim: &mut Sim, wake: &Wake) {
        let Some(conn) = self.conn.as_mut() else { return };
        match *wake {
            Wake::TcpConnected { conn: handle, .. } if handle == conn.tls.handle => {
                // TCP is up: kick off the TLS handshake (ClientHello).
                let _ = conn.advance(sim, &[]);
                self.flush(sim);
            }
            Wake::TcpReadable { conn: handle, .. } if handle == conn.tls.handle => {
                let data = sim.tcp_recv(handle);
                let was_established = conn.tls.established();
                let responses = conn.advance(sim, &data);
                self.inflight = self.inflight.saturating_sub(responses.len());
                self.responses.extend(responses);
                if !was_established && conn.tls.established() {
                    self.flush(sim);
                }
                if self.inflight == 0 && self.policy == ReusePolicy::Fresh {
                    // Cold connections are one-shot: close once every
                    // outstanding answer has arrived.
                    let handle = self.conn.take().expect("conn is live").tls.handle;
                    sim.tcp_close(handle);
                }
            }
            Wake::TcpFin { conn: handle, .. } if handle == conn.tls.handle => {
                // Server closed on us; drop the connection state so the
                // next query reconnects.
                sim.tcp_close(handle);
                self.conn = None;
            }
            _ => {}
        }
    }
}

/// A DoT server answering from a pluggable [`ServerBackend`] —
/// authoritative zone data or a shared caching recursive resolver.
#[derive(Debug)]
pub struct DotServer {
    listener: ListenerId,
    tls_cfg: TlsConfig,
    backend: ServerBackend,
    /// Keyed lookup only (the wake's own handle) — never iterated, so
    /// the randomized order is unobservable (no-unordered-iteration).
    conns: HashMap<TcpHandle, DotConn>,
    /// Parked queries: waiter token → the connection expecting the answer.
    /// Keyed lookup only: drained in the backend's completion order.
    waiters: HashMap<u64, TcpHandle>,
    next_waiter: u64,
}

impl DotServer {
    /// Listens on `(host, port)` answering every query with one fixed A
    /// record `answer`/`ttl`. The TLS config must match the clients' (both
    /// ends of the byte model derive flight sizes from it).
    pub fn bind(
        sim: &mut Sim,
        host: HostId,
        port: u16,
        tls_cfg: TlsConfig,
        answer: Ipv4Addr,
        ttl: u32,
    ) -> DotServer {
        DotServer::bind_with(sim, host, port, tls_cfg, ServerBackend::fixed(answer, ttl))
    }

    /// Listens on `(host, port)` answering from `backend`.
    pub fn bind_with(
        sim: &mut Sim,
        host: HostId,
        port: u16,
        tls_cfg: TlsConfig,
        backend: ServerBackend,
    ) -> DotServer {
        let listener = sim.tcp_listen(host, port);
        DotServer {
            listener,
            tls_cfg,
            backend,
            conns: HashMap::new(),
            waiters: HashMap::new(),
            next_waiter: 1,
        }
    }

    /// Established-and-open connection count (for tests and reports).
    pub fn open_connections(&self) -> usize {
        self.conns.len()
    }

    /// The backend's cache statistics, if it has a cache.
    pub fn cache_stats(&self) -> Option<crate::cache::CacheStats> {
        self.backend.cache_stats()
    }
}

impl Endpoint for DotServer {
    fn on_wake(&mut self, sim: &mut Sim, wake: &Wake) {
        // Upstream completions first: answers for queries parked by a
        // recursive backend go out on the connection they arrived on
        // (silently dropped if that connection is gone — like a real
        // resolver whose client hung up mid-recursion).
        for (waiter, response) in self.backend.poll(sim, wake) {
            let Some(handle) = self.waiters.remove(&waiter) else { continue };
            if let Some(conn) = self.conns.get_mut(&handle) {
                conn.send_message(sim, &response, u32::from(response.header.id));
            }
        }
        match *wake {
            Wake::TcpAccepted { listener, conn: handle, .. } if listener == self.listener => {
                // Setup bytes we send are charged to whatever attribution
                // the connecting client's setup used (current attr).
                let attr = sim.attr();
                self.conns
                    .insert(handle, DotConn::new(TlsStream::new(handle, &self.tls_cfg, attr)));
            }
            Wake::TcpReadable { conn: handle, .. } if handle.side == Side::Server => {
                let Some(conn) = self.conns.get_mut(&handle) else { return };
                let data = sim.tcp_recv(handle);
                for query in conn.advance(sim, &data) {
                    let waiter = self.next_waiter;
                    self.next_waiter += 1;
                    match self.backend.answer(sim, &query, waiter) {
                        Some(response) => {
                            let conn = self.conns.get_mut(&handle).expect("conn is live");
                            conn.send_message(sim, &response, u32::from(query.header.id));
                        }
                        None => {
                            self.waiters.insert(waiter, handle);
                        }
                    }
                }
            }
            Wake::TcpFin { conn: handle, .. }
                if handle.side == Side::Server && self.conns.remove(&handle).is_some() =>
            {
                sim.tcp_close(handle);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dohmark_netsim::LinkConfig;
    use dohmark_tls_model::handshake_bytes;
    use std::net::Ipv4Addr;

    fn dot_tls() -> TlsConfig {
        TlsConfig::for_server("dns.example.net").alpn("dot")
    }

    fn setup(seed: u64, policy: ReusePolicy) -> (Sim, DotClient, DotServer) {
        let mut sim = Sim::new(seed);
        let stub = sim.add_host("stub");
        let resolver = sim.add_host("resolver");
        sim.add_link(stub, resolver, LinkConfig::localhost());
        let server =
            DotServer::bind(&mut sim, resolver, 853, dot_tls(), Ipv4Addr::new(192, 0, 2, 7), 300);
        let client = DotClient::new(stub, (resolver, 853), dot_tls(), policy, 0);
        (sim, client, server)
    }

    #[test]
    fn cold_resolution_answers_and_charges_the_handshake() {
        let (mut sim, mut client, mut server) = setup(1, ReusePolicy::Fresh);
        let name = Name::parse("abcdefgh.dohmark.test").unwrap();
        let response = client.resolve(&mut sim, &mut server, &name, 1).unwrap();
        assert_eq!(response.answers[0].name, name);
        sim.drain();
        let cost = sim.meter.cost(1);
        // The resolution paid the whole TLS handshake plus two sealed
        // records (21 B overhead each way).
        let hs = handshake_bytes(&dot_tls()) as u64;
        assert_eq!(cost.layers.tls, hs + 2 * 21);
        // DNS bytes: 2-byte prefix + message, each way.
        let query_len = Message::query(1, &name, RecordType::A).encode().len() as u64;
        let resp_len = response.encode().len() as u64;
        assert_eq!(cost.layers.dns, query_len + resp_len + 4);
    }

    #[test]
    fn fresh_policy_closes_and_reopens_per_query() {
        let (mut sim, mut client, mut server) = setup(2, ReusePolicy::Fresh);
        let name = Name::parse("abcdefgh.dohmark.test").unwrap();
        for id in 1..=2u16 {
            client.resolve(&mut sim, &mut server, &name, id).unwrap();
            assert!(!client.is_connected(), "cold connection must close");
        }
        crate::drain_endpoints_impl(&mut sim, &mut [&mut client, &mut server]);
        assert_eq!(server.open_connections(), 0);
        let hs = handshake_bytes(&dot_tls()) as u64;
        // Both resolutions paid the full handshake independently.
        assert_eq!(sim.meter.cost(1).layers.tls, hs + 2 * 21);
        assert_eq!(sim.meter.cost(2).layers.tls, hs + 2 * 21);
    }

    #[test]
    fn persistent_policy_amortises_the_handshake() {
        let (mut sim, mut client, mut server) = setup(3, ReusePolicy::Persistent);
        let name = Name::parse("abcdefgh.dohmark.test").unwrap();
        for id in 1..=5u16 {
            client.resolve(&mut sim, &mut server, &name, id).unwrap();
        }
        assert!(client.is_connected());
        sim.drain();
        let hs = handshake_bytes(&dot_tls()) as u64;
        // Setup lives under the connection attribution…
        assert_eq!(sim.meter.cost(0).layers.tls, hs);
        // …and each resolution pays only per-record framing overhead.
        for id in 1..=5u32 {
            assert_eq!(sim.meter.cost(id).layers.tls, 2 * 21, "id {id}");
        }
    }

    #[test]
    fn fresh_connection_serves_all_pipelined_queries_before_closing() {
        let (mut sim, mut client, mut server) = setup(12, ReusePolicy::Fresh);
        let name = Name::parse("abcdefgh.dohmark.test").unwrap();
        // Two queries launched back-to-back share the cold connection; it
        // must not close after the first answer and strand the second.
        client.send_query(&mut sim, &name, 1);
        client.send_query(&mut sim, &name, 2);
        crate::drain_endpoints_impl(&mut sim, &mut [&mut client, &mut server]);
        assert!(client.take_response(1).is_some());
        assert!(client.take_response(2).is_some());
        assert!(!client.is_connected(), "cold connection closes once drained");
        assert_eq!(server.open_connections(), 0);
    }

    #[test]
    fn close_abandons_queued_queries() {
        let (mut sim, mut client, mut server) = setup(13, ReusePolicy::Persistent);
        let name = Name::parse("abcdefgh.dohmark.test").unwrap();
        // Query 1 is still queued (handshake pending) when the client
        // closes; it must not be retransmitted on the next connection.
        client.send_query(&mut sim, &name, 1);
        client.close(&mut sim);
        crate::drain_endpoints_impl(&mut sim, &mut [&mut client, &mut server]);
        assert!(client.take_response(1).is_none());
        let response = client.resolve(&mut sim, &mut server, &name, 2);
        assert!(response.is_some(), "a fresh query after close must work");
        crate::drain_endpoints_impl(&mut sim, &mut [&mut client, &mut server]);
        assert!(client.take_response(1).is_none(), "stale query 1 must stay abandoned");
    }

    #[test]
    fn explicit_close_tears_the_connection_down() {
        let (mut sim, mut client, mut server) = setup(6, ReusePolicy::Persistent);
        let name = Name::parse("abcdefgh.dohmark.test").unwrap();
        client.resolve(&mut sim, &mut server, &name, 1).unwrap();
        assert!(client.is_connected());
        client.close(&mut sim);
        crate::drain_endpoints_impl(&mut sim, &mut [&mut client, &mut server]);
        assert!(!client.is_connected());
        assert_eq!(server.open_connections(), 0);
    }

    #[test]
    fn tls12_and_resumption_configs_work_end_to_end() {
        use dohmark_tls_model::TlsVersion;
        for cfg in [
            TlsConfig { version: TlsVersion::Tls12, ..dot_tls() },
            TlsConfig { resumption: true, ..dot_tls() },
            TlsConfig { version: TlsVersion::Tls12, resumption: true, ..dot_tls() },
        ] {
            let mut sim = Sim::new(4);
            let stub = sim.add_host("stub");
            let resolver = sim.add_host("resolver");
            sim.add_link(stub, resolver, LinkConfig::localhost());
            let mut server = DotServer::bind(
                &mut sim,
                resolver,
                853,
                cfg.clone(),
                Ipv4Addr::new(192, 0, 2, 7),
                60,
            );
            let mut client =
                DotClient::new(stub, (resolver, 853), cfg.clone(), ReusePolicy::Fresh, 0);
            let name = Name::parse("abcdefgh.dohmark.test").unwrap();
            let response = client.resolve(&mut sim, &mut server, &name, 9);
            assert!(response.is_some(), "no response for {cfg:?}");
            sim.drain();
            assert!(sim.meter.cost(9).layers.tls >= handshake_bytes(&cfg) as u64);
        }
    }

    #[test]
    fn identical_seeds_reproduce_identical_dot_costs() {
        let run = |seed: u64| {
            let (mut sim, mut client, mut server) = setup(seed, ReusePolicy::Persistent);
            let name = Name::parse("abcdefgh.dohmark.test").unwrap();
            for id in 1..=3u16 {
                client.resolve(&mut sim, &mut server, &name, id).unwrap();
            }
            sim.drain();
            (sim.meter.total(), sim.now())
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn queries_survive_a_lossy_link_via_tcp_retransmission() {
        let mut sim = Sim::new(11);
        let stub = sim.add_host("stub");
        let resolver = sim.add_host("resolver");
        sim.add_link(stub, resolver, LinkConfig::localhost().loss(0.2));
        let mut server =
            DotServer::bind(&mut sim, resolver, 853, dot_tls(), Ipv4Addr::new(192, 0, 2, 7), 60);
        let mut client =
            DotClient::new(stub, (resolver, 853), dot_tls(), ReusePolicy::Persistent, 0);
        let name = Name::parse("abcdefgh.dohmark.test").unwrap();
        let response = client.resolve(&mut sim, &mut server, &name, 1).unwrap();
        assert_eq!(response.answers.len(), 1);
        assert!(sim.dropped_packets() > 0, "the link should actually have lost packets");
    }
}
