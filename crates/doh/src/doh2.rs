//! DNS over HTTPS on HTTP/2 (RFC 8484 over RFC 9113), with real HPACK.
//!
//! Wire shape, inside TLS records over simulated TCP:
//!
//! * Connection setup after the TLS handshake: the 24-byte client
//!   preface, a SETTINGS exchange (both directions plus ACKs) and the
//!   client's connection WINDOW_UPDATE — all tagged
//!   [`LayerTag::HttpMgmt`], the paper's "Mgmt" layer that makes a *cold*
//!   DoH/2 resolution the most expensive cell of the transport matrix.
//! * Per query: one HEADERS frame (HPACK-compressed `:method: POST`,
//!   `:path: /dns-query`, `content-type: application/dns-message`, …)
//!   tagged [`LayerTag::HttpHeader`], and one END_STREAM DATA frame with
//!   the raw DNS message tagged [`LayerTag::HttpBody`]; the response
//!   mirrors this with `:status: 200`. Client streams use odd ids 1, 3, 5…
//! * On a persistent connection the HPACK dynamic table turns the second
//!   and later queries' header blocks into a handful of index bytes — the
//!   header-byte shrinkage `examples/transport_shootout.rs` asserts.
//! * Graceful teardown sends GOAWAY (NO_ERROR) before the FIN, as real
//!   clients do; fresh connections do this after every response.

use crate::resolver::ServerBackend;
use crate::tls_stream::TlsStream;
use crate::{Endpoint, Resolver, ReusePolicy};
use dohmark_dns_wire::{Message, Name, RecordType};
use dohmark_httpsim::h2::{settings, Frame, FrameDecoder, PREFACE};
use dohmark_httpsim::hpack;
use dohmark_netsim::{HostId, LayerTag, ListenerId, Side, Sim, TcpHandle, Wake};
use dohmark_tls_model::TlsConfig;
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

use crate::doh1::{DNS_MESSAGE, DOH_PATH};

/// SETTINGS a browser-like DoH client announces.
const CLIENT_SETTINGS: [(u16, u32); 4] = [
    (settings::HEADER_TABLE_SIZE, hpack::DEFAULT_TABLE_SIZE as u32),
    (settings::ENABLE_PUSH, 0),
    (settings::INITIAL_WINDOW_SIZE, 131_072),
    (settings::MAX_FRAME_SIZE, 16_384),
];

/// The connection-window increment the client grants up front.
const CLIENT_WINDOW_BUMP: u32 = 12_517_377;

/// SETTINGS a resolver-like server announces.
const SERVER_SETTINGS: [(u16, u32); 3] = [
    (settings::HEADER_TABLE_SIZE, hpack::DEFAULT_TABLE_SIZE as u32),
    (settings::MAX_CONCURRENT_STREAMS, 100),
    (settings::INITIAL_WINDOW_SIZE, 65_535),
];

fn owned(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
    pairs.iter().map(|&(n, v)| (n.to_string(), v.to_string())).collect()
}

/// One end's HTTP/2 state over an established TLS stream.
#[derive(Debug)]
struct H2Conn {
    tls: TlsStream,
    frames: FrameDecoder,
    /// HPACK for header blocks this end sends.
    encoder: hpack::Encoder,
    /// HPACK for header blocks this end receives.
    decoder: hpack::Decoder,
    /// Reassembled DATA payloads per stream. Keyed lookup only (by the
    /// arriving frame's stream id) — never iterated, so the randomized
    /// order is unobservable (no-unordered-iteration).
    bodies: HashMap<u32, Vec<u8>>,
    /// Streams whose HEADERS carried a non-200 `:status`; their DATA is
    /// not a DNS answer (mirrors the h1 client's status check).
    /// Keyed membership test only — never iterated.
    failed_streams: HashSet<u32>,
    /// Whether the h2 layer has started (preface/SETTINGS sent).
    started: bool,
    /// Highest peer stream id seen (for GOAWAY).
    last_peer_stream: u32,
}

impl H2Conn {
    fn new(tls: TlsStream) -> H2Conn {
        H2Conn {
            tls,
            frames: FrameDecoder::new(),
            encoder: hpack::Encoder::new(),
            decoder: hpack::Decoder::new(),
            bodies: HashMap::new(),
            failed_streams: HashSet::new(),
            started: false,
            last_peer_stream: 0,
        }
    }

    /// Sends management frames (plus the preface when `preface` is set)
    /// as one tagged write under the connection's setup attribution.
    fn send_mgmt(&mut self, sim: &mut Sim, preface: bool, frames: &[Frame]) {
        let mut bytes = Vec::new();
        if preface {
            bytes.extend_from_slice(PREFACE);
        }
        for frame in frames {
            bytes.extend_from_slice(&frame.encode());
        }
        let attr = self.tls.setup_attr;
        self.tls.send_segments(sim, attr, &[(LayerTag::HttpMgmt, &bytes)]);
    }

    /// Sends one request/response: a HEADERS frame and an END_STREAM DATA
    /// frame, tagged header/body, under attribution `attr`.
    fn send_message(
        &mut self,
        sim: &mut Sim,
        stream_id: u32,
        headers: &[(String, String)],
        body: Vec<u8>,
        attr: u32,
    ) {
        let block = self.encoder.encode(headers);
        let headers_frame = Frame::Headers { stream_id, block, end_stream: false }.encode();
        let data_frame = Frame::Data { stream_id, data: body, end_stream: true }.encode();
        self.tls.send_segments(
            sim,
            attr,
            &[(LayerTag::HttpHeader, &headers_frame), (LayerTag::HttpBody, &data_frame)],
        );
    }

    /// Feeds received plaintext through the frame decoder, answering
    /// management frames; returns `(stream id, DNS message)` for every
    /// accepted stream plus the count of **all** completed streams —
    /// rejected (non-200 / undecodable) ones included, so callers can
    /// balance their in-flight bookkeeping like the h1 client does.
    fn ingest(&mut self, sim: &mut Sim, plaintext: &[u8]) -> (Vec<(u32, Message)>, usize) {
        self.frames.push(plaintext);
        let mut messages = Vec::new();
        let mut completed = 0usize;
        // A malformed frame (`Err`) poisons the connection: stop reading.
        while let Ok(Some(frame)) = self.frames.next_frame() {
            match frame {
                Frame::Settings { ack: false, .. } => {
                    self.send_mgmt(
                        sim,
                        false,
                        &[Frame::Settings { params: Vec::new(), ack: true }],
                    );
                }
                Frame::Settings { ack: true, .. } => {}
                Frame::Headers { stream_id, block, .. } => {
                    self.last_peer_stream = self.last_peer_stream.max(stream_id);
                    // Decoding also keeps the shared dynamic table in sync.
                    if let Ok(headers) = self.decoder.decode(&block) {
                        // A non-200 response is no DNS answer (requests
                        // carry no `:status` and stay accepted).
                        let failed =
                            headers.iter().any(|(name, value)| name == ":status" && value != "200");
                        if failed {
                            self.failed_streams.insert(stream_id);
                        }
                    }
                }
                Frame::Data { stream_id, data, end_stream } => {
                    self.last_peer_stream = self.last_peer_stream.max(stream_id);
                    let body = self.bodies.entry(stream_id).or_default();
                    body.extend_from_slice(&data);
                    if end_stream {
                        completed += 1;
                        let body = self.bodies.remove(&stream_id).unwrap_or_default();
                        if !self.failed_streams.remove(&stream_id) {
                            if let Ok(msg) = Message::decode(&body) {
                                messages.push((stream_id, msg));
                            }
                        }
                    }
                }
                Frame::Ping { data, ack: false } => {
                    self.send_mgmt(sim, false, &[Frame::Ping { data, ack: true }]);
                }
                Frame::Ping { ack: true, .. }
                | Frame::WindowUpdate { .. }
                | Frame::Goaway { .. }
                | Frame::RstStream { .. }
                | Frame::Unknown { .. } => {}
            }
        }
        (messages, completed)
    }
}

/// A DoH client speaking HTTP/2 to one resolver.
#[derive(Debug)]
pub struct DohH2Client {
    host: HostId,
    server: (HostId, u16),
    authority: String,
    tls_cfg: TlsConfig,
    policy: ReusePolicy,
    conn_attr: u32,
    conn: Option<H2Conn>,
    /// Next client-initiated stream id (odd: 1, 3, 5, …).
    next_stream_id: u32,
    queued: Vec<(u16, Name)>,
    /// Queries sent (or queued) whose response has not yet arrived; a
    /// fresh connection tears down only once this drains.
    inflight: usize,
    responses: Vec<Message>,
}

impl DohH2Client {
    /// A client on `host` for `server`, usually `(resolver, 443)`. The
    /// `authority` is the `:authority` pseudo-header (normally the SNI).
    /// Setup attribution follows the same rules as
    /// [`DotClient::new`](crate::DotClient::new).
    pub fn new(
        host: HostId,
        server: (HostId, u16),
        authority: &str,
        tls_cfg: TlsConfig,
        policy: ReusePolicy,
        conn_attr: u32,
    ) -> DohH2Client {
        DohH2Client {
            host,
            server,
            authority: authority.to_string(),
            tls_cfg,
            policy,
            conn_attr,
            conn: None,
            next_stream_id: 1,
            queued: Vec::new(),
            inflight: 0,
            responses: Vec::new(),
        }
    }

    /// Whether the client currently holds an established connection.
    pub fn is_connected(&self) -> bool {
        self.conn.as_ref().is_some_and(|c| c.tls.established())
    }

    fn flush(&mut self, sim: &mut Sim) {
        let Some(conn) = self.conn.as_mut() else { return };
        if !conn.tls.established() {
            return;
        }
        if !conn.started {
            conn.started = true;
            conn.send_mgmt(
                sim,
                true,
                &[
                    Frame::Settings { params: CLIENT_SETTINGS.to_vec(), ack: false },
                    Frame::WindowUpdate { stream_id: 0, increment: CLIENT_WINDOW_BUMP },
                ],
            );
        }
        for (id, name) in self.queued.drain(..) {
            let query = Message::query(id, &name, RecordType::A).encode();
            let headers = owned(&[
                (":method", "POST"),
                (":scheme", "https"),
                (":authority", &self.authority),
                (":path", DOH_PATH),
                ("accept", DNS_MESSAGE),
                ("content-type", DNS_MESSAGE),
                ("content-length", &query.len().to_string()),
            ]);
            let stream_id = self.next_stream_id;
            self.next_stream_id += 2;
            conn.send_message(sim, stream_id, &headers, query, u32::from(id));
        }
    }

    /// Sends GOAWAY and closes the TCP connection, dropping local state
    /// and abandoning queries that were still queued for it.
    fn teardown(&mut self, sim: &mut Sim) {
        self.queued.clear();
        self.inflight = 0;
        let Some(mut conn) = self.conn.take() else { return };
        if conn.tls.established() && conn.started {
            let last_stream_id = conn.last_peer_stream;
            conn.send_mgmt(
                sim,
                false,
                &[Frame::Goaway { last_stream_id, error_code: 0, debug: Vec::new() }],
            );
        }
        sim.tcp_close(conn.tls.handle);
    }

    /// Sends the query and runs the simulation until its response arrives,
    /// broadcasting every wake to `self` and `peer` — a two-endpoint
    /// convenience; registry topologies use
    /// [`Driver::resolve`](crate::Driver::resolve) instead.
    pub fn resolve(
        &mut self,
        sim: &mut Sim,
        peer: &mut dyn Endpoint,
        name: &Name,
        id: u16,
    ) -> Option<Message> {
        crate::resolve_with_extras_impl(sim, self, peer, &mut [], name, id)
    }
}

impl Resolver for DohH2Client {
    fn send_query(&mut self, sim: &mut Sim, name: &Name, id: u16) {
        let dead = self.conn.as_ref().is_some_and(|c| sim.tcp_has_failed(c.tls.handle));
        if self.conn.is_none() || dead {
            let attr = match self.policy {
                ReusePolicy::Fresh => u32::from(id),
                ReusePolicy::Persistent => self.conn_attr,
            };
            sim.set_attr(attr);
            let handle = sim.tcp_connect(self.host, self.server);
            self.conn = Some(H2Conn::new(TlsStream::new(handle, &self.tls_cfg, attr)));
            self.next_stream_id = 1;
            // Queries in flight on a dead connection are lost for good.
            self.inflight = 0;
        }
        self.queued.push((id, name.clone()));
        self.inflight += 1;
        self.flush(sim);
    }

    fn take_response(&mut self, id: u16) -> Option<Message> {
        let idx = self.responses.iter().position(|m| m.header.id == id)?;
        Some(self.responses.remove(idx))
    }

    /// Graceful teardown: GOAWAY (NO_ERROR), then the TCP FIN.
    fn close(&mut self, sim: &mut Sim) {
        self.teardown(sim);
    }
}

impl Endpoint for DohH2Client {
    fn on_wake(&mut self, sim: &mut Sim, wake: &Wake) {
        let Some(conn) = self.conn.as_mut() else { return };
        match *wake {
            Wake::TcpConnected { conn: handle, .. } if handle == conn.tls.handle => {
                let _ = conn.tls.advance(sim, &[]);
                self.flush(sim);
            }
            Wake::TcpReadable { conn: handle, .. } if handle == conn.tls.handle => {
                let data = sim.tcp_recv(handle);
                let was_established = conn.tls.established();
                let plaintext = conn.tls.advance(sim, &data);
                let (responses, completed) = conn.ingest(sim, &plaintext);
                self.inflight = self.inflight.saturating_sub(completed);
                self.responses.extend(responses.into_iter().map(|(_, msg)| msg));
                if !was_established && conn.tls.established() {
                    self.flush(sim);
                }
                if completed > 0 && self.inflight == 0 && self.policy == ReusePolicy::Fresh {
                    // Cold connections are one-shot: GOAWAY + FIN once
                    // every outstanding answer has arrived.
                    self.teardown(sim);
                }
            }
            Wake::TcpFin { conn: handle, .. } if handle == conn.tls.handle => {
                sim.tcp_close(handle);
                self.conn = None;
            }
            _ => {}
        }
    }
}

/// A DoH/2 server answering from a pluggable [`ServerBackend`] —
/// authoritative zone data or a shared caching recursive resolver.
#[derive(Debug)]
pub struct DohH2Server {
    listener: ListenerId,
    tls_cfg: TlsConfig,
    backend: ServerBackend,
    /// Keyed lookup only (the wake's own handle) — never iterated, so
    /// the randomized order is unobservable (no-unordered-iteration).
    conns: HashMap<TcpHandle, H2ServerConn>,
    /// Parked queries: waiter token → (connection, stream) expecting the
    /// answer. Streams multiplex, so — unlike h1 — a parked stream never
    /// blocks a cache hit on another stream of the same connection.
    /// Keyed lookup only: drained in the backend's completion order.
    waiters: HashMap<u64, (TcpHandle, u32)>,
    next_waiter: u64,
}

/// Server-side connection: shared h2 state plus preface stripping.
#[derive(Debug)]
struct H2ServerConn {
    h2: H2Conn,
    /// Client-preface bytes still expected before frames begin.
    preface_left: usize,
}

impl DohH2Server {
    /// Listens on `(host, port)` answering every query with one fixed A
    /// record `answer`/`ttl`.
    pub fn bind(
        sim: &mut Sim,
        host: HostId,
        port: u16,
        tls_cfg: TlsConfig,
        answer: Ipv4Addr,
        ttl: u32,
    ) -> DohH2Server {
        DohH2Server::bind_with(sim, host, port, tls_cfg, ServerBackend::fixed(answer, ttl))
    }

    /// Listens on `(host, port)` answering from `backend`.
    pub fn bind_with(
        sim: &mut Sim,
        host: HostId,
        port: u16,
        tls_cfg: TlsConfig,
        backend: ServerBackend,
    ) -> DohH2Server {
        let listener = sim.tcp_listen(host, port);
        DohH2Server {
            listener,
            tls_cfg,
            backend,
            conns: HashMap::new(),
            waiters: HashMap::new(),
            next_waiter: 1,
        }
    }

    /// Established-and-open connection count (for tests and reports).
    pub fn open_connections(&self) -> usize {
        self.conns.len()
    }

    /// The backend's cache statistics, if it has a cache.
    pub fn cache_stats(&self) -> Option<crate::cache::CacheStats> {
        self.backend.cache_stats()
    }

    /// Sends `response` on `stream_id` of `handle` with 200 headers,
    /// charged to the response's transaction id.
    fn send_response(conn: &mut H2ServerConn, sim: &mut Sim, stream_id: u32, response: &Message) {
        let body = response.encode();
        let headers = owned(&[
            (":status", "200"),
            ("content-type", DNS_MESSAGE),
            ("content-length", &body.len().to_string()),
            ("server", "dohmark"),
        ]);
        conn.h2.send_message(sim, stream_id, &headers, body, u32::from(response.header.id));
    }
}

impl Endpoint for DohH2Server {
    fn on_wake(&mut self, sim: &mut Sim, wake: &Wake) {
        // Upstream completions first: each answer goes out on the stream
        // its query arrived on (dropped if the connection is gone).
        for (waiter, response) in self.backend.poll(sim, wake) {
            let Some((handle, stream_id)) = self.waiters.remove(&waiter) else { continue };
            if let Some(conn) = self.conns.get_mut(&handle) {
                DohH2Server::send_response(conn, sim, stream_id, &response);
            }
        }
        match *wake {
            Wake::TcpAccepted { listener, conn: handle, .. } if listener == self.listener => {
                let attr = sim.attr();
                self.conns.insert(
                    handle,
                    H2ServerConn {
                        h2: H2Conn::new(TlsStream::new(handle, &self.tls_cfg, attr)),
                        preface_left: PREFACE.len(),
                    },
                );
            }
            Wake::TcpReadable { conn: handle, .. } if handle.side == Side::Server => {
                let Some(conn) = self.conns.get_mut(&handle) else { return };
                let data = sim.tcp_recv(handle);
                let plaintext = conn.h2.tls.advance(sim, &data);
                let skip = conn.preface_left.min(plaintext.len());
                conn.preface_left -= skip;
                if !conn.h2.started && conn.preface_left == 0 {
                    // The preface has arrived: announce our SETTINGS once.
                    conn.h2.started = true;
                    conn.h2.send_mgmt(
                        sim,
                        false,
                        &[Frame::Settings { params: SERVER_SETTINGS.to_vec(), ack: false }],
                    );
                }
                let (queries, _) = conn.h2.ingest(sim, &plaintext[skip..]);
                for (stream_id, query) in queries {
                    let waiter = self.next_waiter;
                    self.next_waiter += 1;
                    match self.backend.answer(sim, &query, waiter) {
                        Some(response) => {
                            let conn = self.conns.get_mut(&handle).expect("conn is live");
                            // Respond on the stream the query arrived on.
                            DohH2Server::send_response(conn, sim, stream_id, &response);
                        }
                        None => {
                            self.waiters.insert(waiter, (handle, stream_id));
                        }
                    }
                }
            }
            Wake::TcpFin { conn: handle, .. }
                if handle.side == Side::Server && self.conns.remove(&handle).is_some() =>
            {
                sim.tcp_close(handle);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dohmark_netsim::LinkConfig;
    use dohmark_tls_model::{handshake_bytes, ALPN_H2};
    use std::net::Ipv4Addr;

    fn h2_tls() -> TlsConfig {
        TlsConfig::for_server("dns.example.net").alpn(ALPN_H2)
    }

    fn setup(seed: u64, policy: ReusePolicy) -> (Sim, DohH2Client, DohH2Server) {
        let mut sim = Sim::new(seed);
        let stub = sim.add_host("stub");
        let resolver = sim.add_host("resolver");
        sim.add_link(stub, resolver, LinkConfig::localhost());
        let server =
            DohH2Server::bind(&mut sim, resolver, 443, h2_tls(), Ipv4Addr::new(192, 0, 2, 7), 300);
        let client =
            DohH2Client::new(stub, (resolver, 443), "dns.example.net", h2_tls(), policy, 0);
        (sim, client, server)
    }

    #[test]
    fn cold_resolution_pays_handshake_mgmt_headers_and_body() {
        let (mut sim, mut client, mut server) = setup(1, ReusePolicy::Fresh);
        let name = Name::parse("abcdefgh.dohmark.test").unwrap();
        let response = client.resolve(&mut sim, &mut server, &name, 1).unwrap();
        assert_eq!(response.answers[0].name, name);
        crate::drain_endpoints_impl(&mut sim, &mut [&mut client, &mut server]);
        let cost = sim.meter.cost(1);
        // Preface + SETTINGS both ways + ACKs + WINDOW_UPDATE + GOAWAY.
        assert!(cost.layers.http_mgmt > 100, "mgmt bytes {}", cost.layers.http_mgmt);
        // Bodies: the DNS messages plus one 9-byte DATA frame header each.
        let query_len = Message::query(1, &name, RecordType::A).encode().len() as u64;
        let resp_len = response.encode().len() as u64;
        assert_eq!(cost.layers.http_body, query_len + resp_len + 2 * 9);
        // HPACK-compressed headers beat h1 text but are still present.
        assert!(cost.layers.http_header > 2 * 9, "header bytes {}", cost.layers.http_header);
        assert!(cost.layers.tls >= handshake_bytes(&h2_tls()) as u64);
        assert!(!client.is_connected(), "cold connection must close");
        assert_eq!(server.open_connections(), 0, "server saw the FIN");
    }

    #[test]
    fn persistent_hpack_shrinks_headers_after_the_first_query() {
        let (mut sim, mut client, mut server) = setup(2, ReusePolicy::Persistent);
        let name_gen = |i: u64| Name::parse(&format!("abcdefg{i}.dohmark.test")).unwrap();
        for id in 1..=4u16 {
            client.resolve(&mut sim, &mut server, &name_gen(u64::from(id)), id).unwrap();
        }
        assert!(client.is_connected());
        sim.drain();
        let first = sim.meter.cost(1).layers.http_header;
        let later: Vec<u64> = (2..=4u32).map(|id| sim.meter.cost(id).layers.http_header).collect();
        // Same-shape queries: every header but none of the values change,
        // so the dynamic table turns later blocks into pure index bytes.
        assert!(later.iter().all(|&l| l < first / 2), "first {first} B vs later {later:?} B");
        assert_eq!(later[0], later[1]);
        assert_eq!(later[1], later[2]);
        // Mgmt is connection setup, charged to the connection attribution.
        assert_eq!(sim.meter.cost(2).layers.http_mgmt, 0);
        assert!(sim.meter.cost(0).layers.http_mgmt > 100);
    }

    #[test]
    fn close_sends_goaway_then_fin() {
        let (mut sim, mut client, mut server) = setup(3, ReusePolicy::Persistent);
        let name = Name::parse("abcdefgh.dohmark.test").unwrap();
        client.resolve(&mut sim, &mut server, &name, 1).unwrap();
        let mgmt_before = sim.meter.cost(0).layers.http_mgmt;
        client.close(&mut sim);
        crate::drain_endpoints_impl(&mut sim, &mut [&mut client, &mut server]);
        // GOAWAY: 9-byte frame header + 8-byte payload, plus TLS framing.
        assert_eq!(sim.meter.cost(0).layers.http_mgmt, mgmt_before + 17);
        assert!(!client.is_connected());
        assert_eq!(server.open_connections(), 0);
    }

    #[test]
    fn streams_use_odd_ids_and_parallel_queries_resolve() {
        let (mut sim, mut client, mut server) = setup(4, ReusePolicy::Persistent);
        let name = Name::parse("abcdefgh.dohmark.test").unwrap();
        // Launch three queries back-to-back before any response arrives.
        for id in 1..=3u16 {
            client.send_query(&mut sim, &name, id);
        }
        crate::drain_endpoints_impl(&mut sim, &mut [&mut client, &mut server]);
        for id in 1..=3u16 {
            assert!(client.take_response(id).is_some(), "id {id}");
        }
        assert_eq!(client.next_stream_id, 7, "streams 1, 3, 5 were used");
    }

    #[test]
    fn non_200_responses_are_not_dns_answers() {
        // A hand-rolled server that answers every query with :status 500
        // and a DNS-shaped body; the client must not surface it (the h1
        // client's explicit status check, mirrored on h2) — but the
        // rejected response still completes the stream, so a Fresh
        // connection must tear down rather than linger.
        let mut sim = Sim::new(21);
        let stub = sim.add_host("stub");
        let resolver = sim.add_host("resolver");
        sim.add_link(stub, resolver, dohmark_netsim::LinkConfig::localhost());
        let listener = sim.tcp_listen(resolver, 443);
        let mut client = DohH2Client::new(
            stub,
            (resolver, 443),
            "dns.example.net",
            h2_tls(),
            ReusePolicy::Fresh,
            0,
        );
        let name = Name::parse("abcdefgh.dohmark.test").unwrap();
        client.send_query(&mut sim, &name, 1);
        let mut server_conn: Option<H2Conn> = None;
        let mut preface_left = PREFACE.len();
        while let Some(wake) = sim.next_wake() {
            client.on_wake(&mut sim, &wake);
            match wake {
                Wake::TcpAccepted { listener: l, conn: handle, .. } if l == listener => {
                    let attr = sim.attr();
                    server_conn = Some(H2Conn::new(TlsStream::new(handle, &h2_tls(), attr)));
                }
                Wake::TcpReadable { conn: handle, .. } if handle.side == Side::Server => {
                    let Some(conn) = server_conn.as_mut() else { continue };
                    let data = sim.tcp_recv(handle);
                    let plaintext = conn.tls.advance(&mut sim, &data);
                    let skip = preface_left.min(plaintext.len());
                    preface_left -= skip;
                    let (queries, _) = conn.ingest(&mut sim, &plaintext[skip..]);
                    for (stream_id, query) in queries {
                        let body =
                            Message::fixed_a_response(&query, Ipv4Addr::new(192, 0, 2, 7), 60)
                                .encode();
                        let headers = owned(&[
                            (":status", "500"),
                            ("content-type", DNS_MESSAGE),
                            ("content-length", &body.len().to_string()),
                        ]);
                        conn.send_message(
                            &mut sim,
                            stream_id,
                            &headers,
                            body,
                            u32::from(query.header.id),
                        );
                    }
                }
                _ => {}
            }
        }
        assert!(client.take_response(1).is_none(), "a 500 must not count as an answer");
        // The rejected response still drained the in-flight count: the
        // fresh connection was torn down, not left open for reuse.
        assert!(!client.is_connected(), "fresh connection must close after a 500");
    }

    #[test]
    fn identical_seeds_reproduce_identical_h2_costs() {
        let run = |seed: u64| {
            let (mut sim, mut client, mut server) = setup(seed, ReusePolicy::Persistent);
            let name = Name::parse("abcdefgh.dohmark.test").unwrap();
            for id in 1..=3u16 {
                client.resolve(&mut sim, &mut server, &name, id).unwrap();
            }
            sim.drain();
            (sim.meter.total(), sim.now())
        };
        assert_eq!(run(7), run(7));
    }
}
