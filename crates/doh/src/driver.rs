//! Addressed wake routing: the [`Driver`] registry that scales topologies
//! from one echo pair to thousands of endpoints.
//!
//! The original dispatch model *broadcast* every wake to every endpoint
//! (each filtering by its own handles) — O(endpoints) work per wake, which
//! caps topologies at a handful of sessions. The netsim layer now stamps
//! every socket, listener, connection and timer with the **owner id**
//! current at creation time ([`Sim::set_owner`]) and returns it alongside
//! each wake ([`Sim::next_wake_owned`]); the `Driver` exploits that to
//! route each wake straight to the one endpoint that owns the underlying
//! handle — O(1) per wake, independent of topology size.
//!
//! Endpoints are registered through a closure so that every handle they
//! create during construction (server listeners, resolver upstream
//! sockets) is stamped with their [`EndpointId`]; the driver re-installs
//! the owner before every callback, so handles created *later* (reconnects
//! after a FIN, fresh per-query sockets, accepted server connections via
//! the listener's owner) inherit the right id too.
//!
//! ```
//! use dohmark_dns_wire::Name;
//! use dohmark_doh::{Driver, ReusePolicy, TransportConfig, TransportKind};
//! use dohmark_netsim::Sim;
//!
//! let mut sim = Sim::new(42);
//! let cfg = TransportConfig::new(TransportKind::DohH2, ReusePolicy::Persistent);
//! let stub = sim.add_host("stub");
//! let resolver = sim.add_host("resolver");
//! sim.add_link(stub, resolver, cfg.link);
//! let mut driver = Driver::new();
//! let server = driver.register(&mut sim, |sim| cfg.build_server(sim, resolver));
//! let client = driver.register_resolver(&mut sim, |_| cfg.build_client(stub, resolver));
//! let name = Name::parse("example.com").unwrap();
//! let response = driver.resolve(&mut sim, client, &name, 1).unwrap();
//! assert_eq!(response.header.id, 1);
//! # let _ = server;
//! ```

use crate::{Endpoint, Resolver, ADVANCE_TOKEN};
use dohmark_dns_wire::{Message, Name};
use dohmark_netsim::{Sim, SimDuration, SimTime, Wake};

/// Arms an application timer on behalf of an endpoint — the blessed wake
/// scheduling path for endpoint re-arm logic (retransmission timeouts,
/// keep-alives). Lives in the driver module so all wake scheduling stays
/// auditable in one place; the timer inherits the owner installed around
/// the calling endpoint's callback, so the [`Driver`] routes the eventual
/// [`Wake::AppTimer`] straight back to that endpoint.
pub(crate) fn schedule_endpoint_timer(sim: &mut Sim, delay: SimDuration, token: u64) {
    debug_assert_ne!(token, ADVANCE_TOKEN, "token is reserved for Driver::advance_until");
    sim.schedule_app_in(delay, token);
}

/// Identifier of an endpoint registered with a [`Driver`]. Doubles as the
/// netsim wake-ownership id the endpoint's handles are stamped with; id
/// `0` is reserved for "unowned".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EndpointId(u64);

impl EndpointId {
    /// The raw ownership id (what [`Sim::owner`] reports inside this
    /// endpoint's callbacks).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// Registered endpoints keep their concrete capability: plain endpoints
/// only receive wakes, resolvers additionally issue queries.
enum Slot {
    Endpoint(Box<dyn Endpoint>),
    Resolver(Box<dyn Resolver>),
}

impl Slot {
    fn on_wake(&mut self, sim: &mut Sim, wake: &Wake) {
        match self {
            Slot::Endpoint(e) => e.on_wake(sim, wake),
            Slot::Resolver(r) => r.on_wake(sim, wake),
        }
    }
}

/// Routes one popped wake to its consumers — either addressed (the
/// [`Driver`]) or broadcast (the legacy free-function drivers). The shared
/// pump loops ([`drain_routed`], [`advance_routed`], [`resolve_routed`])
/// are generic over this, so both dispatch models run the exact same
/// event-loop machinery.
pub(crate) trait Route {
    fn deliver(&mut self, sim: &mut Sim, wake: &Wake, owner: u64);
}

/// The legacy dispatch model: every wake goes to every endpoint, each
/// filtering by its own handles. Correct (endpoints ignore foreign
/// handles) but O(endpoints) per wake.
pub(crate) struct Broadcast<'a, 'b> {
    pub first: Option<&'a mut dyn Endpoint>,
    pub rest: &'a mut [&'b mut dyn Endpoint],
}

impl Route for Broadcast<'_, '_> {
    fn deliver(&mut self, sim: &mut Sim, wake: &Wake, _owner: u64) {
        if let Some(first) = self.first.as_mut() {
            first.on_wake(sim, wake);
        }
        for endpoint in self.rest.iter_mut() {
            endpoint.on_wake(sim, wake);
        }
    }
}

/// Runs the simulation to quiescence, handing every wake to `route`.
pub(crate) fn drain_routed(sim: &mut Sim, route: &mut impl Route) {
    while let Some((wake, owner)) = sim.next_wake_owned() {
        route.deliver(sim, &wake, owner);
    }
}

/// Advances the simulation to `at`, handing every wake seen on the way to
/// `route`; stops when the reserved [`ADVANCE_TOKEN`] timer fires.
pub(crate) fn advance_routed(sim: &mut Sim, route: &mut impl Route, at: SimTime) {
    let prev = sim.owner();
    sim.set_owner(0);
    sim.schedule_app(at, ADVANCE_TOKEN);
    sim.set_owner(prev);
    while let Some((wake, owner)) = sim.next_wake_owned() {
        if matches!(wake, Wake::AppTimer { token, .. } if token == ADVANCE_TOKEN) {
            return;
        }
        route.deliver(sim, &wake, owner);
    }
}

/// Sends one query from `client` and pumps wakes through `route` until the
/// response arrives (or the simulation runs dry).
pub(crate) fn resolve_routed(
    sim: &mut Sim,
    client: &mut (impl Resolver + ?Sized),
    route: &mut impl Route,
    name: &Name,
    id: u16,
) -> Option<Message> {
    client.send_query(sim, name, id);
    loop {
        if let Some(response) = client.take_response(id) {
            return Some(response);
        }
        let (wake, owner) = sim.next_wake_owned()?;
        client.on_wake(sim, &wake);
        route.deliver(sim, &wake, owner);
    }
}

/// An [`EndpointId`]-keyed endpoint registry with addressed wake dispatch.
///
/// See the crate-level docs for the routing model. All loop methods
/// ([`Driver::resolve`], [`Driver::run_until_quiescent`],
/// [`Driver::advance_until`]) share the event-pump machinery with the
/// legacy broadcast free functions, so both models stay semantically
/// aligned.
#[derive(Default)]
pub struct Driver {
    slots: Vec<Slot>,
    unrouted: u64,
}

impl Driver {
    /// An empty registry.
    pub fn new() -> Driver {
        Driver::default()
    }

    /// Registered endpoint count.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no endpoint is registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Wakes whose owner was unknown to this driver (owner 0 or an id it
    /// never issued) — nonzero values usually mean an endpoint was built
    /// outside [`Driver::register`].
    pub fn unrouted_wakes(&self) -> u64 {
        self.unrouted
    }

    fn register_slot(&mut self, sim: &mut Sim, build: impl FnOnce(&mut Sim) -> Slot) -> EndpointId {
        let id = EndpointId(self.slots.len() as u64 + 1);
        let prev = sim.owner();
        sim.set_owner(id.0);
        let slot = build(sim);
        sim.set_owner(prev);
        self.slots.push(slot);
        id
    }

    /// Registers an endpoint (typically a server). The `build` closure runs
    /// with the new id installed as the simulator's owner, so every handle
    /// it creates (listeners, sockets) is stamped with it.
    pub fn register(
        &mut self,
        sim: &mut Sim,
        build: impl FnOnce(&mut Sim) -> Box<dyn Endpoint>,
    ) -> EndpointId {
        self.register_slot(sim, |sim| Slot::Endpoint(build(sim)))
    }

    /// [`Driver::register`] for clients, keeping the [`Resolver`] API
    /// ([`Driver::send_query`] / [`Driver::take_response`]) available.
    pub fn register_resolver(
        &mut self,
        sim: &mut Sim,
        build: impl FnOnce(&mut Sim) -> Box<dyn Resolver>,
    ) -> EndpointId {
        self.register_slot(sim, |sim| Slot::Resolver(build(sim)))
    }

    fn slot_mut(&mut self, id: EndpointId) -> &mut Slot {
        &mut self.slots[id.0 as usize - 1]
    }

    fn resolver_mut(&mut self, id: EndpointId) -> &mut dyn Resolver {
        match self.slot_mut(id) {
            Slot::Resolver(r) => r.as_mut(),
            Slot::Endpoint(_) => panic!("endpoint {} is not a resolver", id.0),
        }
    }

    /// Routes one wake to the endpoint owning its handle, installing that
    /// endpoint's id as the simulator owner for the duration of the
    /// callback (so reconnects inherit it).
    fn route(&mut self, sim: &mut Sim, wake: &Wake, owner: u64) {
        if owner == 0 || owner as usize > self.slots.len() {
            self.unrouted += 1;
            return;
        }
        let prev = sim.owner();
        sim.set_owner(owner);
        self.slots[owner as usize - 1].on_wake(sim, wake);
        sim.set_owner(prev);
    }

    /// Routes one externally popped wake — the entry point for harnesses
    /// that run their own event loop (e.g. the page-load engine, which
    /// interleaves its fetch-completion timers with DNS wakes): pop with
    /// [`Sim::next_wake_owned`], handle your own tokens, and hand
    /// everything else here.
    pub fn dispatch(&mut self, sim: &mut Sim, wake: &Wake, owner: u64) {
        self.route(sim, wake, owner);
    }

    /// Starts a resolution on the registered client `id` (transaction and
    /// attribution id `txn`) without driving the loop; pair with
    /// [`Driver::run_until_quiescent`] / [`Driver::take_response`] to
    /// overlap many in-flight resolutions.
    pub fn send_query(&mut self, sim: &mut Sim, id: EndpointId, name: &Name, txn: u16) {
        let prev = sim.owner();
        sim.set_owner(id.0);
        self.resolver_mut(id).send_query(sim, name, txn);
        sim.set_owner(prev);
    }

    /// Removes and returns client `id`'s response to transaction `txn`.
    pub fn take_response(&mut self, id: EndpointId, txn: u16) -> Option<Message> {
        self.resolver_mut(id).take_response(txn)
    }

    /// Initiates a graceful teardown of client `id`'s transport state.
    pub fn close(&mut self, sim: &mut Sim, id: EndpointId) {
        let prev = sim.owner();
        sim.set_owner(id.0);
        self.resolver_mut(id).close(sim);
        sim.set_owner(prev);
    }

    /// Sends one query from client `id` and runs the simulation — routing
    /// every wake to its owner — until the response arrives. Returns
    /// `None` if the simulation runs dry first.
    pub fn resolve(
        &mut self,
        sim: &mut Sim,
        id: EndpointId,
        name: &Name,
        txn: u16,
    ) -> Option<Message> {
        self.send_query(sim, id, name, txn);
        loop {
            if let Some(response) = self.take_response(id, txn) {
                return Some(response);
            }
            let (wake, owner) = sim.next_wake_owned()?;
            self.route(sim, &wake, owner);
        }
    }

    /// Runs the simulation to quiescence, routing every wake to its owner
    /// — the addressed counterpart of [`crate::drain_endpoints`].
    pub fn run_until_quiescent(&mut self, sim: &mut Sim) {
        let mut router = DriverRoute(self);
        drain_routed(sim, &mut router);
    }

    /// Advances the simulation to time `at`, routing wakes seen on the way
    /// — the addressed counterpart of [`crate::advance_endpoints_until`].
    /// Uses the reserved [`ADVANCE_TOKEN`] timer token.
    pub fn advance_until(&mut self, sim: &mut Sim, at: SimTime) {
        let mut router = DriverRoute(self);
        advance_routed(sim, &mut router, at);
    }
}

/// Adapter so the `Driver` plugs into the shared pump loops.
struct DriverRoute<'a>(&'a mut Driver);

impl Route for DriverRoute<'_> {
    fn deliver(&mut self, sim: &mut Sim, wake: &Wake, owner: u64) {
        self.0.route(sim, wake, owner);
    }
}
