//! A TTL-driven positive/negative DNS cache (RFC 2308), shared across all
//! client sessions of one recursive resolver.
//!
//! Entries expire on the simulated clock: an entry inserted at `t` with
//! TTL `n` serves hits for `now < t + n` and misses from `t + n` onward
//! (the boundary is exclusive, like a real resolver decrementing TTLs to
//! zero). Served answers carry the **remaining** TTL. Negative entries
//! (NXDOMAIN / NODATA) are cached for `min(SOA TTL, SOA MINIMUM)` per
//! RFC 2308 §5. A configurable size cap evicts the least-recently-used
//! entry, deterministically.

use dohmark_dns_wire::{Name, Rcode, Rdata, Record, RecordType};
use dohmark_netsim::{SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap};

/// Cache key: query name and type (class is always `IN` here).
pub type CacheKey = (Name, RecordType);

/// What a cache hit yields, TTLs already decremented to the remaining
/// lifetime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CachedAnswer {
    /// A positive answer: the cached records.
    Positive(Vec<Record>),
    /// A cached negative answer (RFC 2308): the rcode to reproduce and the
    /// SOA record for the authority section.
    Negative {
        /// `NxDomain`, or `NoError` for NODATA.
        rcode: Rcode,
        /// The zone's SOA, TTL decremented.
        soa: Record,
    },
}

#[derive(Debug, Clone)]
enum CachedData {
    Positive(Vec<Record>),
    Negative { rcode: Rcode, soa: Record },
}

#[derive(Debug)]
struct Entry {
    data: CachedData,
    expires_at: SimTime,
    /// LRU stamp; also the key into the recency index.
    stamp: u64,
}

/// Hit/miss/eviction counters, readable by experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Positive-entry hits.
    pub hits: u64,
    /// Negative-entry hits (NXDOMAIN / NODATA served from cache).
    pub negative_hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries stored.
    pub insertions: u64,
    /// Entries evicted by the size cap.
    pub evictions: u64,
    /// Entries dropped because a lookup found them expired.
    pub expirations: u64,
}

impl CacheStats {
    /// All hits, positive and negative.
    pub fn total_hits(&self) -> u64 {
        self.hits + self.negative_hits
    }

    /// Hit ratio over all lookups, 0 when nothing was looked up.
    pub fn hit_ratio(&self) -> f64 {
        let lookups = self.total_hits() + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.total_hits() as f64 / lookups as f64
        }
    }
}

/// The cache: a capacity-capped map with TTL expiry and LRU eviction.
///
/// Determinism: iteration never touches `HashMap` order — eviction picks
/// the minimum LRU stamp from a `BTreeMap` index, so identical operation
/// sequences produce identical contents.
#[derive(Debug)]
pub struct DnsCache {
    capacity: usize,
    /// Keyed lookup only (get/insert/remove) — never iterated; ordered
    /// traversal (eviction) goes through the `lru` index below
    /// (no-unordered-iteration).
    entries: HashMap<CacheKey, Entry>,
    /// Recency index: stamp → key, oldest first.
    lru: BTreeMap<u64, CacheKey>,
    next_stamp: u64,
    /// Counters; public so resolvers can fold them into reports.
    pub stats: CacheStats,
}

impl DnsCache {
    /// A cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> DnsCache {
        DnsCache {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            next_stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// Live entry count (expired entries linger until looked up or
    /// evicted).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `name`/`qtype` at time `now`, counting a hit or miss and
    /// refreshing recency. TTLs in the returned records are the remaining
    /// lifetime (floored to whole seconds).
    pub fn get(&mut self, name: &Name, qtype: RecordType, now: SimTime) -> Option<CachedAnswer> {
        let key = (name.clone(), qtype);
        let Some(entry) = self.entries.get_mut(&key) else {
            self.stats.misses += 1;
            return None;
        };
        if now >= entry.expires_at {
            let stamp = entry.stamp;
            self.entries.remove(&key);
            self.lru.remove(&stamp);
            self.stats.expirations += 1;
            self.stats.misses += 1;
            return None;
        }
        let remaining = entry.expires_at.duration_since(now).as_secs_f64() as u32;
        let old_stamp = entry.stamp;
        entry.stamp = self.next_stamp;
        self.next_stamp += 1;
        let answer = match &entry.data {
            CachedData::Positive(records) => {
                self.stats.hits += 1;
                CachedAnswer::Positive(
                    records.iter().map(|r| Record { ttl: remaining, ..r.clone() }).collect(),
                )
            }
            CachedData::Negative { rcode, soa } => {
                self.stats.negative_hits += 1;
                CachedAnswer::Negative {
                    rcode: *rcode,
                    soa: Record { ttl: remaining, ..soa.clone() },
                }
            }
        };
        let new_stamp = self.next_stamp - 1;
        self.lru.remove(&old_stamp);
        self.lru.insert(new_stamp, key);
        Some(answer)
    }

    /// Caches a positive answer under the records' minimum TTL. TTL-0
    /// answers are served but never stored (RFC 1035).
    pub fn insert_positive(
        &mut self,
        name: Name,
        qtype: RecordType,
        records: Vec<Record>,
        now: SimTime,
    ) {
        let ttl = records.iter().map(|r| r.ttl).min().unwrap_or(0);
        self.put((name, qtype), CachedData::Positive(records), ttl, now);
    }

    /// Caches a negative answer for `min(SOA TTL, SOA MINIMUM)` seconds —
    /// the RFC 2308 §5 negative-caching TTL.
    pub fn insert_negative(
        &mut self,
        name: Name,
        qtype: RecordType,
        rcode: Rcode,
        soa: Record,
        now: SimTime,
    ) {
        let minimum = match &soa.rdata {
            Rdata::Soa(s) => s.minimum,
            _ => 0,
        };
        let ttl = minimum.min(soa.ttl);
        self.put((name, qtype), CachedData::Negative { rcode, soa }, ttl, now);
    }

    fn put(&mut self, key: CacheKey, data: CachedData, ttl: u32, now: SimTime) {
        if ttl == 0 {
            return;
        }
        if let Some(old) = self.entries.remove(&key) {
            self.lru.remove(&old.stamp);
        } else if self.entries.len() >= self.capacity {
            // Evict the least-recently-used entry (smallest stamp).
            if let Some((&stamp, _)) = self.lru.iter().next() {
                let victim = self.lru.remove(&stamp).expect("stamp just seen");
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        let expires_at = now + SimDuration::from_secs(u64::from(ttl));
        self.entries.insert(key.clone(), Entry { data, expires_at, stamp });
        self.lru.insert(stamp, key);
        self.stats.insertions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dohmark_dns_wire::SoaRdata;
    use std::net::Ipv4Addr;

    fn name(label: &str) -> Name {
        Name::parse(&format!("{label}.dohmark.test")).unwrap()
    }

    fn a_record(label: &str, ttl: u32) -> Record {
        Record::new(name(label), ttl, Rdata::A(Ipv4Addr::new(10, 0, 0, 1)))
    }

    fn soa(ttl: u32, minimum: u32) -> Record {
        Record::new(
            Name::parse("dohmark.test").unwrap(),
            ttl,
            Rdata::Soa(SoaRdata {
                mname: name("ns1"),
                rname: name("hostmaster"),
                serial: 1,
                refresh: 7200,
                retry: 900,
                expire: 1_209_600,
                minimum,
            }),
        )
    }

    fn at(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn hit_serves_remaining_ttl_until_the_exact_expiry_boundary() {
        let mut cache = DnsCache::new(16);
        cache.insert_positive(name("w1"), RecordType::A, vec![a_record("w1", 30)], at(0));
        // One second before expiry: still a hit, 1s of lifetime left.
        let hit = cache.get(&name("w1"), RecordType::A, at(29)).unwrap();
        match hit {
            CachedAnswer::Positive(records) => assert_eq!(records[0].ttl, 1, "29s in, 1s left"),
            other => panic!("unexpected {other:?}"),
        }
        // At exactly t + ttl the entry is expired: a miss, counted as such.
        assert!(cache.get(&name("w1"), RecordType::A, at(30)).is_none());
        assert_eq!(cache.stats.hits, 1);
        assert_eq!(cache.stats.misses, 1);
        assert_eq!(cache.stats.expirations, 1);
        assert_eq!(cache.len(), 0, "expired entries are dropped on lookup");
    }

    #[test]
    fn negative_entries_use_the_rfc2308_min_of_soa_ttl_and_minimum() {
        let mut cache = DnsCache::new(16);
        // SOA TTL 60 but MINIMUM 20: the negative TTL must be 20.
        cache.insert_negative(name("nx1"), RecordType::A, Rcode::NxDomain, soa(60, 20), at(0));
        match cache.get(&name("nx1"), RecordType::A, at(10)) {
            Some(CachedAnswer::Negative { rcode, soa }) => {
                assert_eq!(rcode, Rcode::NxDomain);
                assert_eq!(soa.ttl, 10, "remaining negative TTL");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(cache.get(&name("nx1"), RecordType::A, at(20)).is_none(), "expired at MINIMUM");
        assert_eq!(cache.stats.negative_hits, 1);
        // And symmetrically: SOA TTL 15 under MINIMUM 300 caps at 15.
        cache.insert_negative(name("nx2"), RecordType::A, Rcode::NxDomain, soa(15, 300), at(100));
        assert!(cache.get(&name("nx2"), RecordType::A, at(114)).is_some());
        assert!(cache.get(&name("nx2"), RecordType::A, at(115)).is_none());
    }

    #[test]
    fn capacity_evicts_the_least_recently_used_entry() {
        let mut cache = DnsCache::new(2);
        cache.insert_positive(name("w1"), RecordType::A, vec![a_record("w1", 300)], at(0));
        cache.insert_positive(name("w2"), RecordType::A, vec![a_record("w2", 300)], at(1));
        // Touch w1 so w2 becomes the LRU victim.
        assert!(cache.get(&name("w1"), RecordType::A, at(2)).is_some());
        cache.insert_positive(name("w3"), RecordType::A, vec![a_record("w3", 300)], at(3));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats.evictions, 1);
        assert!(cache.get(&name("w1"), RecordType::A, at(4)).is_some(), "w1 was touched");
        assert!(cache.get(&name("w3"), RecordType::A, at(4)).is_some(), "w3 just arrived");
        assert!(cache.get(&name("w2"), RecordType::A, at(4)).is_none(), "w2 was evicted");
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let mut cache = DnsCache::new(2);
        cache.insert_positive(name("w1"), RecordType::A, vec![a_record("w1", 10)], at(0));
        cache.insert_positive(name("w2"), RecordType::A, vec![a_record("w2", 10)], at(0));
        // Refreshing w1 must not evict w2.
        cache.insert_positive(name("w1"), RecordType::A, vec![a_record("w1", 300)], at(5));
        assert_eq!(cache.stats.evictions, 0);
        assert!(cache.get(&name("w2"), RecordType::A, at(6)).is_some());
        // The refreshed entry carries the new TTL.
        match cache.get(&name("w1"), RecordType::A, at(6)).unwrap() {
            CachedAnswer::Positive(r) => assert_eq!(r[0].ttl, 299),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ttl_zero_answers_are_not_cached() {
        let mut cache = DnsCache::new(4);
        cache.insert_positive(name("w1"), RecordType::A, vec![a_record("w1", 0)], at(0));
        assert!(cache.is_empty());
        assert_eq!(cache.stats.insertions, 0);
    }

    #[test]
    fn hit_ratio_tracks_lookups() {
        let mut cache = DnsCache::new(4);
        cache.insert_positive(name("w1"), RecordType::A, vec![a_record("w1", 300)], at(0));
        assert!(cache.get(&name("w1"), RecordType::A, at(1)).is_some());
        assert!(cache.get(&name("w9"), RecordType::A, at(1)).is_none());
        assert!((cache.stats.hit_ratio() - 0.5).abs() < 1e-9);
    }
}
