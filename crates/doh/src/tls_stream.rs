//! Shared per-connection TLS state machine used by every TLS-based
//! transport (DoT, DoH/1.1, DoH/2): drives the `dohmark-tls-model`
//! handshake flights over a simulated TCP connection, then frames and
//! deframes application data as TLS records.

use dohmark_netsim::{LayerTag, Side, Sim, TcpHandle};
use dohmark_tls_model::{handshake_flights, seal, Deframer, Flight, TlsConfig};

/// One endpoint's view of a TLS connection: handshake progress, then
/// record sealing/deframing.
#[derive(Debug)]
pub(crate) struct TlsStream {
    pub(crate) handle: TcpHandle,
    flights: Vec<Flight>,
    /// Index of the next flight not yet fully sent/received.
    next_flight: usize,
    /// Bytes of the currently awaited inbound flight already received.
    flight_rx: usize,
    /// Attribution for connection setup bytes this endpoint sends.
    pub(crate) setup_attr: u32,
    established: bool,
    deframer: Deframer,
}

impl TlsStream {
    pub(crate) fn new(handle: TcpHandle, cfg: &TlsConfig, setup_attr: u32) -> TlsStream {
        TlsStream {
            handle,
            flights: handshake_flights(cfg),
            next_flight: 0,
            flight_rx: 0,
            setup_attr,
            established: false,
            deframer: Deframer::new(),
        }
    }

    fn is_client(&self) -> bool {
        self.handle.side == Side::Client
    }

    /// Whether the handshake has completed.
    pub(crate) fn established(&self) -> bool {
        self.established
    }

    /// Drives the handshake with `incoming` stream bytes (possibly empty),
    /// sending our flights when it is our turn; surplus bytes after
    /// establishment flow through the record deframer. Returns the
    /// deframed application plaintext, in order.
    pub(crate) fn advance(&mut self, sim: &mut Sim, mut incoming: &[u8]) -> Vec<u8> {
        while !self.established {
            let Some(flight) = self.flights.get(self.next_flight) else {
                self.established = true;
                break;
            };
            if flight.from_client == self.is_client() {
                // Our turn: emit the flight as opaque handshake bytes.
                sim.set_attr(self.setup_attr);
                sim.tcp_send(self.handle, LayerTag::Tls, &vec![0u8; flight.bytes]);
                self.next_flight += 1;
            } else {
                let need = flight.bytes - self.flight_rx;
                let take = need.min(incoming.len());
                self.flight_rx += take;
                incoming = &incoming[take..];
                if self.flight_rx == flight.bytes {
                    self.flight_rx = 0;
                    self.next_flight += 1;
                } else {
                    return Vec::new(); // need more bytes
                }
            }
        }
        self.deframer.push(incoming);
        let mut plaintext = Vec::new();
        while let Some(p) = self.deframer.next_plaintext() {
            plaintext.extend_from_slice(&p);
        }
        plaintext
    }

    /// Seals the concatenation of `segments` into TLS records and queues
    /// them as one vectored write under attribution `attr`: the record
    /// header and AEAD tag are charged to [`LayerTag::Tls`], each
    /// segment's bytes to its own tag — which is how the cost meter can
    /// split a DoH message into header, body and TLS framing layers.
    pub(crate) fn send_segments(
        &mut self,
        sim: &mut Sim,
        attr: u32,
        segments: &[(LayerTag, &[u8])],
    ) {
        let total: Vec<u8> = segments.iter().flat_map(|(_, b)| b.iter().copied()).collect();
        if total.is_empty() {
            return;
        }
        sim.set_attr(attr);
        let mut parts: Vec<(LayerTag, &[u8])> = Vec::new();
        let mut offset = 0usize;
        let records = seal(&total);
        for record in &records {
            let end = offset + record.plaintext.len();
            parts.push((LayerTag::Tls, &record.header));
            // The slices of `segments` that fall inside this record.
            let mut seg_start = 0usize;
            for (tag, bytes) in segments {
                let seg_end = seg_start + bytes.len();
                if seg_end > offset && seg_start < end {
                    let from = offset.max(seg_start) - seg_start;
                    let to = end.min(seg_end) - seg_start;
                    parts.push((*tag, &bytes[from..to]));
                }
                seg_start = seg_end;
            }
            parts.push((LayerTag::Tls, &record.tag));
            offset = end;
        }
        sim.tcp_send_vectored(self.handle, &parts);
    }
}
