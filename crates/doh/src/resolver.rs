//! The caching recursive resolver and the [`ServerBackend`] abstraction
//! that lets every transport server (Do53, DoT, DoH-h1, DoH-h2) serve
//! either authoritative [`Zone`] answers or cached/recursive ones.
//!
//! A [`RecursiveResolver`] sits behind one transport server and is shared
//! by **all** client sessions of that server: answers fetched for one stub
//! warm the cache for every other stub, which is exactly the effect the
//! `fig_cache_hit_cost` experiment measures. On a cache miss the resolver
//! queries its upstream authoritative server over plain Do53 (the common
//! deployment shape: encrypted stub-to-recursive, UDP recursive-to-
//! authoritative), coalescing concurrent identical questions into one
//! upstream fetch.
//!
//! All measurements flow through the one instrument experiments already
//! read, [`CostMeter`](dohmark_netsim::CostMeter) named counters:
//! `cache_hit`, `cache_negative_hit`, `cache_miss`, `coalesced_queries`,
//! `upstream_queries` and `upstream_bytes` (upstream payload + IP/UDP
//! header bytes, both directions).

use crate::cache::{CachedAnswer, DnsCache};
use crate::zone::Zone;
use dohmark_dns_wire::{Message, Name, Rcode, Rdata, Record, RecordType};
use dohmark_netsim::{HostId, LayerTag, Sim, SockId, Wake};

/// One outstanding upstream fetch, with every stub query waiting on it.
#[derive(Debug)]
struct PendingFetch {
    key: (Name, RecordType),
    /// Transaction id used upstream — the id of the stub query that
    /// triggered the fetch, so upstream bytes are attributed to the
    /// resolution that actually paid for them.
    upstream_id: u16,
    /// Parked stub queries: the transport-level waiter token and the
    /// original query (whose header id the answer must echo).
    waiters: Vec<(u64, Message)>,
}

/// A caching recursive resolver: TTL-driven positive/negative cache
/// (RFC 2308) in front of one Do53 upstream.
#[derive(Debug)]
pub struct RecursiveResolver {
    sock: SockId,
    upstream: (HostId, u16),
    cache: DnsCache,
    pending: Vec<PendingFetch>,
}

impl RecursiveResolver {
    /// A resolver on `host` (its upstream socket bound to an ephemeral
    /// port there) querying the authoritative server at `upstream`, with a
    /// cache of at most `cache_capacity` entries.
    ///
    /// Bind-time matters for wake routing: construct this inside the
    /// enclosing server's [`Driver::register`](crate::Driver::register)
    /// closure so the upstream socket is stamped with the server's
    /// endpoint id.
    pub fn new(
        sim: &mut Sim,
        host: HostId,
        upstream: (HostId, u16),
        cache_capacity: usize,
    ) -> RecursiveResolver {
        let sock = sim.udp_bind(host, 0);
        RecursiveResolver {
            sock,
            upstream,
            cache: DnsCache::new(cache_capacity),
            pending: Vec::new(),
        }
    }

    /// The cache's live statistics.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats
    }

    /// Answers `query` from the cache, or parks it (returning `None`)
    /// behind an upstream fetch whose completion [`Self::poll`] will
    /// surface with `waiter` attached.
    pub fn resolve(&mut self, sim: &mut Sim, query: &Message, waiter: u64) -> Option<Message> {
        let Some(q) = query.question() else {
            return Some(Message::response(query, Rcode::FormErr, Vec::new()));
        };
        let (qname, qtype) = (q.name.clone(), q.qtype);
        match self.cache.get(&qname, qtype, sim.now()) {
            Some(CachedAnswer::Positive(records)) => {
                sim.meter.bump("cache_hit", 1);
                return Some(Message::response(query, Rcode::NoError, records));
            }
            Some(CachedAnswer::Negative { rcode, soa }) => {
                sim.meter.bump("cache_negative_hit", 1);
                let mut m = Message::response(query, rcode, Vec::new());
                m.authorities.push(soa);
                return Some(m);
            }
            None => {}
        }
        sim.meter.bump("cache_miss", 1);
        let key = (qname, qtype);
        if let Some(fetch) = self.pending.iter_mut().find(|f| f.key == key) {
            // An identical question is already in flight: coalesce.
            sim.meter.bump("coalesced_queries", 1);
            fetch.waiters.push((waiter, query.clone()));
            return None;
        }
        // Fetch upstream, reusing the stub query's transaction id so the
        // upstream bytes are attributed to the triggering resolution.
        let upstream_id = query.header.id;
        let upstream_query = Message::query(upstream_id, &key.0, qtype);
        let encoded = upstream_query.encode();
        sim.set_attr(u32::from(upstream_id));
        sim.meter.bump("upstream_queries", 1);
        sim.meter.bump("upstream_bytes", encoded.len() as u64 + 28);
        sim.udp_send(self.sock, self.upstream, LayerTag::DnsPayload, encoded);
        self.pending.push(PendingFetch {
            key,
            upstream_id,
            waiters: vec![(waiter, query.clone())],
        });
        None
    }

    /// Ingests upstream responses if `wake` is for the resolver's upstream
    /// socket; returns the unparked `(waiter, response)` pairs, each
    /// response carrying its own stub query's transaction id.
    pub fn poll(&mut self, sim: &mut Sim, wake: &Wake) -> Vec<(u64, Message)> {
        let Wake::UdpReadable { sock, .. } = wake else { return Vec::new() };
        if *sock != self.sock {
            return Vec::new();
        }
        let mut completed = Vec::new();
        while let Some((_, _, data)) = sim.udp_recv(self.sock) {
            let Ok(upstream) = Message::decode(&data) else { continue };
            let Some(idx) = self.pending.iter().position(|f| f.upstream_id == upstream.header.id)
            else {
                continue;
            };
            let fetch = self.pending.remove(idx);
            sim.meter.bump("upstream_bytes", data.len() as u64 + 28);
            self.cache_upstream(sim, &fetch, &upstream);
            for (waiter, stub_query) in fetch.waiters {
                let mut response =
                    Message::response(&stub_query, upstream.header.rcode, upstream.answers.clone());
                response.authorities = upstream.authorities.clone();
                completed.push((waiter, response));
            }
        }
        completed
    }

    /// Stores `upstream`'s outcome in the cache: positive answers under
    /// their minimum record TTL, NXDOMAIN/NODATA under the RFC 2308
    /// `min(SOA TTL, MINIMUM)` — uncacheable responses (no SOA, ServFail)
    /// are forwarded but not stored.
    fn cache_upstream(&mut self, sim: &mut Sim, fetch: &PendingFetch, upstream: &Message) {
        let (name, qtype) = fetch.key.clone();
        let now = sim.now();
        match upstream.header.rcode {
            Rcode::NoError if !upstream.answers.is_empty() => {
                self.cache.insert_positive(name, qtype, upstream.answers.clone(), now);
            }
            Rcode::NoError | Rcode::NxDomain => {
                if let Some(soa) = find_soa(&upstream.authorities) {
                    self.cache.insert_negative(
                        name,
                        qtype,
                        upstream.header.rcode,
                        soa.clone(),
                        now,
                    );
                }
            }
            _ => {}
        }
    }
}

fn find_soa(records: &[Record]) -> Option<&Record> {
    records.iter().find(|r| matches!(r.rdata, Rdata::Soa(_)))
}

/// The answer source behind a transport server: authoritative zone data
/// (the classic fixed-echo servers) or a shared caching recursive
/// resolver.
#[derive(Debug)]
pub enum ServerBackend {
    /// Answer directly from zone data — every query gets an immediate
    /// response.
    Authoritative(Zone),
    /// Answer from the cache or recurse upstream — queries may park until
    /// [`ServerBackend::poll`] surfaces them.
    Recursive(RecursiveResolver),
}

impl ServerBackend {
    /// The backend byte-compatible with the legacy fixed-echo servers.
    pub fn fixed(answer: std::net::Ipv4Addr, ttl: u32) -> ServerBackend {
        ServerBackend::Authoritative(Zone::fixed(answer, ttl))
    }

    /// Answers `query` now, or returns `None` to park it; parked queries
    /// resurface from [`ServerBackend::poll`] tagged with `waiter`.
    pub fn answer(&mut self, sim: &mut Sim, query: &Message, waiter: u64) -> Option<Message> {
        match self {
            ServerBackend::Authoritative(zone) => Some(zone.answer(query)),
            ServerBackend::Recursive(resolver) => resolver.resolve(sim, query, waiter),
        }
    }

    /// Feeds a wake to the backend (upstream socket traffic for recursive
    /// backends); returns completed `(waiter, response)` pairs.
    pub fn poll(&mut self, sim: &mut Sim, wake: &Wake) -> Vec<(u64, Message)> {
        match self {
            ServerBackend::Authoritative(_) => Vec::new(),
            ServerBackend::Recursive(resolver) => resolver.poll(sim, wake),
        }
    }

    /// Cache statistics, if this backend has a cache.
    pub fn cache_stats(&self) -> Option<crate::cache::CacheStats> {
        match self {
            ServerBackend::Authoritative(_) => None,
            ServerBackend::Recursive(resolver) => Some(resolver.cache_stats()),
        }
    }
}
