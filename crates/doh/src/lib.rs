//! Simulated DNS transports — Do53, DoT and DoH over HTTP/1.1 and
//! HTTP/2 — with per-resolution cost attribution.
//!
//! This crate drives `dohmark-netsim` with protocol-faithful DNS message
//! exchanges — every byte the [`CostMeter`](dohmark_netsim::CostMeter)
//! records is a byte the corresponding real transport would put on the
//! wire:
//!
//! * [`do53`] — classic DNS over UDP, the paper's §3 baseline. The client
//!   sends each query from a **fresh ephemeral source port** and matches
//!   responses by transaction id.
//! * [`dot`] — DNS over TLS (RFC 7858): messages carry the RFC 7766
//!   2-byte length prefix and travel inside TLS application-data records
//!   over simulated TCP, with handshake bytes taken from the
//!   `dohmark-tls-model` flight model.
//! * [`doh1`] — DNS over HTTPS on HTTP/1.1: `POST /dns-query` request
//!   text and `200 OK` response text from `dohmark-httpsim::h1`, header
//!   bytes tagged `HttpHeader` and bodies `HttpBody`.
//! * [`doh2`] — DNS over HTTPS on HTTP/2: connection preface, SETTINGS /
//!   WINDOW_UPDATE / GOAWAY management frames (tagged `HttpMgmt`), and
//!   per-query HEADERS + DATA frames with real HPACK header compression —
//!   on a persistent connection the dynamic table shrinks header bytes
//!   after the first query, exactly the effect the paper measures.
//!
//! # The unified transport API
//!
//! Every client implements [`Resolver`] and every server [`Endpoint`], so
//! experiments iterate over [`TransportConfig`]s instead of naming
//! concrete types: [`build_pair`] turns a config — transport kind ×
//! [`ReusePolicy`] × TLS resumption — into a boxed client/server pair on a
//! fresh two-host topology. The concrete types remain available for
//! custom topologies.
//!
//! ```
//! use dohmark_dns_wire::Name;
//! use dohmark_doh::{build_pair, resolve_with, ReusePolicy, TransportConfig, TransportKind};
//! use dohmark_netsim::Sim;
//!
//! let mut sim = Sim::new(42);
//! let cfg = TransportConfig::new(TransportKind::DohH2, ReusePolicy::Persistent);
//! let (mut client, mut server) = build_pair(&mut sim, &cfg);
//! let name = Name::parse("example.com").unwrap();
//! let response = resolve_with(&mut sim, client.as_mut(), server.as_mut(), &name, 1).unwrap();
//! assert_eq!(response.answers.len(), 1);
//! ```
//!
//! # Attribution
//!
//! Each resolution is identified by its DNS transaction id, which doubles
//! as the simulator attribution id: clients call
//! [`Sim::set_attr`](dohmark_netsim::Sim::set_attr) before writing query
//! bytes and servers set it from the decoded query id before answering, so
//! the meter splits cost per resolution. Connection setup (TCP handshake +
//! TLS flights + HTTP/2 preface and SETTINGS) is charged to the id current
//! when the connection was opened: the resolution's own id for fresh
//! connections, a caller-chosen connection id for persistent ones.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod do53;
pub mod doh1;
pub mod doh2;
pub mod dot;
mod tls_stream;
mod transport;

pub use do53::{Do53Client, Do53Server};
pub use doh1::{DohH1Client, DohH1Server};
pub use doh2::{DohH2Client, DohH2Server};
pub use dot::{DotClient, DotServer, ReusePolicy};
pub use transport::{build_pair, build_pair_on, TransportConfig, TransportKind};

use dohmark_dns_wire::{Message, Name};
use dohmark_netsim::{Sim, SimTime, Wake};

/// A simulation participant that reacts to application-visible wakes.
///
/// `on_wake` is called for **every** wake the driver pops, including ones
/// addressed to other endpoints; implementations must filter by their own
/// socket/connection handles and ignore the rest.
pub trait Endpoint {
    /// Reacts to one wake (possibly not addressed to this endpoint).
    fn on_wake(&mut self, sim: &mut Sim, wake: &Wake);
}

/// A transport client that can start a resolution, surface its result and
/// tear its connections down — the unified client API every transport
/// (Do53, DoT, DoH-h1, DoH-h2) implements and [`resolve_with`] drives.
pub trait Resolver: Endpoint {
    /// Starts an A-record resolution for `name` with transaction (and
    /// attribution) id `id`.
    fn send_query(&mut self, sim: &mut Sim, name: &Name, id: u16);

    /// Removes and returns the response to transaction `id`, if received.
    fn take_response(&mut self, id: u16) -> Option<Message>;

    /// Initiates a graceful teardown of any open transport state (TCP
    /// FIN, HTTP/2 GOAWAY); in-flight wakes still need to be drained with
    /// [`drain_endpoints`] afterwards. Default: nothing to tear down.
    fn close(&mut self, sim: &mut Sim) {
        let _ = sim;
    }
}

/// The pre-redesign name of [`Resolver`], kept as an alias so existing
/// `use dohmark_doh::QueryClient` imports keep compiling.
pub use Resolver as QueryClient;

/// Sends one query and runs the simulation until its response arrives,
/// dispatching every wake to both the client and `peer`.
///
/// Returns `None` if the simulation runs dry first (e.g. an unanswered
/// datagram on a lossy link — the clients model no application retries).
/// Wakes not consumed by either endpoint are discarded; use
/// [`resolve_with_extras`] when other endpoints (old connections, other
/// sessions) still need their teardown wakes.
pub fn resolve_with(
    sim: &mut Sim,
    client: &mut (impl Resolver + ?Sized),
    peer: &mut dyn Endpoint,
    name: &Name,
    id: u16,
) -> Option<Message> {
    resolve_with_extras(sim, client, peer, &mut [], name, id)
}

/// [`resolve_with`], additionally routing every wake to the `extras`
/// endpoints, so a multi-connection session (several DoH clients sharing
/// one simulator, an old connection draining its FIN) cannot lose
/// teardown wakes while one resolution is being driven.
pub fn resolve_with_extras(
    sim: &mut Sim,
    client: &mut (impl Resolver + ?Sized),
    peer: &mut dyn Endpoint,
    extras: &mut [&mut dyn Endpoint],
    name: &Name,
    id: u16,
) -> Option<Message> {
    client.send_query(sim, name, id);
    loop {
        if let Some(response) = client.take_response(id) {
            return Some(response);
        }
        let wake = sim.next_wake()?;
        client.on_wake(sim, &wake);
        peer.on_wake(sim, &wake);
        for endpoint in extras.iter_mut() {
            endpoint.on_wake(sim, &wake);
        }
    }
}

/// Runs the simulation to quiescence, dispatching every wake to all
/// `endpoints` — unlike [`Sim::drain`], which discards wakes, so teardown
/// traffic (FINs) still reaches the endpoints' state machines.
pub fn drain_endpoints(sim: &mut Sim, endpoints: &mut [&mut dyn Endpoint]) {
    while let Some(wake) = sim.next_wake() {
        for endpoint in endpoints.iter_mut() {
            endpoint.on_wake(sim, &wake);
        }
    }
}

/// Token [`advance_endpoints_until`] reserves for its internal timer;
/// application timers must use other values.
pub const ADVANCE_TOKEN: u64 = u64::MAX;

/// Advances the simulation to time `at`, dispatching every wake seen on
/// the way (leftover ACKs, FIN teardown, late responses) to all
/// `endpoints` — the idle time between two workload arrivals.
pub fn advance_endpoints_until(sim: &mut Sim, endpoints: &mut [&mut dyn Endpoint], at: SimTime) {
    sim.schedule_app(at, ADVANCE_TOKEN);
    while let Some(wake) = sim.next_wake() {
        if matches!(wake, Wake::AppTimer { token, .. } if token == ADVANCE_TOKEN) {
            return;
        }
        for endpoint in endpoints.iter_mut() {
            endpoint.on_wake(sim, &wake);
        }
    }
}
