//! DoH/DoT/UDP DNS clients and servers (under construction).
//!
//! # Planned design
//!
//! This crate will drive `dohmark-netsim` with protocol-faithful DNS
//! transports: a UDP client multiplexing queries over ephemeral source
//! ports (the paper's §3 baseline), a DoT client framing `dohmark-dns-wire`
//! messages with 2-byte length prefixes over TLS, and DoH clients speaking
//! HTTP/1.1 and HTTP/2 through `dohmark-httpsim` — with connection reuse
//! policies (fresh vs. persistent) as the key experimental axis. Each
//! resolution gets a unique attribution id so the simulator's `CostMeter`
//! can reproduce the per-resolution byte/packet distributions behind the
//! paper's Figures 3–5.

#![forbid(unsafe_code)]
