//! DoH/DoT/UDP DNS clients and servers (under construction).
