//! Simulated DNS transports: UDP Do53 and DoT clients/servers with
//! per-resolution cost attribution.
//!
//! This crate drives `dohmark-netsim` with protocol-faithful DNS message
//! exchanges — every byte the [`CostMeter`](dohmark_netsim::CostMeter)
//! records is a byte the corresponding real transport would put on the
//! wire:
//!
//! * [`do53`] — classic DNS over UDP, the paper's §3 baseline. The client
//!   sends each query from a **fresh ephemeral source port** and matches
//!   responses by transaction id.
//! * [`dot`] — DNS over TLS (RFC 7858): messages carry the RFC 7766
//!   2-byte length prefix and travel inside TLS application-data records
//!   over simulated TCP, with handshake bytes taken from the
//!   `dohmark-tls-model` flight model. The [`ReusePolicy`] axis — fresh
//!   connection per query vs. one persistent connection —
//!   reproduces the paper's key cost contrast: the TLS handshake dominates
//!   until amortised over many resolutions.
//!
//! # Attribution
//!
//! Each resolution is identified by its DNS transaction id, which doubles
//! as the simulator attribution id: clients call
//! [`Sim::set_attr`](dohmark_netsim::Sim::set_attr) before writing query
//! bytes and servers set it from the decoded query id before answering, so
//! the meter splits cost per resolution. Connection setup (TCP handshake +
//! TLS flights) is charged to the id current when the connection was
//! opened: the resolution's own id for fresh connections, a caller-chosen
//! connection id for persistent ones.
//!
//! # Driving the simulation
//!
//! Endpoints implement [`Endpoint`] and react to simulator
//! [`Wake`]s. The blocking `resolve` helpers on the
//! clients run the wake loop internally, dispatching every wake to both
//! ends, and return when the matching response arrives:
//!
//! ```
//! use dohmark_dns_wire::Name;
//! use dohmark_doh::do53::{Do53Client, Do53Server};
//! use dohmark_netsim::{LinkConfig, Sim};
//!
//! let mut sim = Sim::new(42);
//! let stub = sim.add_host("stub");
//! let resolver = sim.add_host("resolver");
//! sim.add_link(stub, resolver, LinkConfig::localhost());
//! let mut server = Do53Server::bind(&mut sim, resolver, 53, [192, 0, 2, 1].into(), 300);
//! let mut client = Do53Client::new(stub, (resolver, 53));
//! let name = Name::parse("example.com").unwrap();
//! let response = client.resolve(&mut sim, &mut server, &name, 1).unwrap();
//! assert_eq!(response.answers.len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod do53;
pub mod dot;

pub use do53::{Do53Client, Do53Server};
pub use dot::{DotClient, DotServer, ReusePolicy};

use dohmark_dns_wire::{Message, Name};
use dohmark_netsim::{Sim, Wake};

/// A simulation participant that reacts to application-visible wakes.
///
/// `on_wake` is called for **every** wake the driver pops, including ones
/// addressed to other endpoints; implementations must filter by their own
/// socket/connection handles and ignore the rest.
pub trait Endpoint {
    /// Reacts to one wake (possibly not addressed to this endpoint).
    fn on_wake(&mut self, sim: &mut Sim, wake: &Wake);
}

/// A transport client that can start a resolution and surface its result —
/// the hooks [`resolve_with`] drives, shared by every transport (and by the
/// DoH clients to come).
pub trait QueryClient: Endpoint {
    /// Starts an A-record resolution for `name` with transaction (and
    /// attribution) id `id`.
    fn send_query(&mut self, sim: &mut Sim, name: &Name, id: u16);

    /// Removes and returns the response to transaction `id`, if received.
    fn take_response(&mut self, id: u16) -> Option<Message>;
}

/// Sends one query and runs the simulation until its response arrives,
/// dispatching every wake to both the client and `peer`.
///
/// Returns `None` if the simulation runs dry first (e.g. an unanswered
/// datagram on a lossy link — the clients model no application retries).
/// Wakes not consumed by either endpoint (such as unrelated app timers)
/// are discarded.
pub fn resolve_with(
    sim: &mut Sim,
    client: &mut (impl QueryClient + ?Sized),
    peer: &mut dyn Endpoint,
    name: &Name,
    id: u16,
) -> Option<Message> {
    client.send_query(sim, name, id);
    loop {
        if let Some(response) = client.take_response(id) {
            return Some(response);
        }
        let wake = sim.next_wake()?;
        client.on_wake(sim, &wake);
        peer.on_wake(sim, &wake);
    }
}

/// Runs the simulation to quiescence, dispatching every wake to all
/// `endpoints` — unlike [`Sim::drain`], which discards wakes, so teardown
/// traffic (FINs) still reaches the endpoints' state machines.
pub fn drain_endpoints(sim: &mut Sim, endpoints: &mut [&mut dyn Endpoint]) {
    while let Some(wake) = sim.next_wake() {
        for endpoint in endpoints.iter_mut() {
            endpoint.on_wake(sim, &wake);
        }
    }
}
