//! Simulated DNS transports — Do53, DoT and DoH over HTTP/1.1 and
//! HTTP/2 — with per-resolution cost attribution.
//!
//! This crate drives `dohmark-netsim` with protocol-faithful DNS message
//! exchanges — every byte the [`CostMeter`](dohmark_netsim::CostMeter)
//! records is a byte the corresponding real transport would put on the
//! wire:
//!
//! * [`do53`] — classic DNS over UDP, the paper's §3 baseline. The client
//!   sends each query from a **fresh ephemeral source port** and matches
//!   responses by transaction id.
//! * [`dot`] — DNS over TLS (RFC 7858): messages carry the RFC 7766
//!   2-byte length prefix and travel inside TLS application-data records
//!   over simulated TCP, with handshake bytes taken from the
//!   `dohmark-tls-model` flight model.
//! * [`doh1`] — DNS over HTTPS on HTTP/1.1: `POST /dns-query` request
//!   text and `200 OK` response text from `dohmark-httpsim::h1`, header
//!   bytes tagged `HttpHeader` and bodies `HttpBody`.
//! * [`doh2`] — DNS over HTTPS on HTTP/2: connection preface, SETTINGS /
//!   WINDOW_UPDATE / GOAWAY management frames (tagged `HttpMgmt`), and
//!   per-query HEADERS + DATA frames with real HPACK header compression —
//!   on a persistent connection the dynamic table shrinks header bytes
//!   after the first query, exactly the effect the paper measures.
//!
//! # The unified transport API: a registry with addressed wake routing
//!
//! Every client implements [`Resolver`] and every server [`Endpoint`], so
//! experiments iterate over [`TransportConfig`]s instead of naming
//! concrete types. Endpoints live in a [`Driver`] registry: each is
//! registered under an [`EndpointId`], the netsim layer stamps every
//! socket/connection/timer the endpoint creates with that id, and the
//! driver routes each wake **only to its owner** — O(1) dispatch that
//! scales from the original echo pair to thousand-client topologies.
//! [`TransportConfig::build_server`] / [`TransportConfig::build_client`]
//! are the factories to register:
//!
//! ```
//! use dohmark_dns_wire::Name;
//! use dohmark_doh::{Driver, ReusePolicy, TransportConfig, TransportKind};
//! use dohmark_netsim::Sim;
//!
//! let mut sim = Sim::new(42);
//! let cfg = TransportConfig::new(TransportKind::DohH2, ReusePolicy::Persistent);
//! let stub = sim.add_host("stub");
//! let resolver = sim.add_host("resolver");
//! sim.add_link(stub, resolver, cfg.link);
//! let mut driver = Driver::new();
//! let _server = driver.register(&mut sim, |sim| cfg.build_server(sim, resolver));
//! let client = driver.register_resolver(&mut sim, |_| cfg.build_client(stub, resolver));
//! let name = Name::parse("example.com").unwrap();
//! let response = driver.resolve(&mut sim, client, &name, 1).unwrap();
//! assert_eq!(response.answers.len(), 1);
//! ```
//!
//! The pre-registry entry points remain for one release, **deprecated**:
//! [`build_pair`] constructs an unregistered boxed client/server pair and
//! [`resolve_with`] / [`drain_endpoints`] / [`advance_endpoints_until`]
//! drive it by *broadcasting* every wake to every endpoint. They are thin
//! shims over the same event-pump machinery the driver uses, so both
//! dispatch models stay semantically aligned; new code should register
//! endpoints in a [`Driver`] and use [`Driver::resolve`] /
//! [`Driver::run_until_quiescent`] / [`Driver::advance_until`] instead.
//!
//! # Servers answer from pluggable backends
//!
//! Every transport server answers from a [`ServerBackend`]: the classic
//! `bind(...)` constructors keep the paper's fixed-echo behaviour
//! ([`Zone::fixed`]), while `bind_with(...)` accepts a synthetic
//! authoritative [`Zone`] or a [`RecursiveResolver`] — a TTL-driven
//! positive/negative cache (RFC 2308) shared by all client sessions of
//! that server, fetching misses from a Do53 upstream and exposing
//! hit/miss counters through the cost meter.
//!
//! # Attribution
//!
//! Each resolution is identified by its DNS transaction id, which doubles
//! as the simulator attribution id: clients call
//! [`Sim::set_attr`](dohmark_netsim::Sim::set_attr) before writing query
//! bytes and servers set it from the decoded query id before answering, so
//! the meter splits cost per resolution. Connection setup (TCP handshake +
//! TLS flights + HTTP/2 preface and SETTINGS) is charged to the id current
//! when the connection was opened: the resolution's own id for fresh
//! connections, a caller-chosen connection id for persistent ones.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod do53;
pub mod doh1;
pub mod doh2;
pub mod dot;
mod driver;
pub mod resolver;
mod tls_stream;
mod transport;
pub mod zone;

pub use cache::{CacheStats, DnsCache};
pub use do53::{Do53Client, Do53Server, UdpRetry};
pub use doh1::{DohH1Client, DohH1Server};
pub use doh2::{DohH2Client, DohH2Server};
pub use dot::{DotClient, DotServer, ReusePolicy};
pub use driver::{Driver, EndpointId};
pub use resolver::{RecursiveResolver, ServerBackend};
pub use transport::{build_pair, build_pair_on, TransportConfig, TransportKind};
pub use zone::Zone;

use dohmark_dns_wire::{Message, Name};
use dohmark_netsim::{Sim, SimTime, Wake};

/// A simulation participant that reacts to application-visible wakes.
///
/// `on_wake` is called for **every** wake the driver pops, including ones
/// addressed to other endpoints; implementations must filter by their own
/// socket/connection handles and ignore the rest.
pub trait Endpoint {
    /// Reacts to one wake (possibly not addressed to this endpoint).
    fn on_wake(&mut self, sim: &mut Sim, wake: &Wake);
}

/// A transport client that can start a resolution, surface its result and
/// tear its connections down — the unified client API every transport
/// (Do53, DoT, DoH-h1, DoH-h2) implements and [`resolve_with`] drives.
pub trait Resolver: Endpoint {
    /// Starts an A-record resolution for `name` with transaction (and
    /// attribution) id `id`.
    fn send_query(&mut self, sim: &mut Sim, name: &Name, id: u16);

    /// Removes and returns the response to transaction `id`, if received.
    fn take_response(&mut self, id: u16) -> Option<Message>;

    /// Initiates a graceful teardown of any open transport state (TCP
    /// FIN, HTTP/2 GOAWAY); in-flight wakes still need to be drained with
    /// [`drain_endpoints`] afterwards. Default: nothing to tear down.
    fn close(&mut self, sim: &mut Sim) {
        let _ = sim;
    }
}

/// The pre-redesign name of [`Resolver`], kept as an alias so existing
/// `use dohmark_doh::QueryClient` imports keep compiling.
pub use Resolver as QueryClient;

/// Sends one query and runs the simulation until its response arrives,
/// dispatching every wake to both the client and `peer`.
///
/// Returns `None` if the simulation runs dry first (e.g. an unanswered
/// datagram on a lossy link — the clients model no application retries).
/// Wakes not consumed by either endpoint are discarded; use
/// [`resolve_with_extras`] when other endpoints (old connections, other
/// sessions) still need their teardown wakes.
///
/// remove-by: PR 11
#[deprecated(note = "register the endpoints in a `Driver` and use `Driver::resolve`; \
                     this broadcast shim will be removed next release")]
pub fn resolve_with(
    sim: &mut Sim,
    client: &mut (impl Resolver + ?Sized),
    peer: &mut dyn Endpoint,
    name: &Name,
    id: u16,
) -> Option<Message> {
    resolve_with_extras_impl(sim, client, peer, &mut [], name, id)
}

/// [`resolve_with`], additionally routing every wake to the `extras`
/// endpoints, so a multi-connection session (several DoH clients sharing
/// one simulator, an old connection draining its FIN) cannot lose
/// teardown wakes while one resolution is being driven.
///
/// remove-by: PR 11
#[deprecated(note = "register every session in a `Driver` — addressed routing never loses \
                     bystander wakes; this broadcast shim will be removed next release")]
pub fn resolve_with_extras(
    sim: &mut Sim,
    client: &mut (impl Resolver + ?Sized),
    peer: &mut dyn Endpoint,
    extras: &mut [&mut dyn Endpoint],
    name: &Name,
    id: u16,
) -> Option<Message> {
    resolve_with_extras_impl(sim, client, peer, extras, name, id)
}

/// Non-deprecated body of [`resolve_with_extras`], shared with the
/// per-transport `resolve` convenience methods.
pub(crate) fn resolve_with_extras_impl(
    sim: &mut Sim,
    client: &mut (impl Resolver + ?Sized),
    peer: &mut dyn Endpoint,
    extras: &mut [&mut dyn Endpoint],
    name: &Name,
    id: u16,
) -> Option<Message> {
    let mut route = driver::Broadcast { first: Some(peer), rest: extras };
    driver::resolve_routed(sim, client, &mut route, name, id)
}

/// Runs the simulation to quiescence, dispatching every wake to all
/// `endpoints` — unlike [`Sim::drain`], which discards wakes, so teardown
/// traffic (FINs) still reaches the endpoints' state machines.
///
/// remove-by: PR 11
#[deprecated(note = "register the endpoints in a `Driver` and use \
                     `Driver::run_until_quiescent`; this broadcast shim will be removed \
                     next release")]
pub fn drain_endpoints(sim: &mut Sim, endpoints: &mut [&mut dyn Endpoint]) {
    drain_endpoints_impl(sim, endpoints);
}

/// Non-deprecated body of [`drain_endpoints`], shared with in-crate tests.
pub(crate) fn drain_endpoints_impl(sim: &mut Sim, endpoints: &mut [&mut dyn Endpoint]) {
    let mut route = driver::Broadcast { first: None, rest: endpoints };
    driver::drain_routed(sim, &mut route);
}

/// Token [`advance_endpoints_until`] reserves for its internal timer;
/// application timers must use other values.
pub const ADVANCE_TOKEN: u64 = u64::MAX;

/// Advances the simulation to time `at`, dispatching every wake seen on
/// the way (leftover ACKs, FIN teardown, late responses) to all
/// `endpoints` — the idle time between two workload arrivals.
///
/// remove-by: PR 11
#[deprecated(note = "register the endpoints in a `Driver` and use `Driver::advance_until`; \
                     this broadcast shim will be removed next release")]
pub fn advance_endpoints_until(sim: &mut Sim, endpoints: &mut [&mut dyn Endpoint], at: SimTime) {
    let mut route = driver::Broadcast { first: None, rest: endpoints };
    driver::advance_routed(sim, &mut route, at);
}
