//! Property-based tests for the HTTP codecs.
//!
//! Same pattern as `dns-wire/tests/prop.rs`: the workspace builds
//! offline, so instead of `proptest` a small in-file SplitMix64 generator
//! drives random inputs, and every property is checked over many cases.
//! Failures print the offending seed so a case can be replayed exactly.

use dohmark_httpsim::h1::{Request, RequestParser, Response, ResponseParser};
use dohmark_httpsim::hpack::{huffman_decode, huffman_encode, Decoder, Encoder};

const CASES: u64 = 192;

/// Deterministic SplitMix64 generator; tiny, unbiased enough for tests.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, one_in: u64) -> bool {
        self.below(one_in) == 0
    }

    /// A header-name token: `[a-z][a-z0-9-]{0,14}`, sometimes a
    /// well-known name so the static table gets exercised.
    fn header_name(&mut self) -> String {
        const KNOWN: [&str; 8] = [
            "content-type",
            "content-length",
            "accept",
            "user-agent",
            "cache-control",
            "x-padding",
            "etag",
            "via",
        ];
        if self.chance(3) {
            return KNOWN[self.below(KNOWN.len() as u64) as usize].to_string();
        }
        const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
        const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-";
        let len = self.below(15) as usize;
        let mut s = String::new();
        s.push(FIRST[self.below(26) as usize] as char);
        for _ in 0..len {
            s.push(REST[self.below(REST.len() as u64) as usize] as char);
        }
        s
    }

    /// A header value: printable ASCII without CR/LF, no edge whitespace
    /// (HTTP/1.1 parsing trims optional whitespace around values).
    fn header_value(&mut self, max: u64) -> String {
        let len = self.below(max + 1);
        let mut s: String = (0..len).map(|_| (0x20 + self.below(0x5F)) as u8 as char).collect();
        while s.starts_with(' ') || s.ends_with(' ') {
            s = s.trim().to_string();
        }
        s
    }

    fn headers(&mut self, max: u64) -> Vec<(String, String)> {
        (0..self.below(max + 1)).map(|_| (self.header_name(), self.header_value(30))).collect()
    }

    fn bytes(&mut self, max: u64) -> Vec<u8> {
        (0..self.below(max + 1)).map(|_| self.next() as u8).collect()
    }

    /// Randomises ASCII case, e.g. `content-length` → `CoNtEnT-LeNgTh`.
    fn mangle_case(&mut self, s: &str) -> String {
        s.chars()
            .map(|c| if self.chance(2) { c.to_ascii_uppercase() } else { c.to_ascii_lowercase() })
            .collect()
    }
}

// ---------------------------------------------------------------------
// HPACK
// ---------------------------------------------------------------------

#[test]
fn hpack_random_header_lists_round_trip() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        for round in 0..4 {
            let headers = g.headers(12);
            let block = enc.encode(&headers);
            let decoded = dec
                .decode(&block)
                .unwrap_or_else(|e| panic!("seed {seed} round {round}: decode failed: {e}"));
            assert_eq!(decoded, headers, "seed {seed} round {round}");
        }
    }
}

#[test]
fn hpack_round_trips_through_dynamic_table_evictions() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        // Tiny tables (0..=160 octets) force constant eviction churn;
        // entries are ~35-80 octets each (name + value + 32).
        let capacity = (g.below(5) * 40) as usize;
        let mut enc = Encoder::with_capacity(capacity);
        let mut dec = Decoder::with_capacity(capacity);
        for round in 0..8 {
            let headers = g.headers(6);
            let block = enc.encode(&headers);
            let decoded = dec
                .decode(&block)
                .unwrap_or_else(|e| panic!("seed {seed} round {round}: decode failed: {e}"));
            assert_eq!(decoded, headers, "seed {seed} round {round} cap {capacity}");
            assert_eq!(
                enc.table_size(),
                dec.table_size(),
                "seed {seed} round {round}: tables diverged"
            );
            assert!(enc.table_size() <= capacity, "seed {seed}: eviction failed");
        }
    }
}

#[test]
fn hpack_capacity_changes_mid_stream_stay_in_lockstep() {
    for seed in 0..CASES / 4 {
        let mut g = Gen::new(seed);
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        for round in 0..6 {
            if g.chance(2) {
                enc.set_capacity((g.below(8) * 32) as usize);
            }
            let headers = g.headers(5);
            let block = enc.encode(&headers);
            assert_eq!(dec.decode(&block).unwrap(), headers, "seed {seed} round {round}");
            assert_eq!(enc.table_size(), dec.table_size(), "seed {seed} round {round}");
        }
    }
}

#[test]
fn huffman_round_trips_arbitrary_bytes() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let input = g.bytes(200);
        let coded = huffman_encode(&input);
        assert_eq!(huffman_decode(&coded).unwrap(), input, "seed {seed}");
    }
}

// ---------------------------------------------------------------------
// HTTP/1.1
// ---------------------------------------------------------------------

/// Compares header lists modulo name case.
fn headers_match(sent: &[(String, String)], got: &[(String, String)]) -> bool {
    sent.len() == got.len()
        && sent.iter().zip(got).all(|((an, av), (bn, bv))| an.eq_ignore_ascii_case(bn) && av == bv)
}

#[test]
fn h1_random_requests_round_trip_across_segmentation() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let mut headers = g.headers(8);
        // Framing headers are supplied by the encoder; random lists must
        // not carry their own (a random "content-length: <garbage>" would
        // be a *different*, legitimately rejected message).
        headers.retain(|(n, _)| {
            !n.eq_ignore_ascii_case("content-length")
                && !n.eq_ignore_ascii_case("transfer-encoding")
        });
        let body = g.bytes(300);
        let chunked = g.chance(3);
        if chunked {
            headers.push(("Transfer-Encoding".to_string(), "chunked".to_string()));
        }
        // Odd header casing must survive the trip (case-insensitively).
        for (name, _) in headers.iter_mut() {
            *name = g.mangle_case(name);
        }
        let request = Request::new("POST", "/dns-query", headers.clone()).with_body(body.clone());
        let wire = request.encode().concat();
        let mut parser = RequestParser::new();
        let step = 1 + g.below(40) as usize;
        let mut got = None;
        for chunk in wire.chunks(step) {
            parser.push(chunk);
            if let Some(req) = parser.next_request().unwrap_or_else(|e| {
                panic!("seed {seed}: parse failed: {e}");
            }) {
                got = Some(req);
            }
        }
        let got = got.unwrap_or_else(|| panic!("seed {seed}: no request parsed"));
        assert_eq!(got.method, "POST", "seed {seed}");
        assert_eq!(got.body, body, "seed {seed}");
        let mut sent = headers.clone();
        if !chunked && !body.is_empty() {
            sent.push(("content-length".to_string(), body.len().to_string()));
        }
        assert!(headers_match(&sent, &got.headers), "seed {seed}: {sent:?} vs {:?}", got.headers);
    }
}

#[test]
fn h1_pipelined_random_responses_round_trip() {
    for seed in 0..CASES / 2 {
        let mut g = Gen::new(seed);
        let count = 1 + g.below(4) as usize;
        let mut wire = Vec::new();
        let mut sent = Vec::new();
        for _ in 0..count {
            let mut headers = g.headers(5);
            headers.retain(|(n, _)| {
                !n.eq_ignore_ascii_case("content-length")
                    && !n.eq_ignore_ascii_case("transfer-encoding")
            });
            if g.chance(3) {
                headers.push((g.mangle_case("transfer-encoding"), "chunked".to_string()));
            }
            let body = g.bytes(200);
            let status = 200 + (g.below(5) as u16) * 100;
            let response = Response::new(status, "Status", headers).with_body(body);
            wire.extend(response.encode().concat());
            sent.push(response);
        }
        let mut parser = ResponseParser::new();
        let mut got = Vec::new();
        let step = 1 + g.below(64) as usize;
        for chunk in wire.chunks(step) {
            parser.push(chunk);
            while let Some(resp) =
                parser.next_response().unwrap_or_else(|e| panic!("seed {seed}: {e}"))
            {
                got.push(resp);
            }
        }
        assert_eq!(got.len(), sent.len(), "seed {seed}");
        for (s, r) in sent.iter().zip(&got) {
            assert_eq!(s.status, r.status, "seed {seed}");
            assert_eq!(s.body, r.body, "seed {seed}");
        }
    }
}
