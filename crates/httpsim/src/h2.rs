//! HTTP/2 framing (RFC 9113): the connection preface and the frame types
//! a DoH exchange touches.
//!
//! Every frame is `encode`d to exactly the bytes a real implementation
//! emits — the 9-octet frame header (24-bit length, type, flags, 31-bit
//! stream id) followed by the typed payload — and [`FrameDecoder`] parses
//! them back out of an arbitrary stream segmentation. Supported types:
//! DATA, HEADERS, SETTINGS, WINDOW_UPDATE, PING, GOAWAY and RST_STREAM
//! (PRIORITY/PUSH_PROMISE/CONTINUATION never occur in the simulated DoH
//! traffic; unknown frame types decode as [`Frame::Unknown`] and are
//! ignored by endpoints, as §4.1 requires).
//!
//! Header blocks inside HEADERS frames are opaque bytes here — produce and
//! consume them with [`crate::hpack`]. The split matters for cost
//! accounting: HEADERS frames (header bytes plus their frame header) are
//! charged to the paper's "Hdr" layer, DATA frames to "Body", and
//! everything else to "Mgmt".

use std::fmt;

/// The 24 octets every client connection starts with (§3.4).
pub const PREFACE: &[u8; 24] = b"PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n";

/// Size of the fixed frame header (§4.1).
pub const FRAME_HEADER: usize = 9;

/// Identifiers of the SETTINGS parameters (§6.5.2).
pub mod settings {
    /// Maximum size of the peer's HPACK dynamic table.
    pub const HEADER_TABLE_SIZE: u16 = 0x1;
    /// Whether server push is permitted (0 or 1).
    pub const ENABLE_PUSH: u16 = 0x2;
    /// Maximum concurrent streams the sender allows.
    pub const MAX_CONCURRENT_STREAMS: u16 = 0x3;
    /// Initial per-stream flow-control window.
    pub const INITIAL_WINDOW_SIZE: u16 = 0x4;
    /// Largest frame payload the sender accepts.
    pub const MAX_FRAME_SIZE: u16 = 0x5;
    /// Advisory maximum header-list size.
    pub const MAX_HEADER_LIST_SIZE: u16 = 0x6;
}

/// Frame-type codes (§6).
mod frame_type {
    pub const DATA: u8 = 0x0;
    pub const HEADERS: u8 = 0x1;
    pub const RST_STREAM: u8 = 0x3;
    pub const SETTINGS: u8 = 0x4;
    pub const PING: u8 = 0x6;
    pub const GOAWAY: u8 = 0x7;
    pub const WINDOW_UPDATE: u8 = 0x8;
}

const FLAG_END_STREAM: u8 = 0x1;
const FLAG_ACK: u8 = 0x1;
const FLAG_END_HEADERS: u8 = 0x4;

/// A decode failure; real stacks answer with a connection error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum H2Error {
    /// A frame payload did not match its type's fixed layout.
    BadFrame(&'static str),
    /// A frame declared a payload longer than the implementation limit.
    FrameTooLarge(usize),
}

impl fmt::Display for H2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            H2Error::BadFrame(what) => write!(f, "malformed {what} frame"),
            H2Error::FrameTooLarge(n) => write!(f, "frame payload of {n} bytes too large"),
        }
    }
}

impl std::error::Error for H2Error {}

/// One HTTP/2 frame, typed by payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// DATA (§6.1): stream payload bytes.
    Data {
        /// Stream the data belongs to.
        stream_id: u32,
        /// Payload bytes.
        data: Vec<u8>,
        /// END_STREAM flag.
        end_stream: bool,
    },
    /// HEADERS (§6.2) carrying a complete HPACK header block.
    Headers {
        /// Stream the header block opens.
        stream_id: u32,
        /// HPACK-encoded header block fragment.
        block: Vec<u8>,
        /// END_STREAM flag.
        end_stream: bool,
    },
    /// SETTINGS (§6.5): parameter list, or an empty acknowledgement.
    Settings {
        /// `(identifier, value)` pairs; empty for an ACK.
        params: Vec<(u16, u32)>,
        /// ACK flag.
        ack: bool,
    },
    /// WINDOW_UPDATE (§6.9).
    WindowUpdate {
        /// 0 for the connection window, else the stream.
        stream_id: u32,
        /// Window increment in octets.
        increment: u32,
    },
    /// PING (§6.7): 8 opaque octets.
    Ping {
        /// Opaque payload, echoed in the ACK.
        data: [u8; 8],
        /// ACK flag.
        ack: bool,
    },
    /// GOAWAY (§6.8).
    Goaway {
        /// Highest stream id the sender may still process.
        last_stream_id: u32,
        /// Error code (0 = NO_ERROR, the graceful case).
        error_code: u32,
        /// Optional opaque debug data.
        debug: Vec<u8>,
    },
    /// RST_STREAM (§6.4).
    RstStream {
        /// The stream being reset.
        stream_id: u32,
        /// Error code.
        error_code: u32,
    },
    /// Any frame type this model does not interpret (§4.1: must be
    /// ignored, but its bytes were still on the wire).
    Unknown {
        /// Frame type code.
        frame_type: u8,
        /// Stream id from the frame header.
        stream_id: u32,
        /// Raw payload.
        payload: Vec<u8>,
    },
}

fn put_frame_header(out: &mut Vec<u8>, len: usize, ftype: u8, flags: u8, stream_id: u32) {
    debug_assert!(len < 1 << 24);
    out.extend_from_slice(&(len as u32).to_be_bytes()[1..]);
    out.push(ftype);
    out.push(flags);
    out.extend_from_slice(&(stream_id & 0x7FFF_FFFF).to_be_bytes());
}

impl Frame {
    /// Serialises the frame: 9-octet header plus payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FRAME_HEADER + 16);
        match self {
            Frame::Data { stream_id, data, end_stream } => {
                let flags = if *end_stream { FLAG_END_STREAM } else { 0 };
                put_frame_header(&mut out, data.len(), frame_type::DATA, flags, *stream_id);
                out.extend_from_slice(data);
            }
            Frame::Headers { stream_id, block, end_stream } => {
                // Header blocks here always fit one frame, so END_HEADERS
                // is always set and CONTINUATION never occurs.
                let mut flags = FLAG_END_HEADERS;
                if *end_stream {
                    flags |= FLAG_END_STREAM;
                }
                put_frame_header(&mut out, block.len(), frame_type::HEADERS, flags, *stream_id);
                out.extend_from_slice(block);
            }
            Frame::Settings { params, ack } => {
                let flags = if *ack { FLAG_ACK } else { 0 };
                put_frame_header(&mut out, params.len() * 6, frame_type::SETTINGS, flags, 0);
                for &(id, value) in params {
                    out.extend_from_slice(&id.to_be_bytes());
                    out.extend_from_slice(&value.to_be_bytes());
                }
            }
            Frame::WindowUpdate { stream_id, increment } => {
                put_frame_header(&mut out, 4, frame_type::WINDOW_UPDATE, 0, *stream_id);
                out.extend_from_slice(&(increment & 0x7FFF_FFFF).to_be_bytes());
            }
            Frame::Ping { data, ack } => {
                let flags = if *ack { FLAG_ACK } else { 0 };
                put_frame_header(&mut out, 8, frame_type::PING, flags, 0);
                out.extend_from_slice(data);
            }
            Frame::Goaway { last_stream_id, error_code, debug } => {
                put_frame_header(&mut out, 8 + debug.len(), frame_type::GOAWAY, 0, 0);
                out.extend_from_slice(&(last_stream_id & 0x7FFF_FFFF).to_be_bytes());
                out.extend_from_slice(&error_code.to_be_bytes());
                out.extend_from_slice(debug);
            }
            Frame::RstStream { stream_id, error_code } => {
                put_frame_header(&mut out, 4, frame_type::RST_STREAM, 0, *stream_id);
                out.extend_from_slice(&error_code.to_be_bytes());
            }
            Frame::Unknown { frame_type, stream_id, payload } => {
                put_frame_header(&mut out, payload.len(), *frame_type, 0, *stream_id);
                out.extend_from_slice(payload);
            }
        }
        out
    }

    /// Total wire length of the encoded frame.
    pub fn wire_len(&self) -> usize {
        FRAME_HEADER
            + match self {
                Frame::Data { data, .. } => data.len(),
                Frame::Headers { block, .. } => block.len(),
                Frame::Settings { params, .. } => params.len() * 6,
                Frame::WindowUpdate { .. } | Frame::RstStream { .. } => 4,
                Frame::Ping { .. } => 8,
                Frame::Goaway { debug, .. } => 8 + debug.len(),
                Frame::Unknown { payload, .. } => payload.len(),
            }
    }

    /// Whether this is connection management (the paper's "Mgmt" layer)
    /// rather than request headers or body.
    pub fn is_mgmt(&self) -> bool {
        !matches!(self, Frame::Data { .. } | Frame::Headers { .. })
    }

    fn decode(ftype: u8, flags: u8, stream_id: u32, payload: &[u8]) -> Result<Frame, H2Error> {
        let be32 = |b: &[u8]| u32::from_be_bytes([b[0], b[1], b[2], b[3]]);
        match ftype {
            frame_type::DATA => Ok(Frame::Data {
                stream_id,
                data: payload.to_vec(),
                end_stream: flags & FLAG_END_STREAM != 0,
            }),
            frame_type::HEADERS => Ok(Frame::Headers {
                stream_id,
                block: payload.to_vec(),
                end_stream: flags & FLAG_END_STREAM != 0,
            }),
            frame_type::SETTINGS => {
                if payload.len() % 6 != 0 {
                    return Err(H2Error::BadFrame("SETTINGS"));
                }
                let params = payload
                    .chunks_exact(6)
                    .map(|c| (u16::from_be_bytes([c[0], c[1]]), be32(&c[2..])))
                    .collect();
                Ok(Frame::Settings { params, ack: flags & FLAG_ACK != 0 })
            }
            frame_type::WINDOW_UPDATE => {
                if payload.len() != 4 {
                    return Err(H2Error::BadFrame("WINDOW_UPDATE"));
                }
                Ok(Frame::WindowUpdate { stream_id, increment: be32(payload) & 0x7FFF_FFFF })
            }
            frame_type::PING => {
                let data: [u8; 8] = payload.try_into().map_err(|_| H2Error::BadFrame("PING"))?;
                Ok(Frame::Ping { data, ack: flags & FLAG_ACK != 0 })
            }
            frame_type::GOAWAY => {
                if payload.len() < 8 {
                    return Err(H2Error::BadFrame("GOAWAY"));
                }
                Ok(Frame::Goaway {
                    last_stream_id: be32(payload) & 0x7FFF_FFFF,
                    error_code: be32(&payload[4..]),
                    debug: payload[8..].to_vec(),
                })
            }
            frame_type::RST_STREAM => {
                if payload.len() != 4 {
                    return Err(H2Error::BadFrame("RST_STREAM"));
                }
                Ok(Frame::RstStream { stream_id, error_code: be32(payload) })
            }
            other => Ok(Frame::Unknown { frame_type: other, stream_id, payload: payload.to_vec() }),
        }
    }
}

/// Sanity bound on declared payload lengths: 1 MiB, far above the 16 kB
/// SETTINGS_MAX_FRAME_SIZE the simulated endpoints advertise but low
/// enough that a corrupt length field (up to 2^24 − 1) is rejected
/// instead of stalling the decoder waiting for megabytes that never come.
const MAX_FRAME_PAYLOAD: usize = 1 << 20;

/// Incremental frame parser for one direction of a connection.
///
/// Feed raw stream bytes with [`FrameDecoder::push`] (after stripping the
/// client [`PREFACE`], which is not a frame), then drain complete frames
/// with [`FrameDecoder::next_frame`].
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends received stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete frame, if fully received.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, H2Error> {
        if self.buf.len() < FRAME_HEADER {
            return Ok(None);
        }
        let len = usize::from(self.buf[0]) << 16
            | usize::from(self.buf[1]) << 8
            | usize::from(self.buf[2]);
        if len >= MAX_FRAME_PAYLOAD {
            return Err(H2Error::FrameTooLarge(len));
        }
        if self.buf.len() < FRAME_HEADER + len {
            return Ok(None);
        }
        let ftype = self.buf[3];
        let flags = self.buf[4];
        let stream_id =
            u32::from_be_bytes([self.buf[5], self.buf[6], self.buf[7], self.buf[8]]) & 0x7FFF_FFFF;
        let payload: Vec<u8> = self.buf.drain(..FRAME_HEADER + len).skip(FRAME_HEADER).collect();
        Frame::decode(ftype, flags, stream_id, &payload).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let wire = frame.encode();
        assert_eq!(wire.len(), frame.wire_len());
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        assert_eq!(dec.next_frame().unwrap(), Some(frame));
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn every_frame_type_round_trips() {
        round_trip(Frame::Data { stream_id: 1, data: vec![1, 2, 3], end_stream: true });
        round_trip(Frame::Headers { stream_id: 3, block: vec![0x82, 0x87], end_stream: false });
        round_trip(Frame::Settings {
            params: vec![(settings::HEADER_TABLE_SIZE, 4096), (settings::ENABLE_PUSH, 0)],
            ack: false,
        });
        round_trip(Frame::Settings { params: Vec::new(), ack: true });
        round_trip(Frame::WindowUpdate { stream_id: 0, increment: 0xFF_0000 });
        round_trip(Frame::Ping { data: [7; 8], ack: true });
        round_trip(Frame::Goaway { last_stream_id: 5, error_code: 0, debug: b"bye".to_vec() });
        round_trip(Frame::RstStream { stream_id: 9, error_code: 8 });
        round_trip(Frame::Unknown { frame_type: 0xA, stream_id: 0, payload: vec![1; 5] });
    }

    #[test]
    fn encoded_layout_matches_rfc9113() {
        let wire = Frame::Data { stream_id: 1, data: vec![0xAB; 5], end_stream: true }.encode();
        // Length 5, type DATA, flags END_STREAM, stream 1, payload.
        assert_eq!(&wire[..FRAME_HEADER], &[0, 0, 5, 0, 1, 0, 0, 0, 1]);
        assert_eq!(&wire[FRAME_HEADER..], &[0xAB; 5]);
        let wire = Frame::Settings { params: vec![(4, 65_535)], ack: false }.encode();
        assert_eq!(wire, vec![0, 0, 6, 4, 0, 0, 0, 0, 0, 0, 4, 0, 0, 0xFF, 0xFF]);
    }

    #[test]
    fn frames_reassemble_from_arbitrary_segmentation() {
        let frames = [
            Frame::Settings { params: vec![(1, 4096), (3, 100), (4, 65_535)], ack: false },
            Frame::Headers { stream_id: 1, block: vec![9; 40], end_stream: false },
            Frame::Data { stream_id: 1, data: vec![3; 33], end_stream: true },
            Frame::Goaway { last_stream_id: 1, error_code: 0, debug: Vec::new() },
        ];
        let wire: Vec<u8> = frames.iter().flat_map(Frame::encode).collect();
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(5) {
            dec.push(chunk);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got.as_slice(), frames.as_slice());
    }

    #[test]
    fn mgmt_classification_matches_the_paper() {
        assert!(Frame::Settings { params: Vec::new(), ack: true }.is_mgmt());
        assert!(Frame::Goaway { last_stream_id: 0, error_code: 0, debug: Vec::new() }.is_mgmt());
        assert!(Frame::WindowUpdate { stream_id: 0, increment: 1 }.is_mgmt());
        assert!(!Frame::Data { stream_id: 1, data: Vec::new(), end_stream: true }.is_mgmt());
        assert!(!Frame::Headers { stream_id: 1, block: Vec::new(), end_stream: false }.is_mgmt());
    }

    #[test]
    fn corrupt_length_fields_are_rejected_not_awaited() {
        let mut dec = FrameDecoder::new();
        // Declared payload of 0xFFFFFF bytes: reject immediately instead
        // of buffering forever for data that will never arrive.
        dec.push(&[0xFF, 0xFF, 0xFF, 0x0, 0x0, 0, 0, 0, 1]);
        assert_eq!(dec.next_frame(), Err(H2Error::FrameTooLarge(0xFF_FFFF)));
    }

    #[test]
    fn malformed_fixed_layout_frames_error() {
        // WINDOW_UPDATE with a 3-byte payload.
        let mut dec = FrameDecoder::new();
        dec.push(&[0, 0, 3, 8, 0, 0, 0, 0, 0, 1, 2, 3]);
        assert_eq!(dec.next_frame(), Err(H2Error::BadFrame("WINDOW_UPDATE")));
        // SETTINGS payload not a multiple of 6.
        let mut dec = FrameDecoder::new();
        dec.push(&[0, 0, 5, 4, 0, 0, 0, 0, 0, 1, 2, 3, 4, 5]);
        assert_eq!(dec.next_frame(), Err(H2Error::BadFrame("SETTINGS")));
    }

    #[test]
    fn preface_is_the_rfc_constant() {
        assert_eq!(PREFACE.len(), 24);
        assert!(PREFACE.starts_with(b"PRI * HTTP/2.0"));
    }
}
