//! HTTP/1.1, HTTP/2 and HPACK codecs (under construction).
