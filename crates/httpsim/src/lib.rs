//! Byte-accurate HTTP codecs for the DoH cost experiments.
//!
//! The paper compares DNS transports byte-for-byte, so this crate
//! reproduces the exact wire encodings of the two HTTP generations DoH
//! runs over — it performs no I/O and holds no connection state beyond
//! what the encodings themselves require:
//!
//! * [`h1`] — HTTP/1.1 request/response text: start lines, header fields,
//!   `content-length` and chunked body framing, with incremental parsers
//!   that tolerate arbitrary stream segmentation and odd header casing.
//! * [`h2`] — HTTP/2 framing: the connection preface and DATA / HEADERS /
//!   SETTINGS / WINDOW_UPDATE / PING / GOAWAY / RST_STREAM frames with
//!   their RFC 9113 layouts, plus a streaming [`h2::FrameDecoder`].
//! * [`hpack`] — RFC 7541 header compression: static table, dynamic table
//!   with size-based eviction, Huffman string coding, and stateful
//!   [`hpack::Encoder`]/[`hpack::Decoder`] pairs. The dynamic table is why
//!   persistent DoH/2 connections amortise header bytes — the effect the
//!   `transport_shootout` example measures.
//!
//! The `dohmark-doh` crate layers these codecs over simulated TLS/TCP and
//! tags the resulting bytes `HttpHeader` / `HttpBody` / `HttpMgmt` so the
//! cost meter can reproduce the paper's Figure 5 layer breakdown.
//!
//! # Example: what one DoH query costs in headers
//!
//! ```
//! use dohmark_httpsim::hpack::{Decoder, Encoder};
//!
//! let request: Vec<(String, String)> = [
//!     (":method", "POST"),
//!     (":scheme", "https"),
//!     (":authority", "dns.example.net"),
//!     (":path", "/dns-query"),
//!     ("content-type", "application/dns-message"),
//!     ("content-length", "33"),
//! ]
//! .map(|(n, v)| (n.to_string(), v.to_string()))
//! .into();
//!
//! let mut encoder = Encoder::new();
//! let mut decoder = Decoder::new();
//! let first = encoder.encode(&request);
//! let second = encoder.encode(&request);
//! assert_eq!(decoder.decode(&first).unwrap(), request);
//! assert_eq!(decoder.decode(&second).unwrap(), request);
//! // The second identical request is six 1-byte table indices.
//! assert_eq!(second.len(), 6);
//! assert!(first.len() > 5 * second.len());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod h1;
pub mod h2;
pub mod hpack;
