//! HTTP/1.1, HTTP/2 and HPACK codecs (under construction).
//!
//! # Planned design
//!
//! Byte-accurate HTTP serialisation for the DoH transports: HTTP/1.1
//! request/response text with configurable header sets, and HTTP/2 framing
//! (HEADERS, DATA, SETTINGS, WINDOW_UPDATE, PING, GOAWAY, RST_STREAM) with
//! a real HPACK encoder — static table, dynamic table with eviction, and
//! Huffman coding — because HPACK's dynamic table is precisely why the
//! paper finds persistent DoH connections amortise header bytes so well.
//! Frame and header bytes will be tagged `HttpHeader`/`HttpBody`/`HttpMgmt`
//! so the layer breakdown of Figure 5 falls out of the cost meter.

#![forbid(unsafe_code)]
