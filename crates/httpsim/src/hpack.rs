//! HPACK header compression (RFC 7541).
//!
//! This is a functional encoder/decoder pair, not a byte-count
//! approximation: header blocks produced by [`Encoder::encode`] decode
//! back to the original header list with [`Decoder::decode`], across the
//! full representation space — indexed lookups against the RFC 7541
//! Appendix A static table, a dynamic table with size-based eviction
//! (entry size = name + value + 32 octets, §4.1), literal representations
//! with and without indexing, dynamic-table size updates, and Huffman
//! string coding.
//!
//! HPACK's dynamic table is *the* reason the paper finds persistent DoH
//! connections amortise header bytes so well: the first request on a
//! connection pays literal header text, every later request with the same
//! headers pays one or two index bytes per header. The byte shrinkage
//! across consecutive queries in `examples/transport_shootout.rs` is this
//! module at work.
//!
//! # Huffman model
//!
//! The Huffman code is built canonically from a code-length table
//! (sorted by length, then symbol — exactly how RFC 7541 Appendix B
//! assigns its codes), so it is prefix-free by construction. Code lengths
//! for printable ASCII (0x20–0x7E) match Appendix B exactly, which makes
//! the canonical codes for that range *identical* to the RFC's; control
//! and non-ASCII octets — which never occur in the header text this
//! simulation produces — share a uniform 23-bit code instead of the RFC's
//! per-symbol 10–30-bit codes. Unfinished trailing bits are padded with
//! ones and validated on decode, as §5.2 requires.

use std::fmt;
use std::sync::OnceLock;

/// Default dynamic-table capacity, the SETTINGS_HEADER_TABLE_SIZE initial
/// value of RFC 7540 §6.5.2.
pub const DEFAULT_TABLE_SIZE: usize = 4096;

/// Per-entry bookkeeping overhead added to name + value lengths (§4.1).
pub const ENTRY_OVERHEAD: usize = 32;

/// The RFC 7541 Appendix A static table (1-indexed).
pub const STATIC_TABLE: [(&str, &str); 61] = [
    (":authority", ""),
    (":method", "GET"),
    (":method", "POST"),
    (":path", "/"),
    (":path", "/index.html"),
    (":scheme", "http"),
    (":scheme", "https"),
    (":status", "200"),
    (":status", "204"),
    (":status", "206"),
    (":status", "304"),
    (":status", "400"),
    (":status", "404"),
    (":status", "500"),
    ("accept-charset", ""),
    ("accept-encoding", "gzip, deflate"),
    ("accept-language", ""),
    ("accept-ranges", ""),
    ("accept", ""),
    ("access-control-allow-origin", ""),
    ("age", ""),
    ("allow", ""),
    ("authorization", ""),
    ("cache-control", ""),
    ("content-disposition", ""),
    ("content-encoding", ""),
    ("content-language", ""),
    ("content-length", ""),
    ("content-location", ""),
    ("content-range", ""),
    ("content-type", ""),
    ("cookie", ""),
    ("date", ""),
    ("etag", ""),
    ("expect", ""),
    ("expires", ""),
    ("from", ""),
    ("host", ""),
    ("if-match", ""),
    ("if-modified-since", ""),
    ("if-none-match", ""),
    ("if-range", ""),
    ("if-unmodified-since", ""),
    ("last-modified", ""),
    ("link", ""),
    ("location", ""),
    ("max-forwards", ""),
    ("proxy-authenticate", ""),
    ("proxy-authorization", ""),
    ("range", ""),
    ("referer", ""),
    ("refresh", ""),
    ("retry-after", ""),
    ("server", ""),
    ("set-cookie", ""),
    ("strict-transport-security", ""),
    ("transfer-encoding", ""),
    ("user-agent", ""),
    ("vary", ""),
    ("via", ""),
    ("www-authenticate", ""),
];

/// A decode failure. Real HTTP/2 stacks treat any of these as a
/// connection-level COMPRESSION_ERROR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HpackError {
    /// The block ended in the middle of an instruction.
    Truncated,
    /// An index pointed past both tables.
    BadIndex(usize),
    /// A prefixed integer exceeded the implementation limit.
    IntegerOverflow,
    /// Huffman data did not decode to a whole number of symbols, used a
    /// hole in the code space, or ended with invalid padding.
    BadHuffman,
    /// A decoded string was not valid UTF-8 (this implementation stores
    /// header text as Rust strings).
    BadUtf8,
    /// A dynamic-table size update exceeded the configured maximum.
    TableSizeExceeded,
}

impl fmt::Display for HpackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HpackError::Truncated => write!(f, "header block truncated"),
            HpackError::BadIndex(i) => write!(f, "index {i} outside both tables"),
            HpackError::IntegerOverflow => write!(f, "prefixed integer too large"),
            HpackError::BadHuffman => write!(f, "invalid Huffman data"),
            HpackError::BadUtf8 => write!(f, "header text is not UTF-8"),
            HpackError::TableSizeExceeded => write!(f, "size update above the maximum"),
        }
    }
}

impl std::error::Error for HpackError {}

// ---------------------------------------------------------------------
// Prefixed integers (§5.1)
// ---------------------------------------------------------------------

/// Encodes `value` with an N-bit prefix, OR-ing the pattern bits of
/// `first_byte` into the first octet.
fn encode_int(out: &mut Vec<u8>, first_byte: u8, prefix_bits: u8, mut value: usize) {
    let max_prefix = (1usize << prefix_bits) - 1;
    if value < max_prefix {
        out.push(first_byte | value as u8);
        return;
    }
    out.push(first_byte | max_prefix as u8);
    value -= max_prefix;
    while value >= 128 {
        out.push((value % 128) as u8 | 0x80);
        value /= 128;
    }
    out.push(value as u8);
}

/// Decodes an N-bit-prefixed integer starting at `*pos`, advancing it.
fn decode_int(buf: &[u8], pos: &mut usize, prefix_bits: u8) -> Result<usize, HpackError> {
    let first = *buf.get(*pos).ok_or(HpackError::Truncated)?;
    *pos += 1;
    let max_prefix = (1usize << prefix_bits) - 1;
    let mut value = usize::from(first) & max_prefix;
    if value < max_prefix {
        return Ok(value);
    }
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(HpackError::Truncated)?;
        *pos += 1;
        // Cap far above any sane header size but far below overflow.
        if shift > 28 {
            return Err(HpackError::IntegerOverflow);
        }
        value += usize::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

// ---------------------------------------------------------------------
// Huffman coding (§5.2, Appendix B code lengths for printable ASCII)
// ---------------------------------------------------------------------

/// Code length in bits for each symbol 0..=255 (no explicit EOS symbol:
/// it is never encoded, and padding is validated as all-one bits).
fn code_lengths() -> [u8; 256] {
    let mut len = [23u8; 256];
    // NUL is the one symbol outside printable ASCII with a short RFC code
    // (13 bits); it sits before '$' in the canonical order, so including
    // it keeps every code from 13 bits up aligned with Appendix B.
    len[0] = 13;
    for (bits, symbols) in [
        (5, "012aceiost".as_bytes()),
        (6, b" %-./3456789=A_bdfghlmnpru".as_slice()),
        (7, b":BCDEFGHIJKLMNOPQRSTUVWYjkqvwxyz".as_slice()),
        (8, b"&*,;XZ".as_slice()),
        (10, b"!\"()?".as_slice()),
        (11, b"'+|".as_slice()),
        (12, b"#>".as_slice()),
        (13, b"$@[]~".as_slice()),
        (14, b"^}".as_slice()),
        (15, b"<`{".as_slice()),
        (19, b"\\".as_slice()),
    ] {
        for &s in symbols {
            len[usize::from(s)] = bits;
        }
    }
    len
}

/// The built Huffman code: per-symbol (code, length) plus a binary decode
/// trie in a flat node array (`[left, right]`, leaves store `!symbol`).
struct Huffman {
    codes: [(u32, u8); 256],
    trie: Vec<[i32; 2]>,
}

impl Huffman {
    fn get() -> &'static Huffman {
        static TABLE: OnceLock<Huffman> = OnceLock::new();
        TABLE.get_or_init(Huffman::build)
    }

    fn build() -> Huffman {
        let lengths = code_lengths();
        let mut order: Vec<u16> = (0..256).collect();
        order.sort_by_key(|&s| (lengths[usize::from(s)], s));
        let mut codes = [(0u32, 0u8); 256];
        let mut code = 0u32;
        let mut prev_len = 0u8;
        for &sym in &order {
            let len = lengths[usize::from(sym)];
            if prev_len != 0 {
                code += 1;
            }
            code <<= len - prev_len;
            prev_len = len;
            debug_assert!(len == 32 || code < (1 << len), "code lengths violate Kraft");
            codes[usize::from(sym)] = (code, len);
        }
        let mut trie: Vec<[i32; 2]> = vec![[0, 0]];
        for (sym, &(code, len)) in codes.iter().enumerate() {
            let mut node = 0usize;
            for i in (0..len).rev() {
                let bit = ((code >> i) & 1) as usize;
                if i == 0 {
                    trie[node][bit] = !(sym as i32);
                } else {
                    if trie[node][bit] == 0 {
                        trie.push([0, 0]);
                        trie[node][bit] = (trie.len() - 1) as i32;
                    }
                    node = trie[node][bit] as usize;
                }
            }
        }
        Huffman { codes, trie }
    }
}

/// Huffman-encodes `input`, padding the final partial octet with one bits.
pub fn huffman_encode(input: &[u8]) -> Vec<u8> {
    let table = Huffman::get();
    let mut out = Vec::with_capacity(input.len());
    let mut acc = 0u64;
    let mut bits = 0u8;
    for &byte in input {
        let (code, len) = table.codes[usize::from(byte)];
        acc = (acc << len) | u64::from(code);
        bits += len;
        while bits >= 8 {
            bits -= 8;
            out.push((acc >> bits) as u8);
        }
    }
    if bits > 0 {
        // EOS-prefix padding: all ones.
        out.push(((acc << (8 - bits)) as u8) | (0xFF >> bits));
    }
    out
}

/// Decodes Huffman `input` back to raw bytes, validating the padding.
pub fn huffman_decode(input: &[u8]) -> Result<Vec<u8>, HpackError> {
    let table = Huffman::get();
    let mut out = Vec::with_capacity(input.len() * 8 / 5);
    let mut node = 0usize;
    // Bits consumed since the last completed symbol, and whether they were
    // all ones (the only valid padding, at most 7 bits of it).
    let mut partial_bits = 0u8;
    let mut partial_all_ones = true;
    for &byte in input {
        for i in (0..8).rev() {
            let bit = usize::from((byte >> i) & 1);
            partial_all_ones &= bit == 1;
            partial_bits += 1;
            let next = table.trie[node][bit];
            match next.cmp(&0) {
                std::cmp::Ordering::Less => {
                    out.push(!next as u8);
                    node = 0;
                    partial_bits = 0;
                    partial_all_ones = true;
                }
                std::cmp::Ordering::Equal => return Err(HpackError::BadHuffman),
                std::cmp::Ordering::Greater => node = next as usize,
            }
        }
    }
    if partial_bits >= 8 || !partial_all_ones {
        return Err(HpackError::BadHuffman);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// String literals (§5.2)
// ---------------------------------------------------------------------

/// Writes a string literal, Huffman-coded only when that is shorter (the
/// choice every production encoder makes).
fn encode_string(out: &mut Vec<u8>, s: &str) {
    let huffman = huffman_encode(s.as_bytes());
    if huffman.len() < s.len() {
        encode_int(out, 0x80, 7, huffman.len());
        out.extend_from_slice(&huffman);
    } else {
        encode_int(out, 0x00, 7, s.len());
        out.extend_from_slice(s.as_bytes());
    }
}

fn decode_string(buf: &[u8], pos: &mut usize) -> Result<String, HpackError> {
    let huffman = *buf.get(*pos).ok_or(HpackError::Truncated)? & 0x80 != 0;
    let len = decode_int(buf, pos, 7)?;
    let end = pos.checked_add(len).ok_or(HpackError::IntegerOverflow)?;
    let raw = buf.get(*pos..end).ok_or(HpackError::Truncated)?;
    *pos = end;
    let bytes = if huffman { huffman_decode(raw)? } else { raw.to_vec() };
    String::from_utf8(bytes).map_err(|_| HpackError::BadUtf8)
}

// ---------------------------------------------------------------------
// Dynamic table (§4)
// ---------------------------------------------------------------------

/// The dynamic table both endpoints of a direction maintain in lockstep.
#[derive(Debug, Default)]
struct DynTable {
    /// Newest first: `entries[0]` is index 62.
    entries: std::collections::VecDeque<(String, String)>,
    /// Sum of entry sizes (name + value + 32 each).
    size: usize,
    /// Current capacity (≤ `max_size`).
    capacity: usize,
}

impl DynTable {
    fn new(capacity: usize) -> DynTable {
        DynTable { capacity, ..DynTable::default() }
    }

    fn entry_size(name: &str, value: &str) -> usize {
        name.len() + value.len() + ENTRY_OVERHEAD
    }

    fn evict_to(&mut self, limit: usize) {
        while self.size > limit {
            let (name, value) = self.entries.pop_back().expect("size > 0 implies entries");
            self.size -= DynTable::entry_size(&name, &value);
        }
    }

    fn insert(&mut self, name: String, value: String) {
        let size = DynTable::entry_size(&name, &value);
        if size > self.capacity {
            // An oversized entry empties the table and is not inserted.
            self.evict_to(0);
            return;
        }
        self.evict_to(self.capacity - size);
        self.size += size;
        self.entries.push_front((name, value));
    }

    fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.evict_to(capacity);
    }

    /// Entry by HPACK index (62-based), if present.
    fn get(&self, index: usize) -> Option<&(String, String)> {
        self.entries.get(index.checked_sub(STATIC_TABLE.len() + 1)?)
    }
}

/// Resolves an index against the static then dynamic table.
fn lookup(table: &DynTable, index: usize) -> Result<(String, String), HpackError> {
    if index == 0 {
        return Err(HpackError::BadIndex(0));
    }
    if let Some(&(name, value)) = STATIC_TABLE.get(index - 1) {
        return Ok((name.to_string(), value.to_string()));
    }
    let (name, value) = table.get(index).ok_or(HpackError::BadIndex(index))?;
    Ok((name.clone(), value.clone()))
}

// ---------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------

/// A stateful HPACK encoder for one direction of one connection.
#[derive(Debug)]
pub struct Encoder {
    table: DynTable,
    /// Capacity change to announce in the next header block (§6.3).
    pending_capacity: Option<usize>,
}

impl Default for Encoder {
    fn default() -> Encoder {
        Encoder::new()
    }
}

impl Encoder {
    /// An encoder with the default 4096-octet dynamic table.
    pub fn new() -> Encoder {
        Encoder::with_capacity(DEFAULT_TABLE_SIZE)
    }

    /// An encoder with an explicit dynamic-table capacity.
    pub fn with_capacity(capacity: usize) -> Encoder {
        Encoder { table: DynTable::new(capacity), pending_capacity: None }
    }

    /// Schedules a dynamic-table capacity change; the size-update
    /// instruction is emitted at the start of the next header block.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.pending_capacity = Some(capacity);
    }

    /// Current dynamic-table occupancy in octets (for tests and reports).
    pub fn table_size(&self) -> usize {
        self.table.size
    }

    /// Number of dynamic-table entries.
    pub fn table_entries(&self) -> usize {
        self.table.entries.len()
    }

    /// Encodes `headers` into one header block, updating the dynamic
    /// table exactly as the peer's [`Decoder`] will.
    pub fn encode(&mut self, headers: &[(String, String)]) -> Vec<u8> {
        let mut out = Vec::new();
        if let Some(capacity) = self.pending_capacity.take() {
            encode_int(&mut out, 0x20, 5, capacity);
            self.table.set_capacity(capacity);
        }
        for (name, value) in headers {
            self.encode_header(&mut out, name, value);
        }
        out
    }

    fn encode_header(&mut self, out: &mut Vec<u8>, name: &str, value: &str) {
        // Exact match → one indexed instruction.
        if let Some(index) = self.find_exact(name, value) {
            encode_int(out, 0x80, 7, index);
            return;
        }
        // Literal with incremental indexing, reusing an indexed name when
        // one exists; both sides add the entry to their dynamic table.
        match self.find_name(name) {
            Some(index) => encode_int(out, 0x40, 6, index),
            None => {
                out.push(0x40);
                encode_string(out, name);
            }
        }
        encode_string(out, value);
        self.table.insert(name.to_string(), value.to_string());
    }

    fn find_exact(&self, name: &str, value: &str) -> Option<usize> {
        if let Some(i) = STATIC_TABLE.iter().position(|&(n, v)| n == name && v == value) {
            return Some(i + 1);
        }
        self.table
            .entries
            .iter()
            .position(|(n, v)| n == name && v == value)
            .map(|i| STATIC_TABLE.len() + 1 + i)
    }

    fn find_name(&self, name: &str) -> Option<usize> {
        if let Some(i) = STATIC_TABLE.iter().position(|&(n, _)| n == name) {
            return Some(i + 1);
        }
        self.table.entries.iter().position(|(n, _)| n == name).map(|i| STATIC_TABLE.len() + 1 + i)
    }
}

// ---------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------

/// A stateful HPACK decoder for one direction of one connection.
#[derive(Debug)]
pub struct Decoder {
    table: DynTable,
    /// Upper bound a size update may set (SETTINGS_HEADER_TABLE_SIZE).
    max_capacity: usize,
}

impl Default for Decoder {
    fn default() -> Decoder {
        Decoder::new()
    }
}

impl Decoder {
    /// A decoder with the default 4096-octet dynamic table.
    pub fn new() -> Decoder {
        Decoder::with_capacity(DEFAULT_TABLE_SIZE)
    }

    /// A decoder whose dynamic table starts (and is capped) at `capacity`.
    pub fn with_capacity(capacity: usize) -> Decoder {
        Decoder { table: DynTable::new(capacity), max_capacity: capacity }
    }

    /// Current dynamic-table occupancy in octets.
    pub fn table_size(&self) -> usize {
        self.table.size
    }

    /// Decodes one complete header block.
    pub fn decode(&mut self, block: &[u8]) -> Result<Vec<(String, String)>, HpackError> {
        let mut headers = Vec::new();
        let mut pos = 0usize;
        while pos < block.len() {
            let first = block[pos];
            if first & 0x80 != 0 {
                // Indexed header field.
                let index = decode_int(block, &mut pos, 7)?;
                headers.push(lookup(&self.table, index)?);
            } else if first & 0xC0 == 0x40 {
                // Literal with incremental indexing.
                let (name, value) = self.decode_literal(block, &mut pos, 6)?;
                self.table.insert(name.clone(), value.clone());
                headers.push((name, value));
            } else if first & 0xE0 == 0x20 {
                // Dynamic-table size update.
                let capacity = decode_int(block, &mut pos, 5)?;
                if capacity > self.max_capacity {
                    return Err(HpackError::TableSizeExceeded);
                }
                self.table.set_capacity(capacity);
            } else {
                // Literal without indexing (0000) or never indexed (0001).
                let (name, value) = self.decode_literal(block, &mut pos, 4)?;
                headers.push((name, value));
            }
        }
        Ok(headers)
    }

    fn decode_literal(
        &mut self,
        block: &[u8],
        pos: &mut usize,
        prefix_bits: u8,
    ) -> Result<(String, String), HpackError> {
        let name_index = decode_int(block, pos, prefix_bits)?;
        let name = if name_index == 0 {
            decode_string(block, pos)?
        } else {
            lookup(&self.table, name_index)?.0
        };
        let value = decode_string(block, pos)?;
        Ok((name, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(name: &str, value: &str) -> (String, String) {
        (name.to_string(), value.to_string())
    }

    #[test]
    fn canonical_codes_match_rfc7541_for_printable_ascii() {
        let table = Huffman::get();
        // Spot checks straight out of RFC 7541 Appendix B.
        assert_eq!(table.codes[b'0' as usize], (0x0, 5));
        assert_eq!(table.codes[b'a' as usize], (0x3, 5));
        assert_eq!(table.codes[b' ' as usize], (0x14, 6));
        assert_eq!(table.codes[b'-' as usize], (0x16, 6));
        assert_eq!(table.codes[b':' as usize], (0x5c, 7));
        assert_eq!(table.codes[b'&' as usize], (0xf8, 8));
        assert_eq!(table.codes[b'?' as usize], (0x3fc, 10));
        assert_eq!(table.codes[b'#' as usize], (0xffa, 12));
        assert_eq!(table.codes[b'\\' as usize], (0x7fff0, 19));
    }

    #[test]
    fn huffman_round_trips_header_text() {
        for s in
            ["www.example.com", "no-cache", "application/dns-message", "/dns-query?dns=AAAB", ""]
        {
            let coded = huffman_encode(s.as_bytes());
            assert_eq!(huffman_decode(&coded).unwrap(), s.as_bytes());
            // Typical header text compresses (~5-6.5 bits per char).
            if s.len() > 4 {
                assert!(coded.len() < s.len(), "{s:?} did not shrink");
            }
        }
    }

    #[test]
    fn huffman_round_trips_every_byte_value() {
        let all: Vec<u8> = (0..=255u8).collect();
        let coded = huffman_encode(&all);
        assert_eq!(huffman_decode(&coded).unwrap(), all);
    }

    #[test]
    fn huffman_rejects_bad_padding() {
        // "0" = 00000 followed by 0-padding (must be 1-padding).
        assert_eq!(huffman_decode(&[0x00]), Err(HpackError::BadHuffman));
        // A whole byte of padding is never valid.
        let mut coded = huffman_encode(b"ab");
        coded.push(0xFF);
        assert_eq!(huffman_decode(&coded), Err(HpackError::BadHuffman));
    }

    #[test]
    fn integers_round_trip_across_prefix_sizes() {
        for prefix in 1..=8u8 {
            for value in [0usize, 1, 9, 30, 31, 127, 128, 1337, 65_535, 1 << 20] {
                let mut buf = Vec::new();
                encode_int(&mut buf, 0, prefix, value);
                let mut pos = 0;
                assert_eq!(decode_int(&buf, &mut pos, prefix).unwrap(), value);
                assert_eq!(pos, buf.len());
            }
        }
    }

    #[test]
    fn rfc7541_c1_examples() {
        // C.1.1: 10 with a 5-bit prefix is one byte.
        let mut buf = Vec::new();
        encode_int(&mut buf, 0, 5, 10);
        assert_eq!(buf, [0b01010]);
        // C.1.2: 1337 with a 5-bit prefix.
        buf.clear();
        encode_int(&mut buf, 0, 5, 1337);
        assert_eq!(buf, [0b11111, 0b10011010, 0b00001010]);
    }

    #[test]
    fn static_indexed_headers_cost_one_byte() {
        let mut enc = Encoder::new();
        let block = enc.encode(&[h(":method", "GET"), h(":status", "200")]);
        assert_eq!(block, vec![0x82, 0x88]);
        let mut dec = Decoder::new();
        assert_eq!(dec.decode(&block).unwrap(), vec![h(":method", "GET"), h(":status", "200")]);
    }

    #[test]
    fn repeated_headers_shrink_to_index_bytes() {
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        let headers = vec![
            h(":method", "POST"),
            h(":scheme", "https"),
            h(":authority", "dns.example.net"),
            h(":path", "/dns-query"),
            h("content-type", "application/dns-message"),
            h("content-length", "33"),
        ];
        let first = enc.encode(&headers);
        assert_eq!(dec.decode(&first).unwrap(), headers);
        let second = enc.encode(&headers);
        assert_eq!(dec.decode(&second).unwrap(), headers);
        // Every repeated header is a 1-byte index into the dynamic table.
        assert_eq!(second.len(), headers.len());
        assert!(first.len() > 4 * second.len(), "{} vs {}", first.len(), second.len());
    }

    #[test]
    fn eviction_keeps_encoder_and_decoder_in_lockstep() {
        // A table that only fits two ~42-octet entries.
        let mut enc = Encoder::with_capacity(100);
        let mut dec = Decoder::with_capacity(100);
        for round in 0..20 {
            let headers = vec![h("x-round", &format!("value-{round:04}"))];
            let block = enc.encode(&headers);
            assert_eq!(dec.decode(&block).unwrap(), headers);
            assert_eq!(enc.table_size(), dec.table_size());
            assert!(enc.table_size() <= 100);
        }
        assert_eq!(enc.table_entries(), 2);
    }

    #[test]
    fn oversized_entry_empties_the_table() {
        let mut enc = Encoder::with_capacity(64);
        let mut dec = Decoder::with_capacity(64);
        enc.encode(&[h("a", "b")]);
        dec.decode(&enc.encode(&[h("c", "d")])).unwrap();
        let big = "v".repeat(200);
        let block = enc.encode(&[h("huge-header-name", &big)]);
        assert_eq!(dec.decode(&block).unwrap(), vec![h("huge-header-name", &big)]);
        assert_eq!(enc.table_size(), 0);
        assert_eq!(dec.table_size(), 0);
    }

    #[test]
    fn size_update_is_emitted_and_applied() {
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        dec.decode(&enc.encode(&[h("x-a", "1"), h("x-b", "2")])).unwrap();
        assert!(dec.table_size() > 0);
        enc.set_capacity(0);
        let block = enc.encode(&[h("x-c", "3")]);
        assert_eq!(block[0] & 0xE0, 0x20, "block must start with a size update");
        dec.decode(&block).unwrap();
        assert_eq!(enc.table_size(), 0);
        assert_eq!(dec.table_size(), 0);
    }

    #[test]
    fn size_update_above_the_maximum_is_rejected() {
        let mut dec = Decoder::with_capacity(256);
        let mut block = Vec::new();
        encode_int(&mut block, 0x20, 5, 4096);
        assert_eq!(dec.decode(&block), Err(HpackError::TableSizeExceeded));
    }

    #[test]
    fn bad_index_and_truncation_are_reported() {
        let mut dec = Decoder::new();
        assert_eq!(dec.decode(&[0x80]), Err(HpackError::BadIndex(0)));
        assert_eq!(dec.decode(&[0xFF]), Err(HpackError::Truncated));
        assert!(matches!(dec.decode(&[0xBF, 0x20]), Err(HpackError::BadIndex(_))));
        // Literal whose value string runs past the block.
        assert_eq!(dec.decode(&[0x41, 0x02, b'h']), Err(HpackError::Truncated));
    }
}
