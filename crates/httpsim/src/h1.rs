//! Byte-accurate HTTP/1.1 request/response codecs.
//!
//! [`Request`] and [`Response`] serialise to exactly the text a real
//! HTTP/1.1 implementation puts on the wire — start line, `\r\n`-separated
//! header fields, blank line, then the body, framed either by
//! `content-length` or by `transfer-encoding: chunked`. [`Encoded`] keeps
//! the head and the body bytes separate so transports can tag them
//! `HttpHeader` and `HttpBody` for the paper's layer breakdown.
//!
//! Parsing is incremental ([`RequestParser`] / [`ResponseParser`] are fed
//! arbitrary stream fragments) and, per RFC 9112, case-insensitive in
//! header names — `Content-Length`, `content-length` and `CONTENT-LENGTH`
//! all frame the body.

use std::fmt;

/// A parse failure; a real server would answer 400 and close.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum H1Error {
    /// The start line was not `METHOD target HTTP/1.1` / `HTTP/1.1 code …`.
    BadStartLine(String),
    /// A header line had no colon.
    BadHeader(String),
    /// `content-length` was present but not a number.
    BadContentLength(String),
    /// A chunk-size line was not hexadecimal.
    BadChunkSize(String),
    /// The head was not valid UTF-8.
    BadEncoding,
}

impl fmt::Display for H1Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            H1Error::BadStartLine(l) => write!(f, "malformed start line {l:?}"),
            H1Error::BadHeader(l) => write!(f, "malformed header line {l:?}"),
            H1Error::BadContentLength(v) => write!(f, "bad content-length {v:?}"),
            H1Error::BadChunkSize(l) => write!(f, "bad chunk size {l:?}"),
            H1Error::BadEncoding => write!(f, "head is not valid UTF-8"),
        }
    }
}

impl std::error::Error for H1Error {}

/// Case-insensitive header lookup over `(name, value)` pairs.
pub fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
}

/// An HTTP/1.1 message head and body, serialised separately so the two can
/// be charged to different cost-meter layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Encoded {
    /// Start line + header fields + the terminating blank line.
    pub head: Vec<u8>,
    /// The framed body (chunk-size lines included when chunked).
    pub body: Vec<u8>,
}

impl Encoded {
    /// Total wire length.
    pub fn wire_len(&self) -> usize {
        self.head.len() + self.body.len()
    }

    /// Head and body as one contiguous byte vector.
    pub fn concat(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&self.head);
        out.extend_from_slice(&self.body);
        out
    }
}

/// How a message frames its body on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Framing {
    Length(usize),
    Chunked,
    None,
}

fn framing_of(headers: &[(String, String)]) -> Result<Framing, H1Error> {
    if let Some(te) = header(headers, "transfer-encoding") {
        if te.eq_ignore_ascii_case("chunked") {
            return Ok(Framing::Chunked);
        }
    }
    match header(headers, "content-length") {
        Some(v) => {
            let n = v.trim().parse().map_err(|_| H1Error::BadContentLength(v.to_string()))?;
            Ok(Framing::Length(n))
        }
        None => Ok(Framing::None),
    }
}

fn write_head(
    out: &mut Vec<u8>,
    start_line: &str,
    headers: &[(String, String)],
    body_len: usize,
    add_length: bool,
) {
    out.extend_from_slice(start_line.as_bytes());
    out.extend_from_slice(b"\r\n");
    for (name, value) in headers {
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    if add_length {
        out.extend_from_slice(format!("content-length: {body_len}\r\n").as_bytes());
    }
    out.extend_from_slice(b"\r\n");
}

/// Frames `body` as one chunk plus the terminating zero chunk — the shape
/// a server streaming a single buffer produces.
fn write_chunked(out: &mut Vec<u8>, body: &[u8]) {
    if !body.is_empty() {
        out.extend_from_slice(format!("{:x}\r\n", body.len()).as_bytes());
        out.extend_from_slice(body);
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"0\r\n\r\n");
}

fn encode_message(
    start_line: &str,
    headers: &[(String, String)],
    body: &[u8],
    always_length: bool,
) -> Encoded {
    let framing = framing_of(headers).unwrap_or(Framing::None);
    let add_length = framing == Framing::None && (always_length || !body.is_empty());
    let mut head = Vec::new();
    write_head(&mut head, start_line, headers, body.len(), add_length);
    let mut framed = Vec::new();
    match framing {
        Framing::Chunked => write_chunked(&mut framed, body),
        _ => framed.extend_from_slice(body),
    }
    Encoded { head, body: framed }
}

/// An HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, e.g. `POST`.
    pub method: String,
    /// Request target, e.g. `/dns-query`.
    pub target: String,
    /// Header fields in order, names with their original casing.
    pub headers: Vec<(String, String)>,
    /// The (unframed) body.
    pub body: Vec<u8>,
}

impl Request {
    /// A request with the given line and headers.
    pub fn new(method: &str, target: &str, headers: Vec<(String, String)>) -> Request {
        Request {
            method: method.to_string(),
            target: target.to_string(),
            headers,
            body: Vec::new(),
        }
    }

    /// Sets the body (builder style).
    pub fn with_body(mut self, body: Vec<u8>) -> Request {
        self.body = body;
        self
    }

    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        header(&self.headers, name)
    }

    /// Serialises the request. A `content-length` field is appended when
    /// the body is non-empty and the headers carry no framing of their
    /// own; `transfer-encoding: chunked` in the headers selects chunked
    /// framing.
    pub fn encode(&self) -> Encoded {
        let start = format!("{} {} HTTP/1.1", self.method, self.target);
        encode_message(&start, &self.headers, &self.body, false)
    }
}

/// An HTTP/1.1 response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code, e.g. `200`.
    pub status: u16,
    /// Reason phrase, e.g. `OK`.
    pub reason: String,
    /// Header fields in order, names with their original casing.
    pub headers: Vec<(String, String)>,
    /// The (unframed) body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with the given status line and headers.
    pub fn new(status: u16, reason: &str, headers: Vec<(String, String)>) -> Response {
        Response { status, reason: reason.to_string(), headers, body: Vec::new() }
    }

    /// Sets the body (builder style).
    pub fn with_body(mut self, body: Vec<u8>) -> Response {
        self.body = body;
        self
    }

    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        header(&self.headers, name)
    }

    /// Serialises the response; framing rules as for [`Request::encode`],
    /// except a `content-length` is always added when absent (a response
    /// without framing would only end at connection close).
    pub fn encode(&self) -> Encoded {
        let start = format!("HTTP/1.1 {} {}", self.status, self.reason);
        encode_message(&start, &self.headers, &self.body, true)
    }
}

// ---------------------------------------------------------------------
// Incremental parsing
// ---------------------------------------------------------------------

/// Parsed start line: either a request or a response.
#[derive(Debug)]
enum StartLine {
    Request { method: String, target: String },
    Response { status: u16, reason: String },
}

#[derive(Debug)]
enum ParseState {
    Head,
    Body {
        start: StartLine,
        headers: Vec<(String, String)>,
        framing: Framing,
        got: Vec<u8>,
    },
    /// Mid-chunk: `left` payload bytes (plus CRLF) still expected.
    Chunk {
        start: StartLine,
        headers: Vec<(String, String)>,
        got: Vec<u8>,
        left: usize,
    },
}

/// A finished message: start line, headers, unframed body.
type Parsed = (StartLine, Vec<(String, String)>, Vec<u8>);

/// Streaming parser core shared by [`RequestParser`] and
/// [`ResponseParser`].
#[derive(Debug)]
struct Parser {
    buf: Vec<u8>,
    state: ParseState,
}

impl Default for Parser {
    fn default() -> Parser {
        Parser { buf: Vec::new(), state: ParseState::Head }
    }
}

impl Parser {
    fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Finds `\r\n\r\n`, returning the head length including it.
    fn head_end(&self) -> Option<usize> {
        self.buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
    }

    fn take_line(&mut self) -> Option<String> {
        let end = self.buf.windows(2).position(|w| w == b"\r\n")?;
        let line = String::from_utf8_lossy(&self.buf[..end]).into_owned();
        self.buf.drain(..end + 2);
        Some(line)
    }

    fn parse_head(
        head: &str,
        request: bool,
    ) -> Result<(StartLine, Vec<(String, String)>), H1Error> {
        let mut lines = head.split("\r\n");
        let start_line = lines.next().unwrap_or_default();
        let start = if request {
            let mut parts = start_line.splitn(3, ' ');
            let method = parts.next().unwrap_or_default();
            let target = parts.next();
            let version = parts.next();
            match (target, version) {
                (Some(target), Some(v)) if v.starts_with("HTTP/1.") => {
                    StartLine::Request { method: method.to_string(), target: target.to_string() }
                }
                _ => return Err(H1Error::BadStartLine(start_line.to_string())),
            }
        } else {
            let mut parts = start_line.splitn(3, ' ');
            let version = parts.next().unwrap_or_default();
            let status = parts.next().and_then(|s| s.parse::<u16>().ok());
            match (version.starts_with("HTTP/1."), status) {
                (true, Some(status)) => StartLine::Response {
                    status,
                    reason: parts.next().unwrap_or_default().to_string(),
                },
                _ => return Err(H1Error::BadStartLine(start_line.to_string())),
            }
        };
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) =
                line.split_once(':').ok_or_else(|| H1Error::BadHeader(line.to_string()))?;
            headers.push((name.trim().to_string(), value.trim().to_string()));
        }
        Ok((start, headers))
    }

    /// Advances the state machine; returns a finished message's parts.
    fn next_message(&mut self, request: bool) -> Result<Option<Parsed>, H1Error> {
        loop {
            match std::mem::replace(&mut self.state, ParseState::Head) {
                ParseState::Head => {
                    let Some(end) = self.head_end() else { return Ok(None) };
                    let head: Vec<u8> = self.buf.drain(..end).collect();
                    let head =
                        std::str::from_utf8(&head[..end - 4]).map_err(|_| H1Error::BadEncoding)?;
                    let (start, headers) = Parser::parse_head(head, request)?;
                    let framing = framing_of(&headers)?;
                    self.state = ParseState::Body { start, headers, framing, got: Vec::new() };
                }
                ParseState::Body { start, headers, framing, mut got } => match framing {
                    Framing::None => return Ok(Some((start, headers, got))),
                    Framing::Length(n) => {
                        let need = n - got.len();
                        let take = need.min(self.buf.len());
                        got.extend(self.buf.drain(..take));
                        if got.len() == n {
                            return Ok(Some((start, headers, got)));
                        }
                        self.state = ParseState::Body { start, headers, framing, got };
                        return Ok(None);
                    }
                    Framing::Chunked => {
                        let Some(line) = self.take_line() else {
                            self.state = ParseState::Body { start, headers, framing, got };
                            return Ok(None);
                        };
                        let size = usize::from_str_radix(line.trim(), 16)
                            .map_err(|_| H1Error::BadChunkSize(line))?;
                        if size == 0 {
                            // Consume the trailing blank line if present.
                            if self.buf.starts_with(b"\r\n") {
                                self.buf.drain(..2);
                                return Ok(Some((start, headers, got)));
                            }
                            self.state = ParseState::Chunk { start, headers, got, left: 0 };
                            return Ok(None);
                        }
                        self.state = ParseState::Chunk { start, headers, got, left: size };
                    }
                },
                ParseState::Chunk { start, headers, mut got, left } => {
                    if left == 0 {
                        // Awaiting the blank line after the zero chunk.
                        if self.buf.len() < 2 {
                            self.state = ParseState::Chunk { start, headers, got, left };
                            return Ok(None);
                        }
                        self.buf.drain(..2);
                        return Ok(Some((start, headers, got)));
                    }
                    // Chunk payload plus its trailing CRLF.
                    if self.buf.len() < left + 2 {
                        self.state = ParseState::Chunk { start, headers, got, left };
                        return Ok(None);
                    }
                    got.extend(self.buf.drain(..left));
                    self.buf.drain(..2);
                    self.state =
                        ParseState::Body { start, headers, framing: Framing::Chunked, got };
                }
            }
        }
    }
}

/// Incremental HTTP/1.1 request parser (server side).
#[derive(Debug, Default)]
pub struct RequestParser {
    inner: Parser,
}

impl RequestParser {
    /// An empty parser.
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// Appends received stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.inner.push(bytes);
    }

    /// Pops the next complete request, if one has fully arrived.
    pub fn next_request(&mut self) -> Result<Option<Request>, H1Error> {
        match self.inner.next_message(true)? {
            Some((StartLine::Request { method, target }, headers, body)) => {
                Ok(Some(Request { method, target, headers, body }))
            }
            Some(_) => unreachable!("request parsing yields request start lines"),
            None => Ok(None),
        }
    }
}

/// Incremental HTTP/1.1 response parser (client side).
#[derive(Debug, Default)]
pub struct ResponseParser {
    inner: Parser,
}

impl ResponseParser {
    /// An empty parser.
    pub fn new() -> ResponseParser {
        ResponseParser::default()
    }

    /// Appends received stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.inner.push(bytes);
    }

    /// Pops the next complete response, if one has fully arrived.
    pub fn next_response(&mut self) -> Result<Option<Response>, H1Error> {
        match self.inner.next_message(false)? {
            Some((StartLine::Response { status, reason }, headers, body)) => {
                Ok(Some(Response { status, reason, headers, body }))
            }
            Some(_) => unreachable!("response parsing yields response start lines"),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doh_request(body: &[u8]) -> Request {
        Request::new(
            "POST",
            "/dns-query",
            vec![
                ("host".to_string(), "dns.example.net".to_string()),
                ("accept".to_string(), "application/dns-message".to_string()),
                ("content-type".to_string(), "application/dns-message".to_string()),
            ],
        )
        .with_body(body.to_vec())
    }

    #[test]
    fn request_serialises_to_exact_text() {
        let encoded = doh_request(b"abc").encode();
        let text = String::from_utf8(encoded.concat()).unwrap();
        assert_eq!(
            text,
            "POST /dns-query HTTP/1.1\r\n\
             host: dns.example.net\r\n\
             accept: application/dns-message\r\n\
             content-type: application/dns-message\r\n\
             content-length: 3\r\n\
             \r\n\
             abc"
        );
    }

    #[test]
    fn request_round_trips_incrementally() {
        let req = doh_request(&[0, 1, 2, 250, 251, 252]);
        let wire = req.encode().concat();
        let mut parser = RequestParser::new();
        for chunk in wire.chunks(7) {
            parser.push(chunk);
        }
        let got = parser.next_request().unwrap().unwrap();
        assert_eq!(got.method, "POST");
        assert_eq!(got.target, "/dns-query");
        assert_eq!(got.body, req.body);
        assert_eq!(got.header("Content-Type"), Some("application/dns-message"));
        assert!(parser.next_request().unwrap().is_none());
    }

    #[test]
    fn header_lookup_ignores_case() {
        let wire = b"GET / HTTP/1.1\r\nHoSt: example.com\r\nCONTENT-LENGTH: 2\r\n\r\nhi";
        let mut parser = RequestParser::new();
        parser.push(wire);
        let req = parser.next_request().unwrap().unwrap();
        assert_eq!(req.header("host"), Some("example.com"));
        assert_eq!(req.body, b"hi");
        // Original casing is preserved in the parsed list.
        assert_eq!(req.headers[0].0, "HoSt");
    }

    #[test]
    fn chunked_response_round_trips() {
        let resp = Response::new(
            200,
            "OK",
            vec![("Transfer-Encoding".to_string(), "chunked".to_string())],
        )
        .with_body(vec![9u8; 300]);
        let encoded = resp.encode();
        // 300 = 0x12c: size line + payload + CRLF + zero chunk.
        assert_eq!(encoded.body.len(), 5 + 300 + 2 + 5);
        let mut parser = ResponseParser::new();
        for chunk in encoded.concat().chunks(11) {
            parser.push(chunk);
        }
        let got = parser.next_response().unwrap().unwrap();
        assert_eq!(got.status, 200);
        assert_eq!(got.body, vec![9u8; 300]);
    }

    #[test]
    fn pipelined_messages_parse_in_order() {
        let mut parser = ResponseParser::new();
        let a = Response::new(200, "OK", Vec::new()).with_body(b"first".to_vec());
        let b = Response::new(404, "Not Found", Vec::new()).with_body(b"second!".to_vec());
        let mut wire = a.encode().concat();
        wire.extend(b.encode().concat());
        parser.push(&wire);
        assert_eq!(parser.next_response().unwrap().unwrap().body, b"first");
        let second = parser.next_response().unwrap().unwrap();
        assert_eq!(second.status, 404);
        assert_eq!(second.reason, "Not Found");
        assert_eq!(second.body, b"second!");
        assert!(parser.next_response().unwrap().is_none());
    }

    #[test]
    fn empty_body_response_always_carries_content_length() {
        let wire = Response::new(204, "No Content", Vec::new()).encode();
        let text = String::from_utf8(wire.head).unwrap();
        assert!(text.contains("content-length: 0\r\n"), "{text}");
    }

    #[test]
    fn get_request_without_body_has_no_framing_header() {
        let wire = Request::new("GET", "/", Vec::new()).encode();
        assert_eq!(String::from_utf8(wire.head.clone()).unwrap(), "GET / HTTP/1.1\r\n\r\n");
        let mut parser = RequestParser::new();
        parser.push(&wire.concat());
        let req = parser.next_request().unwrap().unwrap();
        assert!(req.body.is_empty());
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        let mut parser = RequestParser::new();
        parser.push(b"NOT-HTTP\r\n\r\n");
        assert!(matches!(parser.next_request(), Err(H1Error::BadStartLine(_))));
        let mut parser = RequestParser::new();
        parser.push(b"GET / HTTP/1.1\r\nbroken header line\r\n\r\n");
        assert!(matches!(parser.next_request(), Err(H1Error::BadHeader(_))));
        let mut parser = ResponseParser::new();
        parser.push(b"HTTP/1.1 200 OK\r\ncontent-length: banana\r\n\r\n");
        assert!(matches!(parser.next_response(), Err(H1Error::BadContentLength(_))));
        let mut parser = ResponseParser::new();
        parser.push(b"HTTP/1.1 200 OK\r\ntransfer-encoding: chunked\r\n\r\nzz\r\n");
        assert!(matches!(parser.next_response(), Err(H1Error::BadChunkSize(_))));
    }
}
