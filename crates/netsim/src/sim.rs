//! The discrete-event simulator core: virtual clock, event heap, hosts,
//! links, UDP sockets and the application wake/poll interface.
//!
//! Applications (the DNS clients and servers in `dohmark-doh`) drive the
//! simulation through a poll loop:
//!
//! ```text
//! while let Some(wake) = sim.next_wake() {
//!     match wake { ... react: send, recv, schedule ... }
//! }
//! ```
//!
//! Internal transport events (packet deliveries, TCP timers) are processed
//! transparently; only application-visible conditions surface as [`Wake`]s.

use crate::link::{DirLink, LinkConfig};
use crate::packet::{Packet, Proto};
use crate::rng::SimRng;
use crate::tcp::{Listener, TcpConn};
use crate::time::{SimDuration, SimTime};
use crate::trace::{CostMeter, LayerTag, PacketRecord, TraceLog};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Identifier of a simulated host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub usize);

/// Identifier of a UDP socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SockId(pub(crate) usize);

/// Identifier of a TCP listener.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ListenerId(pub(crate) usize);

/// Which end of a TCP connection a handle refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The initiating end.
    Client,
    /// The accepting end.
    Server,
}

impl Side {
    /// The opposite end.
    pub fn peer(self) -> Side {
        match self {
            Side::Client => Side::Server,
            Side::Server => Side::Client,
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            Side::Client => 0,
            Side::Server => 1,
        }
    }
}

/// Application-facing handle to one end of a TCP connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TcpHandle {
    pub(crate) conn: usize,
    /// Which end this handle drives.
    pub side: Side,
}

/// Application-visible simulation events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// A timer scheduled with [`Sim::schedule_app`] fired.
    AppTimer {
        /// Fire time.
        at: SimTime,
        /// Caller-chosen token identifying the timer.
        token: u64,
    },
    /// A UDP socket has at least one datagram queued.
    UdpReadable {
        /// Delivery time.
        at: SimTime,
        /// The readable socket.
        sock: SockId,
    },
    /// A `tcp_connect` completed (three-way handshake done, client side).
    TcpConnected {
        /// Completion time.
        at: SimTime,
        /// Client-side handle.
        conn: TcpHandle,
    },
    /// A listener produced a new established server-side connection.
    TcpAccepted {
        /// Completion time.
        at: SimTime,
        /// The listener that matched.
        listener: ListenerId,
        /// Server-side handle.
        conn: TcpHandle,
    },
    /// A TCP connection has new bytes readable. May be spurious if an
    /// earlier wake already drained them.
    TcpReadable {
        /// Delivery time.
        at: SimTime,
        /// Readable end.
        conn: TcpHandle,
    },
    /// The peer closed its direction (EOF after draining readable bytes).
    TcpFin {
        /// FIN receipt time.
        at: SimTime,
        /// End observing the EOF.
        conn: TcpHandle,
    },
}

impl Wake {
    /// The simulated time the wake fired.
    pub fn at(&self) -> SimTime {
        match *self {
            Wake::AppTimer { at, .. }
            | Wake::UdpReadable { at, .. }
            | Wake::TcpConnected { at, .. }
            | Wake::TcpAccepted { at, .. }
            | Wake::TcpReadable { at, .. }
            | Wake::TcpFin { at, .. } => at,
        }
    }
}

#[derive(Debug)]
pub(crate) struct Ev {
    pub at: SimTime,
    pub seq: u64,
    pub kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

#[derive(Debug)]
pub(crate) enum EvKind {
    Deliver(Packet),
    TcpDelack { conn: usize, side: Side, gen: u64 },
    TcpRto { conn: usize, side: Side, gen: u64 },
    AppTimer { token: u64, owner: u64 },
}

#[derive(Debug)]
struct UdpSock {
    host: usize,
    port: u16,
    rx: VecDeque<(HostId, u16, Vec<u8>)>,
    open: bool,
    owner: u64,
}

/// The simulator.
#[derive(Debug)]
pub struct Sim {
    now: SimTime,
    heap: BinaryHeap<Reverse<Ev>>,
    next_seq: u64,
    hosts: Vec<String>,
    /// Keyed lookup only ((src, dst) route resolution) — never iterated,
    /// so the randomized order is unobservable (no-unordered-iteration).
    links: HashMap<(usize, usize), DirLink>,
    udp: Vec<UdpSock>,
    pub(crate) listeners: Vec<Listener>,
    pub(crate) conns: Vec<TcpConn>,
    pub(crate) wakes: VecDeque<(Wake, u64)>,
    /// Per-attribution byte/packet accounting.
    pub meter: CostMeter,
    /// Optional tcpdump-style packet log.
    pub trace: TraceLog,
    rng: SimRng,
    attr: u32,
    owner: u64,
    next_ephemeral: u16,
    pub(crate) dropped: u64,
}

impl Sim {
    /// Creates an empty simulation with a deterministic seed.
    pub fn new(seed: u64) -> Sim {
        Sim {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            next_seq: 0,
            hosts: Vec::new(),
            links: HashMap::new(),
            udp: Vec::new(),
            listeners: Vec::new(),
            conns: Vec::new(),
            wakes: VecDeque::new(),
            meter: CostMeter::new(),
            trace: TraceLog::new(),
            rng: SimRng::new(seed),
            attr: 0,
            owner: 0,
            next_ephemeral: 40_000,
            dropped: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Packets dropped by fault injection or missing routes so far.
    pub fn dropped_packets(&self) -> u64 {
        self.dropped
    }

    /// Sets the attribution id stamped on subsequently created packets.
    pub fn set_attr(&mut self, attr: u32) {
        self.attr = attr;
    }

    /// The current attribution id.
    pub fn attr(&self) -> u32 {
        self.attr
    }

    /// Sets the wake-ownership id stamped on subsequently created handles
    /// (UDP sockets, TCP listeners/connections, app timers). Wakes for a
    /// handle carry its owner, so a registry-style driver can route each
    /// wake straight to the endpoint that owns the handle instead of
    /// broadcasting it. Owner `0` means "unowned" (legacy broadcast mode).
    pub fn set_owner(&mut self, owner: u64) {
        self.owner = owner;
    }

    /// The current wake-ownership id.
    pub fn owner(&self) -> u64 {
        self.owner
    }

    /// A deterministic child RNG for workload generation.
    pub fn split_rng(&mut self, label: u64) -> SimRng {
        self.rng.split(label)
    }

    /// Adds a host and returns its id.
    pub fn add_host(&mut self, name: &str) -> HostId {
        self.hosts.push(name.to_string());
        HostId(self.hosts.len() - 1)
    }

    /// Host name for reporting.
    pub fn host_name(&self, h: HostId) -> &str {
        &self.hosts[h.0]
    }

    /// Connects two hosts with symmetric link characteristics.
    pub fn add_link(&mut self, a: HostId, b: HostId, cfg: LinkConfig) {
        self.links.insert((a.0, b.0), DirLink::new(cfg));
        self.links.insert((b.0, a.0), DirLink::new(cfg));
    }

    /// Connects two hosts with distinct per-direction characteristics.
    pub fn add_link_asymmetric(
        &mut self,
        a: HostId,
        b: HostId,
        a_to_b: LinkConfig,
        b_to_a: LinkConfig,
    ) {
        self.links.insert((a.0, b.0), DirLink::new(a_to_b));
        self.links.insert((b.0, a.0), DirLink::new(b_to_a));
    }

    /// The configured link from `a` to `b`, if any.
    pub fn link_config(&self, a: HostId, b: HostId) -> Option<LinkConfig> {
        self.links.get(&(a.0, b.0)).map(|l| l.cfg)
    }

    pub(crate) fn push_event(&mut self, at: SimTime, kind: EvKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Ev { at, seq, kind }));
    }

    /// Schedules an application timer at an absolute time. The timer's
    /// wake is owned by the current [`Sim::set_owner`] id.
    pub fn schedule_app(&mut self, at: SimTime, token: u64) {
        let at = if at < self.now { self.now } else { at };
        let owner = self.owner;
        self.push_event(at, EvKind::AppTimer { token, owner });
    }

    /// Schedules an application timer after a delay.
    pub fn schedule_app_in(&mut self, delay: SimDuration, token: u64) {
        self.schedule_app(self.now + delay, token);
    }

    pub(crate) fn alloc_ephemeral(&mut self) -> u16 {
        let p = self.next_ephemeral;
        self.next_ephemeral = if p == u16::MAX { 40_000 } else { p + 1 };
        p
    }

    // ------------------------------------------------------------------
    // UDP
    // ------------------------------------------------------------------

    /// Binds a UDP socket on `host`. Port 0 selects an ephemeral port —
    /// this is how the paper's §3 UDP client multiplexes queries over many
    /// independent source ports.
    pub fn udp_bind(&mut self, host: HostId, port: u16) -> SockId {
        let port = if port == 0 { self.alloc_ephemeral() } else { port };
        let owner = self.owner;
        self.udp.push(UdpSock { host: host.0, port, rx: VecDeque::new(), open: true, owner });
        SockId(self.udp.len() - 1)
    }

    /// Closes a UDP socket: queued datagrams are discarded and later
    /// arrivals no longer match it. Long-running clients that bind an
    /// ephemeral socket per query must close them, or a wrapped ephemeral
    /// port would alias a dead socket and swallow responses.
    pub fn udp_close(&mut self, sock: SockId) {
        let s = &mut self.udp[sock.0];
        s.open = false;
        s.rx.clear();
    }

    /// The local port of a UDP socket.
    pub fn udp_local_port(&self, sock: SockId) -> u16 {
        self.udp[sock.0].port
    }

    /// Sends a datagram from `sock` to `(host, port)`; the payload is
    /// accounted under `tag` with the current attribution.
    pub fn udp_send(&mut self, sock: SockId, dst: (HostId, u16), tag: LayerTag, payload: Vec<u8>) {
        let src_sock = &self.udp[sock.0];
        let pkt = Packet {
            src: (HostId(src_sock.host), src_sock.port),
            dst,
            proto: Proto::Udp,
            seg: None,
            layers: vec![crate::packet::TaggedRange {
                tag,
                attr: self.attr,
                len: payload.len() as u32,
            }],
            payload,
            attr: self.attr,
        };
        self.send_packet(pkt);
    }

    /// Receives one queued datagram, if any.
    pub fn udp_recv(&mut self, sock: SockId) -> Option<(HostId, u16, Vec<u8>)> {
        self.udp[sock.0].rx.pop_front()
    }

    // ------------------------------------------------------------------
    // Packet transmission and delivery
    // ------------------------------------------------------------------

    pub(crate) fn send_packet(&mut self, mut pkt: Packet) {
        debug_assert_eq!(
            pkt.layers.iter().map(|r| r.len as usize).sum::<usize>(),
            pkt.payload.len(),
            "layer ranges must cover the payload exactly"
        );
        let key = (pkt.src.0 .0, pkt.dst.0 .0);
        let Some(link) = self.links.get_mut(&key) else {
            self.dropped += 1;
            return;
        };
        let cfg = link.cfg;
        // Every transmitted packet consumes wire bytes, delivered or not.
        self.meter.record(&pkt);
        let lost = self.rng.chance(cfg.loss);
        let corrupted = !lost && self.rng.chance(cfg.corrupt);
        // Corrupted TCP segments fail the checksum at the receiver and are
        // discarded there: identical to a drop for the state machine.
        let effective_drop = lost || (corrupted && pkt.proto == Proto::Tcp);
        self.trace.push(PacketRecord {
            at: self.now,
            direction: format!(
                "{}:{}->{}:{}",
                self.hosts[pkt.src.0 .0], pkt.src.1, self.hosts[pkt.dst.0 .0], pkt.dst.1
            ),
            wire_len: pkt.wire_len(),
            attr: pkt.attr,
            summary: pkt.summary(),
            dropped: effective_drop,
        });
        if effective_drop {
            self.dropped += 1;
            return;
        }
        if corrupted && !pkt.payload.is_empty() {
            // Flip one byte of a UDP datagram; decoders must tolerate it.
            let idx = self.rng.below(pkt.payload.len() as u64) as usize;
            pkt.payload[idx] ^= 0xFF;
        }
        let jitter = if cfg.jitter > SimDuration::ZERO {
            SimDuration::from_nanos(self.rng.range_u64(0, cfg.jitter.as_nanos()))
        } else {
            SimDuration::ZERO
        };
        let wire_len = pkt.wire_len();
        let link = self.links.get_mut(&key).expect("checked above");
        let arrival = link.schedule(self.now, wire_len, jitter);
        self.push_event(arrival, EvKind::Deliver(pkt));
    }

    fn deliver_udp(&mut self, pkt: Packet) {
        let dst_host = pkt.dst.0 .0;
        let dst_port = pkt.dst.1;
        let Some(idx) =
            self.udp.iter().position(|s| s.open && s.host == dst_host && s.port == dst_port)
        else {
            self.dropped += 1;
            return;
        };
        self.udp[idx].rx.push_back((pkt.src.0, pkt.src.1, pkt.payload));
        let owner = self.udp[idx].owner;
        self.wakes.push_back((Wake::UdpReadable { at: self.now, sock: SockId(idx) }, owner));
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// Advances the simulation until the next application-visible event and
    /// returns it, or `None` when the simulation has run dry.
    pub fn next_wake(&mut self) -> Option<Wake> {
        self.next_wake_owned().map(|(w, _)| w)
    }

    /// Like [`Sim::next_wake`], but also returns the wake's owner id — the
    /// [`Sim::set_owner`] value in effect when the underlying handle was
    /// created. Owner `0` means the handle was created unowned; routed
    /// drivers broadcast (or drop) such wakes as they see fit.
    pub fn next_wake_owned(&mut self) -> Option<(Wake, u64)> {
        loop {
            if let Some(w) = self.wakes.pop_front() {
                return Some(w);
            }
            let Reverse(ev) = self.heap.pop()?;
            debug_assert!(ev.at >= self.now, "time must be monotone");
            self.now = ev.at;
            match ev.kind {
                EvKind::Deliver(pkt) => match pkt.proto {
                    Proto::Udp => self.deliver_udp(pkt),
                    Proto::Tcp => self.on_tcp_segment(pkt),
                },
                EvKind::TcpDelack { conn, side, gen } => self.on_tcp_delack(conn, side, gen),
                EvKind::TcpRto { conn, side, gen } => self.on_tcp_rto(conn, side, gen),
                EvKind::AppTimer { token, owner } => {
                    return Some((Wake::AppTimer { at: self.now, token }, owner));
                }
            }
        }
    }

    /// Runs the simulation to quiescence, discarding wakes. Useful to let
    /// in-flight ACK/teardown traffic settle before reading the meter.
    pub fn drain(&mut self) {
        while self.next_wake().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_hosts(seed: u64) -> (Sim, HostId, HostId) {
        let mut sim = Sim::new(seed);
        let a = sim.add_host("client");
        let b = sim.add_host("server");
        sim.add_link(a, b, LinkConfig::localhost());
        (sim, a, b)
    }

    #[test]
    fn udp_round_trip_delivers_payload_and_wakes() {
        let (mut sim, a, b) = two_hosts(1);
        let sa = sim.udp_bind(a, 0);
        let sb = sim.udp_bind(b, 53);
        sim.udp_send(sa, (b, 53), LayerTag::DnsPayload, vec![1, 2, 3]);
        match sim.next_wake() {
            Some(Wake::UdpReadable { sock, at }) => {
                assert_eq!(sock, sb);
                assert_eq!(at, SimTime::ZERO + SimDuration::from_micros(50));
            }
            other => panic!("unexpected wake {other:?}"),
        }
        let (src_host, src_port, data) = sim.udp_recv(sb).unwrap();
        assert_eq!(src_host, a);
        assert_eq!(src_port, sim.udp_local_port(sa));
        assert_eq!(data, vec![1, 2, 3]);
    }

    #[test]
    fn udp_to_unbound_port_is_dropped() {
        let (mut sim, a, b) = two_hosts(2);
        let sa = sim.udp_bind(a, 0);
        sim.udp_send(sa, (b, 5353), LayerTag::DnsPayload, vec![0]);
        assert!(sim.next_wake().is_none());
        assert_eq!(sim.dropped_packets(), 1);
    }

    #[test]
    fn closed_socket_no_longer_receives_and_frees_its_port() {
        let (mut sim, a, b) = two_hosts(20);
        let sa = sim.udp_bind(a, 0);
        let old = sim.udp_bind(b, 53);
        sim.udp_send(sa, (b, 53), LayerTag::DnsPayload, vec![1]);
        sim.next_wake();
        sim.udp_close(old);
        assert!(sim.udp_recv(old).is_none(), "queued datagrams are discarded on close");
        // Datagrams to the dead socket's port are dropped…
        sim.udp_send(sa, (b, 53), LayerTag::DnsPayload, vec![2]);
        assert!(sim.next_wake().is_none());
        assert_eq!(sim.dropped_packets(), 1);
        // …until a new socket binds the same port and receives instead.
        let new = sim.udp_bind(b, 53);
        sim.udp_send(sa, (b, 53), LayerTag::DnsPayload, vec![3]);
        match sim.next_wake() {
            Some(Wake::UdpReadable { sock, .. }) => assert_eq!(sock, new),
            other => panic!("unexpected wake {other:?}"),
        }
        assert_eq!(sim.udp_recv(new).unwrap().2, vec![3]);
    }

    #[test]
    fn app_timers_fire_in_order() {
        let mut sim = Sim::new(3);
        sim.schedule_app(SimTime(2_000), 2);
        sim.schedule_app(SimTime(1_000), 1);
        sim.schedule_app(SimTime(3_000), 3);
        let mut tokens = Vec::new();
        while let Some(Wake::AppTimer { token, .. }) = sim.next_wake() {
            tokens.push(token);
        }
        assert_eq!(tokens, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime(3_000));
    }

    #[test]
    fn equal_time_events_fire_in_fifo_order() {
        let mut sim = Sim::new(4);
        for token in 0..10 {
            sim.schedule_app(SimTime(500), token);
        }
        let mut tokens = Vec::new();
        while let Some(Wake::AppTimer { token, .. }) = sim.next_wake() {
            tokens.push(token);
        }
        assert_eq!(tokens, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn past_timers_clamp_to_now() {
        let mut sim = Sim::new(5);
        sim.schedule_app(SimTime(1_000), 1);
        assert!(sim.next_wake().is_some());
        sim.schedule_app(SimTime(10), 2); // in the past now
        match sim.next_wake() {
            Some(Wake::AppTimer { at, token: 2 }) => assert_eq!(at, SimTime(1_000)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn meter_counts_udp_packets_with_headers() {
        let (mut sim, a, b) = two_hosts(6);
        let sa = sim.udp_bind(a, 0);
        sim.udp_bind(b, 53);
        sim.set_attr(9);
        sim.udp_send(sa, (b, 53), LayerTag::DnsPayload, vec![0; 33]);
        sim.drain();
        let cost = sim.meter.cost(9);
        assert_eq!(cost.packets, 1);
        assert_eq!(cost.bytes, 33 + 28);
        assert_eq!(cost.layers.dns, 33);
        assert_eq!(cost.layers.l4_header, 28);
    }

    #[test]
    fn lossy_link_drops_udp() {
        let mut sim = Sim::new(7);
        let a = sim.add_host("a");
        let b = sim.add_host("b");
        sim.add_link(a, b, LinkConfig::localhost().loss(1.0));
        let sa = sim.udp_bind(a, 0);
        sim.udp_bind(b, 53);
        sim.udp_send(sa, (b, 53), LayerTag::DnsPayload, vec![0; 10]);
        assert!(sim.next_wake().is_none());
        assert_eq!(sim.dropped_packets(), 1);
        // Dropped packets still consumed wire bytes.
        assert_eq!(sim.meter.cost(0).packets, 1);
    }

    #[test]
    fn corrupted_udp_is_delivered_mangled() {
        let mut sim = Sim::new(8);
        let a = sim.add_host("a");
        let b = sim.add_host("b");
        sim.add_link(a, b, LinkConfig::localhost().corrupt(1.0));
        let sa = sim.udp_bind(a, 0);
        let sb = sim.udp_bind(b, 53);
        sim.udp_send(sa, (b, 53), LayerTag::DnsPayload, vec![0xAA; 8]);
        assert!(matches!(sim.next_wake(), Some(Wake::UdpReadable { .. })));
        let (_, _, data) = sim.udp_recv(sb).unwrap();
        assert_eq!(data.iter().filter(|&&b| b != 0xAA).count(), 1);
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let run = |seed: u64| {
            let mut sim = Sim::new(seed);
            let a = sim.add_host("a");
            let b = sim.add_host("b");
            sim.add_link(
                a,
                b,
                LinkConfig::localhost().loss(0.3).jitter(SimDuration::from_micros(100)),
            );
            let sa = sim.udp_bind(a, 0);
            sim.udp_bind(b, 53);
            for i in 0..50 {
                sim.udp_send(sa, (b, 53), LayerTag::DnsPayload, vec![i as u8; 20]);
            }
            let mut deliveries = Vec::new();
            while let Some(w) = sim.next_wake() {
                deliveries.push(w.at().as_nanos());
            }
            (deliveries, sim.dropped_packets())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0);
    }

    #[test]
    fn missing_link_drops_packet() {
        let mut sim = Sim::new(9);
        let a = sim.add_host("a");
        let b = sim.add_host("b");
        // no link
        let sa = sim.udp_bind(a, 0);
        sim.udp_bind(b, 53);
        sim.udp_send(sa, (b, 53), LayerTag::DnsPayload, vec![1]);
        assert!(sim.next_wake().is_none());
        assert_eq!(sim.dropped_packets(), 1);
    }
}
