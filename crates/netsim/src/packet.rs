//! Simulated packets and on-wire header size constants.

use crate::sim::HostId;
use crate::trace::LayerTag;

/// IPv4 header size without options.
pub const IP_HEADER: usize = 20;
/// UDP header size.
pub const UDP_HEADER: usize = 8;
/// TCP header size without options.
pub const TCP_HEADER: usize = 20;
/// TCP option bytes carried on SYN/SYN-ACK (MSS, SACK-permitted, window
/// scale, padding — the common Linux layout).
pub const TCP_SYN_OPTIONS: usize = 20;

/// Transport protocol of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proto {
    /// User Datagram Protocol.
    Udp,
    /// Transmission Control Protocol.
    Tcp,
}

/// TCP flag set carried in segment metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// Synchronise sequence numbers.
    pub syn: bool,
    /// Acknowledgement field is valid.
    pub ack: bool,
    /// No more data from sender.
    pub fin: bool,
    /// Reset the connection.
    pub rst: bool,
}

impl TcpFlags {
    /// Renders flags tcpdump-style, e.g. `"S."` or `"F."`.
    pub fn render(&self) -> String {
        let mut s = String::new();
        if self.syn {
            s.push('S');
        }
        if self.fin {
            s.push('F');
        }
        if self.rst {
            s.push('R');
        }
        if self.ack {
            s.push('.');
        }
        s
    }
}

/// TCP segment metadata (sequence space bookkeeping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpSegMeta {
    /// Connection this segment belongs to (simulator-internal id).
    pub conn: usize,
    /// Sender's sequence number of the first payload byte.
    pub seq: u64,
    /// Cumulative acknowledgement number.
    pub ack: u64,
    /// Flags.
    pub flags: TcpFlags,
    /// Option bytes on this segment (non-zero only for SYN/SYN-ACK here).
    pub options_len: usize,
}

/// A contiguous payload range carrying a single layer tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaggedRange {
    /// The layer this range belongs to.
    pub tag: LayerTag,
    /// Attribution at the time the bytes were written.
    pub attr: u32,
    /// Length in bytes.
    pub len: u32,
}

/// A packet in flight.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Source host and port.
    pub src: (HostId, u16),
    /// Destination host and port.
    pub dst: (HostId, u16),
    /// Transport protocol.
    pub proto: Proto,
    /// TCP metadata (None for UDP).
    pub seg: Option<TcpSegMeta>,
    /// Transport payload.
    pub payload: Vec<u8>,
    /// Payload layer composition; lengths sum to `payload.len()`.
    pub layers: Vec<TaggedRange>,
    /// Attribution id for headers and accounting.
    pub attr: u32,
}

impl Packet {
    /// IP + transport header size for this packet.
    pub fn header_len(&self) -> usize {
        match self.proto {
            Proto::Udp => IP_HEADER + UDP_HEADER,
            Proto::Tcp => IP_HEADER + TCP_HEADER + self.seg.map(|s| s.options_len).unwrap_or(0),
        }
    }

    /// Total size on the wire.
    pub fn wire_len(&self) -> usize {
        self.header_len() + self.payload.len()
    }

    /// One-line summary for trace dumps.
    pub fn summary(&self) -> String {
        match (self.proto, &self.seg) {
            (Proto::Udp, _) => format!("UDP len={}", self.payload.len()),
            (Proto::Tcp, Some(seg)) => format!(
                "TCP {} seq={} ack={} len={}",
                seg.flags.render(),
                seg.seq,
                seg.ack,
                self.payload.len()
            ),
            (Proto::Tcp, None) => "TCP ?".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_header_is_28_bytes() {
        let p = Packet {
            src: (HostId(0), 1234),
            dst: (HostId(1), 53),
            proto: Proto::Udp,
            seg: None,
            payload: vec![0; 33],
            layers: vec![],
            attr: 0,
        };
        assert_eq!(p.header_len(), 28);
        assert_eq!(p.wire_len(), 61);
    }

    #[test]
    fn tcp_syn_carries_options() {
        let p = Packet {
            src: (HostId(0), 40000),
            dst: (HostId(1), 443),
            proto: Proto::Tcp,
            seg: Some(TcpSegMeta {
                conn: 0,
                seq: 0,
                ack: 0,
                flags: TcpFlags { syn: true, ..Default::default() },
                options_len: TCP_SYN_OPTIONS,
            }),
            payload: vec![],
            layers: vec![],
            attr: 0,
        };
        assert_eq!(p.header_len(), 60);
        assert!(p.summary().contains('S'));
    }

    #[test]
    fn plain_tcp_segment_is_40_bytes_of_headers() {
        let p = Packet {
            src: (HostId(0), 40000),
            dst: (HostId(1), 443),
            proto: Proto::Tcp,
            seg: Some(TcpSegMeta {
                conn: 0,
                seq: 1,
                ack: 1,
                flags: TcpFlags { ack: true, ..Default::default() },
                options_len: 0,
            }),
            payload: vec![9; 100],
            layers: vec![],
            attr: 0,
        };
        assert_eq!(p.header_len(), 40);
        assert_eq!(p.wire_len(), 140);
        assert!(p.summary().contains("len=100"));
    }

    #[test]
    fn flag_rendering() {
        assert_eq!(TcpFlags { syn: true, ack: true, ..Default::default() }.render(), "S.");
        assert_eq!(TcpFlags { fin: true, ack: true, ..Default::default() }.render(), "F.");
        assert_eq!(TcpFlags { rst: true, ..Default::default() }.render(), "R");
    }
}
