//! Per-layer cost accounting: the measurement instrument behind the paper's
//! Figures 3–5.
//!
//! Every simulated packet is stamped with an *attribution id* (which DNS
//! resolution it belongs to) and carries a breakdown of its payload into
//! [`LayerTag`]s. The [`CostMeter`] aggregates bytes and packets per
//! attribution and per layer; experiment harnesses read distributions out of
//! it.

use crate::packet::Packet;
use crate::time::SimTime;
use std::collections::BTreeMap;

/// The layers the paper's Figure 5 breaks DoH resolution cost into, plus the
/// raw DNS payload tag used for the UDP scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LayerTag {
    /// IP + transport headers (the paper's "TCP" layer; for UDP scenarios
    /// this is the IP+UDP header cost).
    L4Header,
    /// TLS handshake messages and record framing (the paper's "TLS").
    Tls,
    /// HTTP header blocks — HTTP/2 HEADERS/CONTINUATION frames incl. frame
    /// headers, or HTTP/1.1 header text (the paper's "Hdr").
    HttpHeader,
    /// HTTP body — DNS payload carried in DATA frames incl. DATA frame
    /// headers, or HTTP/1.1 bodies (the paper's "Body").
    HttpBody,
    /// HTTP/2 connection management — SETTINGS, WINDOW_UPDATE, PING, GOAWAY,
    /// RST_STREAM (the paper's "Mgmt").
    HttpMgmt,
    /// Raw DNS message bytes on UDP or DoT (no HTTP layering).
    DnsPayload,
}

impl LayerTag {
    /// All tags, in the order Figure 5 presents them.
    pub const ALL: [LayerTag; 6] = [
        LayerTag::HttpBody,
        LayerTag::HttpHeader,
        LayerTag::HttpMgmt,
        LayerTag::Tls,
        LayerTag::L4Header,
        LayerTag::DnsPayload,
    ];

    /// The paper's column label for this layer.
    pub fn label(self) -> &'static str {
        match self {
            LayerTag::HttpBody => "Body",
            LayerTag::HttpHeader => "Hdr",
            LayerTag::HttpMgmt => "Mgmt",
            LayerTag::Tls => "TLS",
            LayerTag::L4Header => "TCP",
            LayerTag::DnsPayload => "DNS",
        }
    }
}

/// Byte totals split by layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LayerBytes {
    /// IP + transport header bytes.
    pub l4_header: u64,
    /// TLS handshake + record framing bytes.
    pub tls: u64,
    /// HTTP header bytes.
    pub http_header: u64,
    /// HTTP body bytes.
    pub http_body: u64,
    /// HTTP/2 management frame bytes.
    pub http_mgmt: u64,
    /// Raw DNS payload bytes (UDP / DoT scenarios).
    pub dns: u64,
}

impl LayerBytes {
    /// Adds `n` bytes to the bucket for `tag`.
    pub fn add(&mut self, tag: LayerTag, n: u64) {
        match tag {
            LayerTag::L4Header => self.l4_header += n,
            LayerTag::Tls => self.tls += n,
            LayerTag::HttpHeader => self.http_header += n,
            LayerTag::HttpBody => self.http_body += n,
            LayerTag::HttpMgmt => self.http_mgmt += n,
            LayerTag::DnsPayload => self.dns += n,
        }
    }

    /// Bytes in the bucket for `tag`.
    pub fn get(&self, tag: LayerTag) -> u64 {
        match tag {
            LayerTag::L4Header => self.l4_header,
            LayerTag::Tls => self.tls,
            LayerTag::HttpHeader => self.http_header,
            LayerTag::HttpBody => self.http_body,
            LayerTag::HttpMgmt => self.http_mgmt,
            LayerTag::DnsPayload => self.dns,
        }
    }

    /// Sum over all layers.
    pub fn total(&self) -> u64 {
        LayerTag::ALL.iter().map(|&t| self.get(t)).sum()
    }

    /// Component-wise accumulation.
    pub fn merge(&mut self, other: &LayerBytes) {
        for tag in LayerTag::ALL {
            self.add(tag, other.get(tag));
        }
    }
}

/// Cost of one attributed unit of work (one DNS resolution).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cost {
    /// Total bytes on the wire (headers + payload, both directions).
    pub bytes: u64,
    /// Packets on the wire (both directions).
    pub packets: u64,
    /// Byte breakdown by layer.
    pub layers: LayerBytes,
}

/// Aggregates packets into per-attribution [`Cost`]s, plus named event
/// counters (cache hits/misses, upstream fetches, …) that application
/// layers bump so experiments read *all* their measurements from one
/// instrument.
#[derive(Debug, Default)]
pub struct CostMeter {
    /// Ordered so [`CostMeter::attrs`] and [`CostMeter::total`] traverse
    /// in key order — report bytes must never depend on map internals.
    by_attr: BTreeMap<u32, Cost>,
    counters: BTreeMap<&'static str, u64>,
}

impl CostMeter {
    /// An empty meter.
    pub fn new() -> CostMeter {
        CostMeter::default()
    }

    /// Records one packet.
    pub fn record(&mut self, pkt: &Packet) {
        let cost = self.by_attr.entry(pkt.attr).or_default();
        cost.packets += 1;
        cost.bytes += pkt.wire_len() as u64;
        cost.layers.add(LayerTag::L4Header, pkt.header_len() as u64);
        for seg in &pkt.layers {
            cost.layers.add(seg.tag, seg.len as u64);
        }
    }

    /// The cost attributed to `attr`, zero if nothing was recorded.
    pub fn cost(&self, attr: u32) -> Cost {
        self.by_attr.get(&attr).copied().unwrap_or_default()
    }

    /// All attributions with recorded cost, in ascending order.
    pub fn attrs(&self) -> Vec<u32> {
        self.by_attr.keys().copied().collect()
    }

    /// Sum over every attribution.
    pub fn total(&self) -> Cost {
        let mut total = Cost::default();
        for c in self.by_attr.values() {
            total.bytes += c.bytes;
            total.packets += c.packets;
            total.layers.merge(&c.layers);
        }
        total
    }

    /// Adds `n` to the named counter, creating it at zero first.
    pub fn bump(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// The named counter's value, zero if it was never bumped.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All named counters in lexicographic order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Clears all recorded costs and counters.
    pub fn reset(&mut self) {
        self.by_attr.clear();
        self.counters.clear();
    }
}

/// One packet as seen on the wire, for debugging dumps and assertions.
#[derive(Debug, Clone)]
pub struct PacketRecord {
    /// Simulated send time.
    pub at: SimTime,
    /// Human-readable direction, e.g. `"client->server"`.
    pub direction: String,
    /// Total size on the wire.
    pub wire_len: usize,
    /// Attribution id.
    pub attr: u32,
    /// Summary of flags/payload, e.g. `"SYN"`, `"ACK len=120"`.
    pub summary: String,
    /// Whether the packet was dropped by fault injection.
    pub dropped: bool,
}

/// A bounded in-memory packet log (tcpdump-style, optional).
#[derive(Debug, Default)]
pub struct TraceLog {
    records: Vec<PacketRecord>,
    enabled: bool,
    cap: usize,
}

impl TraceLog {
    /// A disabled log (the default; enable for debugging).
    pub fn new() -> TraceLog {
        TraceLog { records: Vec::new(), enabled: false, cap: 100_000 }
    }

    /// Enables recording, keeping at most `cap` packets.
    pub fn enable(&mut self, cap: usize) {
        self.enabled = true;
        self.cap = cap;
    }

    /// Disables recording.
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Appends a record if enabled and under the cap.
    pub fn push(&mut self, rec: PacketRecord) {
        if self.enabled && self.records.len() < self.cap {
            self.records.push(rec);
        }
    }

    /// The recorded packets.
    pub fn records(&self) -> &[PacketRecord] {
        &self.records
    }

    /// Renders the log in a tcpdump-like text format.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            let drop = if r.dropped { " [DROPPED]" } else { "" };
            out.push_str(&format!(
                "{} {} {} bytes attr={} {}{}\n",
                r.at, r.direction, r.wire_len, r.attr, r.summary, drop
            ));
        }
        out
    }

    /// Clears the log.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, Proto, TaggedRange};

    fn dummy_packet(attr: u32, payload: usize) -> Packet {
        Packet {
            src: (crate::sim::HostId(0), 1000),
            dst: (crate::sim::HostId(1), 53),
            proto: Proto::Udp,
            seg: None,
            payload: vec![0; payload],
            layers: vec![TaggedRange { tag: LayerTag::DnsPayload, attr, len: payload as u32 }],
            attr,
        }
    }

    #[test]
    fn meter_accumulates_bytes_and_packets() {
        let mut m = CostMeter::new();
        m.record(&dummy_packet(1, 33));
        m.record(&dummy_packet(1, 90));
        m.record(&dummy_packet(2, 10));
        let c1 = m.cost(1);
        assert_eq!(c1.packets, 2);
        // 28-byte IP+UDP header per packet.
        assert_eq!(c1.bytes, 33 + 28 + 90 + 28);
        assert_eq!(c1.layers.dns, 123);
        assert_eq!(c1.layers.l4_header, 56);
        assert_eq!(m.cost(2).packets, 1);
        assert_eq!(m.attrs(), vec![1, 2]);
    }

    #[test]
    fn meter_total_merges_all_attrs() {
        let mut m = CostMeter::new();
        m.record(&dummy_packet(1, 10));
        m.record(&dummy_packet(2, 20));
        let t = m.total();
        assert_eq!(t.packets, 2);
        assert_eq!(t.layers.dns, 30);
    }

    #[test]
    fn unknown_attr_is_zero_cost() {
        let m = CostMeter::new();
        assert_eq!(m.cost(7), Cost::default());
    }

    #[test]
    fn layer_bytes_total_and_merge() {
        let mut a = LayerBytes::default();
        a.add(LayerTag::Tls, 5);
        a.add(LayerTag::HttpBody, 7);
        let mut b = LayerBytes::default();
        b.add(LayerTag::Tls, 3);
        b.merge(&a);
        assert_eq!(b.tls, 8);
        assert_eq!(b.total(), 15);
    }

    #[test]
    fn trace_log_respects_enable_and_cap() {
        let mut log = TraceLog::new();
        log.push(PacketRecord {
            at: SimTime::ZERO,
            direction: "a->b".into(),
            wire_len: 40,
            attr: 0,
            summary: "SYN".into(),
            dropped: false,
        });
        assert!(log.records().is_empty());
        log.enable(2);
        for _ in 0..5 {
            log.push(PacketRecord {
                at: SimTime::ZERO,
                direction: "a->b".into(),
                wire_len: 40,
                attr: 0,
                summary: "ACK".into(),
                dropped: false,
            });
        }
        assert_eq!(log.records().len(), 2);
        assert!(log.dump().contains("ACK"));
    }

    #[test]
    fn labels_match_figure5_columns() {
        let labels: Vec<&str> = LayerTag::ALL.iter().map(|t| t.label()).collect();
        assert_eq!(labels, vec!["Body", "Hdr", "Mgmt", "TLS", "TCP", "DNS"]);
    }
}
