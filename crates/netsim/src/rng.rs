//! Deterministic pseudo-random numbers for reproducible simulations.
//!
//! The simulator must be bit-for-bit reproducible across runs and platforms,
//! so it carries its own small PRNG (xoshiro256++) instead of depending on
//! environment-seeded generators. Splitting produces independent streams so
//! that, e.g., link jitter and workload arrivals never perturb one another.

use crate::time::SimDuration;

/// A deterministic xoshiro256++ PRNG.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a seed, expanding it with SplitMix64.
    pub fn new(seed: u64) -> SimRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SimRng { s }
    }

    /// Derives an independent child generator; deterministic in `label`.
    pub fn split(&mut self, label: u64) -> SimRng {
        let mix = self.next_u64() ^ label.wrapping_mul(0x9E3779B97F4A7C15);
        SimRng::new(mix)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift rejection-free mapping (slight bias is irrelevant
        // for simulation workloads and keeps the generator branch-free).
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.next_f64() < p
    }

    /// Exponentially distributed value with the given mean.
    pub fn exp_f64(&mut self, mean: f64) -> f64 {
        // Inverse CDF; guard the log argument away from zero.
        let u = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Exponentially distributed duration with the given mean — the
    /// inter-arrival law of the paper's Poisson query process (§3).
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        SimDuration::from_secs_f64(self.exp_f64(mean.as_secs_f64()))
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normal with the given parameters of the underlying normal.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Random lowercase alphanumeric string of length `len` — the paper's §3
    /// query-name construction uses a constant-length random prefix so that
    /// name compressibility is uniform across queries.
    pub fn alnum_string(&mut self, len: usize) -> String {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
        (0..len).map(|_| ALPHABET[self.below(ALPHABET.len() as u64) as usize] as char).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent_of_parent_consumption() {
        let mut parent1 = SimRng::new(7);
        let mut child1 = parent1.split(1);
        let mut parent2 = SimRng::new(7);
        let mut child2 = parent2.split(1);
        for _ in 0..32 {
            assert_eq!(child1.next_u64(), child2.next_u64());
        }
    }

    #[test]
    fn uniform_below_stays_in_range() {
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let v = rng.range_u64(10, 12);
            assert!((10..=12).contains(&v));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(9);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn exp_has_roughly_the_requested_mean() {
        let mut rng = SimRng::new(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exp_f64(0.1)).sum::<f64>() / n as f64;
        assert!((mean - 0.1).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn normal_is_centered() {
        let mut rng = SimRng::new(13);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.normal()).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn alnum_string_shape() {
        let mut rng = SimRng::new(17);
        let s = rng.alnum_string(5);
        assert_eq!(s.len(), 5);
        assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
    }
}
