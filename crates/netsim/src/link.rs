//! Point-to-point links: propagation delay, serialisation, jitter and
//! fault injection.

use crate::time::{SimDuration, SimTime};

/// Configuration of one direction of a link.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Uniform random extra delay in `[0, jitter]` added per packet.
    pub jitter: SimDuration,
    /// Bits per second; `None` models an un-serialised (infinite) link.
    pub bandwidth_bps: Option<u64>,
    /// Probability that a packet is silently dropped.
    pub loss: f64,
    /// Probability that a packet is corrupted in flight. Corrupted TCP
    /// segments are discarded by the receiver's checksum (modelled as a
    /// drop after accounting); corrupted UDP datagrams are delivered with a
    /// flipped byte so decoders must cope.
    pub corrupt: f64,
    /// Maximum transmission unit; TCP derives its MSS as `mtu - 40`.
    pub mtu: usize,
}

impl Default for LinkConfig {
    fn default() -> LinkConfig {
        LinkConfig {
            latency: SimDuration::from_micros(50),
            jitter: SimDuration::ZERO,
            bandwidth_bps: None,
            loss: 0.0,
            corrupt: 0.0,
            mtu: 1500,
        }
    }
}

impl LinkConfig {
    /// A loopback-like link: 50 µs one-way, no serialisation, lossless.
    /// Matches the paper's §3 controlled localhost experiment.
    pub fn localhost() -> LinkConfig {
        LinkConfig::default()
    }

    /// A LAN/university-uplink-like path with the given round-trip time.
    pub fn with_rtt(rtt: SimDuration) -> LinkConfig {
        LinkConfig { latency: rtt / 2, ..LinkConfig::default() }
    }

    /// Sets the bandwidth in megabits per second.
    pub fn bandwidth_mbps(mut self, mbps: u64) -> LinkConfig {
        self.bandwidth_bps = Some(mbps * 1_000_000);
        self
    }

    /// Sets an iid loss probability.
    pub fn loss(mut self, p: f64) -> LinkConfig {
        self.loss = p;
        self
    }

    /// Sets an iid corruption probability.
    pub fn corrupt(mut self, p: f64) -> LinkConfig {
        self.corrupt = p;
        self
    }

    /// Sets uniform jitter.
    pub fn jitter(mut self, j: SimDuration) -> LinkConfig {
        self.jitter = j;
        self
    }

    /// Serialisation delay of `bytes` at the configured bandwidth.
    pub fn serialise(&self, bytes: usize) -> SimDuration {
        match self.bandwidth_bps {
            None => SimDuration::ZERO,
            Some(bps) => SimDuration::from_secs_f64(bytes as f64 * 8.0 / bps as f64),
        }
    }
}

/// Runtime state of one link direction.
#[derive(Debug)]
pub struct DirLink {
    /// Static configuration.
    pub cfg: LinkConfig,
    /// When the transmitter becomes free (FIFO serialisation).
    pub busy_until: SimTime,
}

impl DirLink {
    /// Creates an idle link direction.
    pub fn new(cfg: LinkConfig) -> DirLink {
        DirLink { cfg, busy_until: SimTime::ZERO }
    }

    /// Computes the arrival time of a packet of `bytes` handed to the
    /// transmitter at `now`, updating the transmitter-busy horizon.
    pub fn schedule(&mut self, now: SimTime, bytes: usize, jitter: SimDuration) -> SimTime {
        let start = if self.busy_until > now { self.busy_until } else { now };
        let done = start + self.cfg.serialise(bytes);
        self.busy_until = done;
        done + self.cfg.latency + jitter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_bandwidth_has_zero_serialisation() {
        let cfg = LinkConfig::localhost();
        assert_eq!(cfg.serialise(1_000_000), SimDuration::ZERO);
    }

    #[test]
    fn serialisation_delay_matches_rate() {
        let cfg = LinkConfig::default().bandwidth_mbps(8); // 1 byte per microsecond
        assert_eq!(cfg.serialise(1000), SimDuration::from_millis(1));
    }

    #[test]
    fn fifo_serialisation_queues_packets() {
        let cfg = LinkConfig::with_rtt(SimDuration::from_millis(10)).bandwidth_mbps(8);
        let mut dir = DirLink::new(cfg);
        let t0 = SimTime::ZERO;
        let a1 = dir.schedule(t0, 1000, SimDuration::ZERO);
        let a2 = dir.schedule(t0, 1000, SimDuration::ZERO);
        // First packet: 1 ms serialise + 5 ms latency; second waits behind it.
        assert_eq!(a1, SimTime::ZERO + SimDuration::from_millis(6));
        assert_eq!(a2, SimTime::ZERO + SimDuration::from_millis(7));
    }

    #[test]
    fn idle_link_does_not_queue() {
        let cfg = LinkConfig::default().bandwidth_mbps(8);
        let mut dir = DirLink::new(cfg);
        dir.schedule(SimTime::ZERO, 1000, SimDuration::ZERO);
        // A packet handed over much later sees an idle transmitter.
        let late = SimTime::ZERO + SimDuration::from_secs(1);
        let arrival = dir.schedule(late, 1000, SimDuration::ZERO);
        assert_eq!(arrival, late + SimDuration::from_millis(1) + cfg.latency);
    }

    #[test]
    fn rtt_helper_splits_latency() {
        let cfg = LinkConfig::with_rtt(SimDuration::from_millis(20));
        assert_eq!(cfg.latency, SimDuration::from_millis(10));
    }

    #[test]
    fn jitter_adds_to_arrival() {
        let cfg = LinkConfig::localhost();
        let mut dir = DirLink::new(cfg);
        let a = dir.schedule(SimTime::ZERO, 100, SimDuration::from_micros(30));
        assert_eq!(a, SimTime::ZERO + cfg.latency + SimDuration::from_micros(30));
    }
}
