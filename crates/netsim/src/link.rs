//! Point-to-point links: propagation delay, serialisation, jitter and
//! fault injection.

use crate::time::{SimDuration, SimTime};

/// Configuration of one direction of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Uniform random extra delay in `[0, jitter]` added per packet.
    pub jitter: SimDuration,
    /// Bits per second; `None` models an un-serialised (infinite) link.
    pub bandwidth_bps: Option<u64>,
    /// Probability that a packet is silently dropped.
    pub loss: f64,
    /// Probability that a packet is corrupted in flight. Corrupted TCP
    /// segments are discarded by the receiver's checksum (modelled as a
    /// drop after accounting); corrupted UDP datagrams are delivered with a
    /// flipped byte so decoders must cope.
    pub corrupt: f64,
    /// Maximum transmission unit; TCP derives its MSS as `mtu - 40`.
    pub mtu: usize,
}

impl Default for LinkConfig {
    fn default() -> LinkConfig {
        LinkConfig {
            latency: SimDuration::from_micros(50),
            jitter: SimDuration::ZERO,
            bandwidth_bps: None,
            loss: 0.0,
            corrupt: 0.0,
            mtu: 1500,
        }
    }
}

impl LinkConfig {
    /// A loopback-like link: 50 µs one-way, no serialisation, lossless.
    /// Matches the paper's §3 controlled localhost experiment.
    pub fn localhost() -> LinkConfig {
        LinkConfig::default()
    }

    /// A LAN/university-uplink-like path with the given round-trip time.
    ///
    /// The one-way latency is `ceil(rtt / 2)`: flooring would make the two
    /// directions of a symmetric link sum to `rtt - 1` ns for odd RTTs. Use
    /// [`LinkConfig::with_rtt_pair`] when an odd round trip must be matched
    /// exactly.
    pub fn with_rtt(rtt: SimDuration) -> LinkConfig {
        let half_up = SimDuration::from_nanos(rtt.as_nanos().div_ceil(2));
        LinkConfig { latency: half_up, ..LinkConfig::default() }
    }

    /// Per-direction configs whose one-way latencies sum exactly to `rtt`;
    /// the forward direction carries the extra nanosecond of an odd RTT.
    /// Feed the pair to [`add_link_asymmetric`].
    ///
    /// [`add_link_asymmetric`]: ../sim/struct.Sim.html#method.add_link_asymmetric
    pub fn with_rtt_pair(rtt: SimDuration) -> (LinkConfig, LinkConfig) {
        let forward = SimDuration::from_nanos(rtt.as_nanos().div_ceil(2));
        let reverse = SimDuration::from_nanos(rtt.as_nanos() / 2);
        (
            LinkConfig { latency: forward, ..LinkConfig::default() },
            LinkConfig { latency: reverse, ..LinkConfig::default() },
        )
    }

    /// The clean access-network profile the transport-matrix experiments
    /// default to: 14 ms RTT, 50 Mbit s⁻¹, no jitter, no loss — a wired
    /// broadband last mile to a nearby resolver (the paper's §3 "good
    /// network" case).
    pub fn clean_broadband() -> LinkConfig {
        LinkConfig::with_rtt(SimDuration::from_millis(14)).bandwidth_mbps(50)
    }

    /// A congested home-WiFi profile: 20 ms RTT, 20 Mbit s⁻¹, up to 3 ms
    /// of per-packet jitter and 1% iid loss — enough loss that TCP
    /// retransmission timers (and head-of-line blocking on multiplexed
    /// transports) show up in page-load tails.
    pub fn lossy_wifi() -> LinkConfig {
        LinkConfig::with_rtt(SimDuration::from_millis(20))
            .bandwidth_mbps(20)
            .jitter(SimDuration::from_millis(3))
            .loss(0.01)
    }

    /// A cellular 3G profile: 100 ms RTT, 4 Mbit s⁻¹, up to 15 ms of
    /// per-packet jitter and 2% iid loss — the paper's worst measured
    /// vantage class, where every handshake round trip is expensive and
    /// loss recovery dominates tails.
    pub fn mobile_3g() -> LinkConfig {
        LinkConfig::with_rtt(SimDuration::from_millis(100))
            .bandwidth_mbps(4)
            .jitter(SimDuration::from_millis(15))
            .loss(0.02)
    }

    /// Sets the bandwidth in megabits per second.
    pub fn bandwidth_mbps(mut self, mbps: u64) -> LinkConfig {
        self.bandwidth_bps = Some(mbps * 1_000_000);
        self
    }

    /// Sets an iid loss probability.
    pub fn loss(mut self, p: f64) -> LinkConfig {
        self.loss = p;
        self
    }

    /// Sets an iid corruption probability.
    pub fn corrupt(mut self, p: f64) -> LinkConfig {
        self.corrupt = p;
        self
    }

    /// Sets uniform jitter.
    pub fn jitter(mut self, j: SimDuration) -> LinkConfig {
        self.jitter = j;
        self
    }

    /// Serialisation delay of `bytes` at the configured bandwidth.
    ///
    /// Computed in exact integer nanoseconds (`bytes * 8 * 1e9 / bps`,
    /// truncating) so delays are platform-independent and never accumulate
    /// float rounding error; a zero bandwidth is clamped to 1 bps.
    pub fn serialise(&self, bytes: usize) -> SimDuration {
        match self.bandwidth_bps {
            None => SimDuration::ZERO,
            Some(bps) => {
                let ns = bytes as u128 * 8 * 1_000_000_000 / u128::from(bps.max(1));
                SimDuration::from_nanos(u64::try_from(ns).unwrap_or(u64::MAX))
            }
        }
    }
}

/// Runtime state of one link direction.
#[derive(Debug)]
pub struct DirLink {
    /// Static configuration.
    pub cfg: LinkConfig,
    /// When the transmitter becomes free (FIFO serialisation).
    pub busy_until: SimTime,
}

impl DirLink {
    /// Creates an idle link direction.
    pub fn new(cfg: LinkConfig) -> DirLink {
        DirLink { cfg, busy_until: SimTime::ZERO }
    }

    /// Computes the arrival time of a packet of `bytes` handed to the
    /// transmitter at `now`, updating the transmitter-busy horizon.
    pub fn schedule(&mut self, now: SimTime, bytes: usize, jitter: SimDuration) -> SimTime {
        let start = if self.busy_until > now { self.busy_until } else { now };
        let done = start + self.cfg.serialise(bytes);
        self.busy_until = done;
        done + self.cfg.latency + jitter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_bandwidth_has_zero_serialisation() {
        let cfg = LinkConfig::localhost();
        assert_eq!(cfg.serialise(1_000_000), SimDuration::ZERO);
    }

    #[test]
    fn serialisation_delay_matches_rate() {
        let cfg = LinkConfig::default().bandwidth_mbps(8); // 1 byte per microsecond
        assert_eq!(cfg.serialise(1000), SimDuration::from_millis(1));
    }

    #[test]
    fn fifo_serialisation_queues_packets() {
        let cfg = LinkConfig::with_rtt(SimDuration::from_millis(10)).bandwidth_mbps(8);
        let mut dir = DirLink::new(cfg);
        let t0 = SimTime::ZERO;
        let a1 = dir.schedule(t0, 1000, SimDuration::ZERO);
        let a2 = dir.schedule(t0, 1000, SimDuration::ZERO);
        // First packet: 1 ms serialise + 5 ms latency; second waits behind it.
        assert_eq!(a1, SimTime::ZERO + SimDuration::from_millis(6));
        assert_eq!(a2, SimTime::ZERO + SimDuration::from_millis(7));
    }

    #[test]
    fn idle_link_does_not_queue() {
        let cfg = LinkConfig::default().bandwidth_mbps(8);
        let mut dir = DirLink::new(cfg);
        dir.schedule(SimTime::ZERO, 1000, SimDuration::ZERO);
        // A packet handed over much later sees an idle transmitter.
        let late = SimTime::ZERO + SimDuration::from_secs(1);
        let arrival = dir.schedule(late, 1000, SimDuration::ZERO);
        assert_eq!(arrival, late + SimDuration::from_millis(1) + cfg.latency);
    }

    #[test]
    fn rtt_helper_splits_latency() {
        let cfg = LinkConfig::with_rtt(SimDuration::from_millis(20));
        assert_eq!(cfg.latency, SimDuration::from_millis(10));
    }

    #[test]
    fn odd_rtt_rounds_up_not_down() {
        // 7.000000001 ms: flooring rtt/2 would silently shave 1 ns off the
        // round trip; with_rtt rounds the half up instead.
        let rtt = SimDuration::from_nanos(7_000_001);
        let cfg = LinkConfig::with_rtt(rtt);
        assert_eq!(cfg.latency, SimDuration::from_nanos(3_500_001));
    }

    #[test]
    fn rtt_pair_sums_exactly_for_odd_rtts() {
        for rtt_ns in [1u64, 21, 999_999_999, 1_000_000_000] {
            let rtt = SimDuration::from_nanos(rtt_ns);
            let (fwd, rev) = LinkConfig::with_rtt_pair(rtt);
            assert_eq!(fwd.latency + rev.latency, rtt, "rtt {rtt_ns} ns");
            assert!(fwd.latency.as_nanos() - rev.latency.as_nanos() <= 1);
        }
    }

    #[test]
    fn serialisation_is_exact_integer_nanoseconds() {
        // 1500 B at 7 Mbps: 12 000 bits / 7e6 bps = 1 714 285.714… µs-scale
        // value that f64 arithmetic used to round; the integer path
        // truncates to exactly 1 714 285 ns on every platform.
        let cfg = LinkConfig::default().bandwidth_mbps(7);
        assert_eq!(cfg.serialise(1500), SimDuration::from_nanos(1_714_285));
        // Exact divisions stay exact.
        let cfg8 = LinkConfig::default().bandwidth_mbps(8);
        assert_eq!(cfg8.serialise(1500), SimDuration::from_micros(1500));
        // Huge transfers cannot overflow or lose precision.
        let slow = LinkConfig { bandwidth_bps: Some(1), ..LinkConfig::default() };
        assert_eq!(slow.serialise(2), SimDuration::from_secs(16));
        // Zero bandwidth clamps to 1 bps instead of dividing by zero.
        let zero = LinkConfig { bandwidth_bps: Some(0), ..LinkConfig::default() };
        assert_eq!(zero.serialise(1), SimDuration::from_secs(8));
    }

    #[test]
    fn named_presets_pin_their_documented_values() {
        let clean = LinkConfig::clean_broadband();
        assert_eq!(clean.latency, SimDuration::from_millis(7));
        assert_eq!(clean.bandwidth_bps, Some(50_000_000));
        assert_eq!(clean.loss, 0.0);
        assert_eq!(clean.jitter, SimDuration::ZERO);

        let wifi = LinkConfig::lossy_wifi();
        assert_eq!(wifi.latency, SimDuration::from_millis(10));
        assert_eq!(wifi.bandwidth_bps, Some(20_000_000));
        assert_eq!(wifi.loss, 0.01);
        assert_eq!(wifi.jitter, SimDuration::from_millis(3));

        let mobile = LinkConfig::mobile_3g();
        assert_eq!(mobile.latency, SimDuration::from_millis(50));
        assert_eq!(mobile.bandwidth_bps, Some(4_000_000));
        assert_eq!(mobile.loss, 0.02);
        assert_eq!(mobile.jitter, SimDuration::from_millis(15));

        // Presets order themselves from best to worst effective path.
        assert!(clean.latency < wifi.latency && wifi.latency < mobile.latency);
        assert!(clean.loss < wifi.loss && wifi.loss < mobile.loss);
    }

    #[test]
    fn jitter_adds_to_arrival() {
        let cfg = LinkConfig::localhost();
        let mut dir = DirLink::new(cfg);
        let a = dir.schedule(SimTime::ZERO, 100, SimDuration::from_micros(30));
        assert_eq!(a, SimTime::ZERO + cfg.latency + SimDuration::from_micros(30));
    }
}
