//! Deterministic byte-stream TCP over the simulated network.
//!
//! This is a protocol-shape model, not a full TCP implementation: it
//! reproduces exactly the on-wire behaviour the paper's byte/packet
//! accounting depends on — the three-way handshake (with SYN option
//! bytes), MSS-bounded segmentation, cumulative and delayed ACKs, timeout
//! retransmission with exponential backoff (go-back-N), and FIN teardown —
//! while omitting what the accounting cannot see (congestion-window
//! dynamics, SACK, timestamps).
//!
//! Every segment travels through [`Sim::send_packet`](crate::sim::Sim),
//! so headers are charged to [`LayerTag::L4Header`] per packet and payload
//! bytes keep the [`LayerTag`] (and attribution) they were written with —
//! including on retransmission, which is how a lossy link visibly inflates
//! the paper's per-resolution costs.
//!
//! The application-facing API lives on [`Sim`]: [`Sim::tcp_listen`],
//! [`Sim::tcp_connect`], [`Sim::tcp_send`], [`Sim::tcp_recv`] and
//! [`Sim::tcp_close`], with readiness delivered through
//! [`Wake`] events.

use crate::packet::{Packet, Proto, TaggedRange, TcpFlags, TcpSegMeta, IP_HEADER, TCP_HEADER};
use crate::sim::{EvKind, HostId, ListenerId, Side, Sim, TcpHandle, Wake};
use crate::time::SimDuration;
use crate::trace::LayerTag;
use std::collections::VecDeque;

/// Fallback MSS when no link (and hence no MTU) is configured.
const DEFAULT_MSS: usize = 1460;
/// Initial retransmission timeout (Linux's minimum RTO, 200 ms).
const INIT_RTO: SimDuration = SimDuration(200_000_000);
/// Upper bound on the exponentially backed-off RTO (60 s).
const MAX_RTO: SimDuration = SimDuration(60_000_000_000);
/// Delayed-ACK timeout (Linux's default, 40 ms).
const DELACK: SimDuration = SimDuration(40_000_000);
/// Consecutive RTO expiries tolerated before the endpoint gives up.
pub const MAX_RETRIES: u32 = 6;
/// Sender window: at most this many MSS-sized segments in flight.
const WINDOW_SEGS: u64 = 10;

/// A passive listening socket: SYNs addressed to `(host, port)` are
/// accepted on behalf of this listener.
#[derive(Debug)]
pub struct Listener {
    pub(crate) host: usize,
    pub(crate) port: u16,
    /// Wake-ownership id stamped at `tcp_listen` time; accepted server-side
    /// connection ends inherit it.
    pub(crate) owner: u64,
}

/// A FIFO byte buffer that remembers which [`LayerTag`] and attribution
/// each byte was written under, so retransmitted segments reproduce the
/// exact layer breakdown of the original transmission.
#[derive(Debug, Default)]
struct TaggedBuf {
    data: VecDeque<u8>,
    ranges: VecDeque<TaggedRange>,
}

impl TaggedBuf {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn push(&mut self, tag: LayerTag, attr: u32, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        self.data.extend(bytes);
        if let Some(last) = self.ranges.back_mut() {
            if last.tag == tag && last.attr == attr {
                last.len += bytes.len() as u32;
                return;
            }
        }
        self.ranges.push_back(TaggedRange { tag, attr, len: bytes.len() as u32 });
    }

    /// Drops `n` bytes from the front (they were cumulatively ACKed).
    fn advance(&mut self, n: usize) {
        debug_assert!(n <= self.data.len());
        self.data.drain(..n);
        let mut left = n as u32;
        while left > 0 {
            let front = self.ranges.front_mut().expect("ranges cover data");
            if front.len > left {
                front.len -= left;
                break;
            }
            left -= front.len;
            self.ranges.pop_front();
        }
    }

    /// Copies `len` bytes starting `off` bytes into the buffer, with the
    /// tagged ranges covering exactly those bytes.
    fn slice(&self, off: usize, len: usize) -> (Vec<u8>, Vec<TaggedRange>) {
        debug_assert!(off + len <= self.data.len());
        let bytes: Vec<u8> = self.data.iter().skip(off).take(len).copied().collect();
        let mut ranges = Vec::new();
        let (start, end) = (off as u64, (off + len) as u64);
        let mut cursor = 0u64;
        for r in &self.ranges {
            let r_end = cursor + r.len as u64;
            if r_end > start && cursor < end {
                let take = r_end.min(end) - cursor.max(start);
                ranges.push(TaggedRange { tag: r.tag, attr: r.attr, len: take as u32 });
            }
            cursor = r_end;
            if cursor >= end {
                break;
            }
        }
        (bytes, ranges)
    }

    /// Bytes from `off` to the end of the contiguous run of ranges that
    /// share one attribution. Segments are capped at this length so a
    /// single packet never mixes two resolutions' bytes — `CostMeter`
    /// charges a whole packet to one attribution.
    fn attr_run_len(&self, off: usize) -> usize {
        let mut cursor = 0usize;
        let mut attr: Option<u32> = None;
        let mut len = 0usize;
        for r in &self.ranges {
            let r_end = cursor + r.len as usize;
            if r_end > off {
                match attr {
                    None => attr = Some(r.attr),
                    Some(a) if a != r.attr => break,
                    Some(_) => {}
                }
                len += r_end - cursor.max(off);
            }
            cursor = r_end;
        }
        len
    }
}

/// Connection state of one endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TcpState {
    /// Server side before its listener has seen the SYN.
    Idle,
    /// Client sent its SYN, awaiting the SYN-ACK.
    SynSent,
    /// Server sent its SYN-ACK, awaiting the handshake ACK.
    SynRcvd,
    /// Handshake complete; data flows.
    Established,
    /// Our FIN is sent but not yet acknowledged.
    FinWait,
    /// Our FIN was acknowledged, or the endpoint gave up retransmitting.
    Closed,
}

/// One end of a TCP connection.
///
/// Sequence numbering is deterministic: both sides use ISN 0, the SYN
/// occupies sequence 0, stream data starts at sequence 1 and the FIN
/// consumes one sequence number after the final data byte.
#[derive(Debug)]
pub(crate) struct Endpoint {
    host: usize,
    port: u16,
    state: TcpState,
    mss: usize,
    // Send direction.
    snd_una: u64,
    snd_nxt: u64,
    /// Stream sequence of `sndbuf[0]`; only unacknowledged bytes are kept.
    buf_base: u64,
    sndbuf: TaggedBuf,
    fin_queued: bool,
    fin_seq: Option<u64>,
    // Receive direction.
    rcv_nxt: u64,
    rcvbuf: Vec<u8>,
    fin_rcvd: bool,
    // Delayed-ACK machinery.
    ack_pending: u32,
    delack_armed: bool,
    delack_gen: u64,
    // Retransmission machinery.
    rto: SimDuration,
    rto_armed: bool,
    rto_gen: u64,
    retries: u32,
    failed: bool,
    /// Server side: the listener that will accept this connection.
    listener: Option<ListenerId>,
}

impl Endpoint {
    fn new(host: usize, port: u16, mss: usize) -> Endpoint {
        Endpoint {
            host,
            port,
            state: TcpState::Idle,
            mss,
            snd_una: 0,
            snd_nxt: 0,
            buf_base: 1,
            sndbuf: TaggedBuf::default(),
            fin_queued: false,
            fin_seq: None,
            rcv_nxt: 0,
            rcvbuf: Vec::new(),
            fin_rcvd: false,
            ack_pending: 0,
            delack_armed: false,
            delack_gen: 0,
            rto: INIT_RTO,
            rto_armed: false,
            rto_gen: 0,
            retries: 0,
            failed: false,
            listener: None,
        }
    }
}

/// A simulated TCP connection: a client endpoint and a server endpoint.
#[derive(Debug)]
pub struct TcpConn {
    pub(crate) ends: [Endpoint; 2],
    /// Wake-ownership ids per side: the client side is stamped at
    /// `tcp_connect`, the server side at SYN time from its listener.
    pub(crate) owners: [u64; 2],
}

/// What an RTO expiry decided to do, resolved outside the borrow of the
/// endpoint that made the decision.
enum RtoAction {
    Nothing,
    ResendSyn,
    ResendSynAck,
    GoBackN,
}

impl Sim {
    // ------------------------------------------------------------------
    // Application-facing API
    // ------------------------------------------------------------------

    /// Starts listening for connections to `(host, port)`.
    pub fn tcp_listen(&mut self, host: HostId, port: u16) -> ListenerId {
        let owner = self.owner();
        self.listeners.push(Listener { host: host.0, port, owner });
        ListenerId(self.listeners.len() - 1)
    }

    /// Opens a connection from an ephemeral port on `host` to `dst`,
    /// sending the SYN immediately. [`Wake::TcpConnected`] fires when the
    /// handshake completes; data queued before that is sent right after.
    pub fn tcp_connect(&mut self, host: HostId, dst: (HostId, u16)) -> TcpHandle {
        let port = self.alloc_ephemeral();
        let mss = self.tcp_mss(host, dst.0);
        let mut client = Endpoint::new(host.0, port, mss);
        client.state = TcpState::SynSent;
        let server = Endpoint::new(dst.0 .0, dst.1, DEFAULT_MSS);
        // The server-side owner is resolved at SYN time from the listener.
        let owners = [self.owner(), 0];
        self.conns.push(TcpConn { ends: [client, server], owners });
        let conn = self.conns.len() - 1;
        self.tcp_emit_syn(conn);
        self.tcp_arm_rto(conn, Side::Client);
        TcpHandle { conn, side: Side::Client }
    }

    /// Queues `data` on the connection's byte stream, accounted under
    /// `tag` with the current attribution, and transmits what the window
    /// allows. Data queued before the handshake completes is held back.
    pub fn tcp_send(&mut self, conn: TcpHandle, tag: LayerTag, data: &[u8]) {
        self.tcp_send_vectored(conn, &[(tag, data)]);
    }

    /// Queues several differently tagged byte ranges as **one** write, so
    /// they coalesce into MSS-sized segments instead of one segment per
    /// range — the on-wire shape of a real stack writing a whole TLS
    /// record (header + HTTP parts + tag) with a single `write()`.
    pub fn tcp_send_vectored(&mut self, conn: TcpHandle, parts: &[(LayerTag, &[u8])]) {
        let attr = self.attr();
        {
            let ep = self.ep_mut(conn);
            debug_assert!(!ep.fin_queued, "tcp_send after tcp_close");
            if ep.fin_queued || ep.failed {
                return;
            }
            for (tag, data) in parts {
                ep.sndbuf.push(*tag, attr, data);
            }
        }
        self.tcp_pump(conn.conn, conn.side);
    }

    /// Drains and returns all bytes received in order so far.
    pub fn tcp_recv(&mut self, conn: TcpHandle) -> Vec<u8> {
        std::mem::take(&mut self.ep_mut(conn).rcvbuf)
    }

    /// Bytes currently readable without blocking.
    pub fn tcp_readable(&self, conn: TcpHandle) -> usize {
        self.ep(conn).rcvbuf.len()
    }

    /// Closes the sending direction: a FIN follows any still-queued data.
    /// Receiving remains possible (half-close).
    pub fn tcp_close(&mut self, conn: TcpHandle) {
        {
            let ep = self.ep_mut(conn);
            if ep.fin_queued || matches!(ep.state, TcpState::Closed) {
                return;
            }
            ep.fin_queued = true;
        }
        self.tcp_pump(conn.conn, conn.side);
    }

    /// Whether the handshake has completed and the endpoint has not closed.
    pub fn tcp_is_established(&self, conn: TcpHandle) -> bool {
        self.ep(conn).state == TcpState::Established
    }

    /// Whether the peer's FIN has been processed (EOF after draining).
    pub fn tcp_fin_received(&self, conn: TcpHandle) -> bool {
        self.ep(conn).fin_rcvd
    }

    /// Whether the endpoint gave up after [`MAX_RETRIES`] retransmissions.
    pub fn tcp_has_failed(&self, conn: TcpHandle) -> bool {
        self.ep(conn).failed
    }

    /// The local port of this end of the connection.
    pub fn tcp_local_port(&self, conn: TcpHandle) -> u16 {
        self.ep(conn).port
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn ep(&self, h: TcpHandle) -> &Endpoint {
        &self.conns[h.conn].ends[h.side.index()]
    }

    fn ep_mut(&mut self, h: TcpHandle) -> &mut Endpoint {
        &mut self.conns[h.conn].ends[h.side.index()]
    }

    /// MSS for the path `a -> b`: link MTU minus IP and TCP headers.
    fn tcp_mss(&self, a: HostId, b: HostId) -> usize {
        self.link_config(a, b)
            .map(|c| c.mtu.saturating_sub(IP_HEADER + TCP_HEADER).max(1))
            .unwrap_or(DEFAULT_MSS)
    }

    /// Builds and transmits one segment from `side` of `conn`.
    ///
    /// Pure control segments are attributed to the current [`Sim::attr`];
    /// data segments keep the attribution of their first payload range, so
    /// retransmissions stay charged to the resolution that wrote the bytes.
    fn tcp_emit(
        &mut self,
        conn: usize,
        side: Side,
        flags: TcpFlags,
        seq: u64,
        payload: Vec<u8>,
        layers: Vec<TaggedRange>,
    ) {
        debug_assert!(
            layers.windows(2).all(|w| w[0].attr == w[1].attr),
            "a segment must never span attribution boundaries"
        );
        let attr = layers.first().map(|r| r.attr).unwrap_or(self.attr());
        let (src, dst, ack) = {
            let c = &mut self.conns[conn];
            let ack = if flags.ack { c.ends[side.index()].rcv_nxt } else { 0 };
            if flags.ack {
                // Anything carrying an ACK satisfies a pending delayed ACK.
                let ep = &mut c.ends[side.index()];
                ep.ack_pending = 0;
                ep.delack_armed = false;
            }
            let s = &c.ends[side.index()];
            let d = &c.ends[side.peer().index()];
            ((HostId(s.host), s.port), (HostId(d.host), d.port), ack)
        };
        let options_len = if flags.syn { crate::packet::TCP_SYN_OPTIONS } else { 0 };
        self.send_packet(Packet {
            src,
            dst,
            proto: Proto::Tcp,
            seg: Some(TcpSegMeta { conn, seq, ack, flags, options_len }),
            layers,
            payload,
            attr,
        });
    }

    fn tcp_emit_syn(&mut self, conn: usize) {
        self.conns[conn].ends[Side::Client.index()].snd_nxt = 1;
        let flags = TcpFlags { syn: true, ..Default::default() };
        self.tcp_emit(conn, Side::Client, flags, 0, Vec::new(), Vec::new());
    }

    fn tcp_emit_synack(&mut self, conn: usize) {
        self.conns[conn].ends[Side::Server.index()].snd_nxt = 1;
        let flags = TcpFlags { syn: true, ack: true, ..Default::default() };
        self.tcp_emit(conn, Side::Server, flags, 0, Vec::new(), Vec::new());
    }

    /// Emits a pure ACK (consumes no sequence space).
    fn tcp_emit_ack(&mut self, conn: usize, side: Side) {
        let seq = self.conns[conn].ends[side.index()].snd_nxt;
        let flags = TcpFlags { ack: true, ..Default::default() };
        self.tcp_emit(conn, side, flags, seq, Vec::new(), Vec::new());
    }

    /// Transmits as much queued data (and, once drained, a queued FIN) as
    /// the in-flight window allows.
    fn tcp_pump(&mut self, conn: usize, side: Side) {
        loop {
            enum Emit {
                Data { seq: u64, bytes: Vec<u8>, ranges: Vec<TaggedRange> },
                Fin { seq: u64 },
            }
            let emit = {
                let ep = &mut self.conns[conn].ends[side.index()];
                if !matches!(ep.state, TcpState::Established | TcpState::FinWait) {
                    return;
                }
                let buf_end = ep.buf_base + ep.sndbuf.len() as u64;
                let window_end = ep.snd_una + WINDOW_SEGS * ep.mss as u64;
                if ep.snd_nxt < buf_end && ep.snd_nxt < window_end {
                    let off = (ep.snd_nxt - ep.buf_base) as usize;
                    let len = (buf_end - ep.snd_nxt)
                        .min(ep.mss as u64)
                        .min(ep.sndbuf.attr_run_len(off) as u64)
                        as usize;
                    let (bytes, ranges) = ep.sndbuf.slice(off, len);
                    let seq = ep.snd_nxt;
                    ep.snd_nxt += len as u64;
                    Emit::Data { seq, bytes, ranges }
                } else if ep.fin_seq == Some(ep.snd_nxt)
                    || (ep.fin_queued
                        && ep.fin_seq.is_none()
                        && ep.snd_nxt == buf_end
                        && ep.state == TcpState::Established)
                {
                    if ep.fin_seq.is_none() {
                        ep.fin_seq = Some(ep.snd_nxt);
                        ep.state = TcpState::FinWait;
                    }
                    let seq = ep.snd_nxt;
                    ep.snd_nxt += 1;
                    Emit::Fin { seq }
                } else {
                    return;
                }
            };
            match emit {
                Emit::Data { seq, bytes, ranges } => {
                    let flags = TcpFlags { ack: true, ..Default::default() };
                    self.tcp_emit(conn, side, flags, seq, bytes, ranges);
                }
                Emit::Fin { seq } => {
                    let flags = TcpFlags { fin: true, ack: true, ..Default::default() };
                    self.tcp_emit(conn, side, flags, seq, Vec::new(), Vec::new());
                }
            }
            self.tcp_arm_rto(conn, side);
        }
    }

    // ------------------------------------------------------------------
    // Segment reception (called from the event loop)
    // ------------------------------------------------------------------

    pub(crate) fn on_tcp_segment(&mut self, pkt: Packet) {
        let Some(seg) = pkt.seg else {
            self.dropped += 1;
            return;
        };
        if seg.conn >= self.conns.len() {
            self.dropped += 1;
            return;
        }
        let side = {
            let server = &self.conns[seg.conn].ends[Side::Server.index()];
            if server.host == pkt.dst.0 .0 && server.port == pkt.dst.1 {
                Side::Server
            } else {
                Side::Client
            }
        };
        if seg.flags.rst {
            // We never emit RSTs; tolerate one defensively by killing the end.
            self.conns[seg.conn].ends[side.index()].state = TcpState::Closed;
            return;
        }
        if seg.flags.syn {
            if seg.flags.ack {
                self.on_tcp_synack(seg.conn, side, &seg);
            } else {
                self.on_tcp_syn(seg.conn, side, &seg);
            }
            return;
        }
        self.on_tcp_established_segment(seg.conn, side, &seg, pkt.payload);
    }

    /// A client SYN arriving at the server side of `conn`.
    fn on_tcp_syn(&mut self, conn: usize, side: Side, seg: &TcpSegMeta) {
        if side != Side::Server {
            self.dropped += 1;
            return;
        }
        let state = self.conns[conn].ends[Side::Server.index()].state;
        match state {
            TcpState::Idle => {
                let (host, port, peer_host) = {
                    let c = &self.conns[conn];
                    let s = &c.ends[Side::Server.index()];
                    (s.host, s.port, c.ends[Side::Client.index()].host)
                };
                let Some(lid) =
                    self.listeners.iter().position(|l| l.host == host && l.port == port)
                else {
                    // Nothing is listening; the client retries, then fails.
                    self.dropped += 1;
                    return;
                };
                let mss = self.tcp_mss(HostId(host), HostId(peer_host));
                let listener_owner = self.listeners[lid].owner;
                {
                    let c = &mut self.conns[conn];
                    c.owners[Side::Server.index()] = listener_owner;
                    let ep = &mut c.ends[Side::Server.index()];
                    ep.mss = mss;
                    ep.listener = Some(ListenerId(lid));
                    ep.state = TcpState::SynRcvd;
                    ep.rcv_nxt = seg.seq + 1;
                }
                self.tcp_emit_synack(conn);
                self.tcp_arm_rto(conn, Side::Server);
            }
            // Our SYN-ACK was lost; the client retransmitted its SYN.
            TcpState::SynRcvd => self.tcp_emit_synack(conn),
            // Stale duplicate SYN on an established connection.
            _ => self.tcp_emit_ack(conn, Side::Server),
        }
    }

    /// The server SYN-ACK arriving at the client side of `conn`.
    fn on_tcp_synack(&mut self, conn: usize, side: Side, seg: &TcpSegMeta) {
        if side != Side::Client {
            self.dropped += 1;
            return;
        }
        let now = self.now();
        let completed = {
            let ep = &mut self.conns[conn].ends[Side::Client.index()];
            if ep.state == TcpState::SynSent {
                ep.rcv_nxt = seg.seq + 1;
                ep.snd_una = ep.snd_una.max(seg.ack);
                ep.state = TcpState::Established;
                ep.retries = 0;
                ep.rto = INIT_RTO;
                true
            } else {
                false
            }
        };
        if completed {
            self.tcp_cancel_rto(conn, Side::Client);
            self.tcp_emit_ack(conn, Side::Client);
            let owner = self.conns[conn].owners[Side::Client.index()];
            self.wakes.push_back((
                Wake::TcpConnected { at: now, conn: TcpHandle { conn, side: Side::Client } },
                owner,
            ));
            self.tcp_pump(conn, Side::Client);
        } else {
            // Duplicate SYN-ACK: our handshake ACK was lost. Re-ACK.
            self.tcp_emit_ack(conn, Side::Client);
        }
    }

    /// ACK / data / FIN processing on an engaged endpoint.
    fn on_tcp_established_segment(
        &mut self,
        conn: usize,
        side: Side,
        seg: &TcpSegMeta,
        payload: Vec<u8>,
    ) {
        if self.conns[conn].ends[side.index()].state == TcpState::Idle {
            self.dropped += 1;
            return;
        }
        if seg.flags.ack {
            self.on_tcp_ack(conn, side, seg.ack);
        }
        let now = self.now();
        let mut readable = false;
        let mut fin = false;
        let mut ack_now = false;
        let mut need_delack = false;
        {
            let ep = &mut self.conns[conn].ends[side.index()];
            let len = payload.len() as u64;
            let seg_end = seg.seq + len;
            if len > 0 {
                if seg.seq > ep.rcv_nxt {
                    // A hole: discard and re-assert what we are missing.
                    ack_now = true;
                } else if seg_end <= ep.rcv_nxt {
                    // Pure duplicate (our ACK was probably lost).
                    ack_now = true;
                } else {
                    // In order, possibly overlapping already-received bytes.
                    let skip = (ep.rcv_nxt - seg.seq) as usize;
                    ep.rcvbuf.extend_from_slice(&payload[skip..]);
                    ep.rcv_nxt = seg_end;
                    readable = true;
                    ep.ack_pending += 1;
                    if ep.ack_pending >= 2 {
                        ack_now = true;
                    } else {
                        need_delack = true;
                    }
                }
            }
            if seg.flags.fin {
                // The FIN sits one past any payload in the same segment.
                if seg_end == ep.rcv_nxt && !ep.fin_rcvd {
                    ep.rcv_nxt += 1;
                    ep.fin_rcvd = true;
                    fin = true;
                }
                // FINs are always ACKed immediately (dup or out-of-order
                // FINs provoke a dup-ACK that resynchronises the peer).
                ack_now = true;
            }
        }
        let owner = self.conns[conn].owners[side.index()];
        if readable {
            self.wakes
                .push_back((Wake::TcpReadable { at: now, conn: TcpHandle { conn, side } }, owner));
        }
        if fin {
            self.wakes.push_back((Wake::TcpFin { at: now, conn: TcpHandle { conn, side } }, owner));
        }
        if ack_now {
            self.tcp_emit_ack(conn, side);
        } else if need_delack {
            self.tcp_arm_delack(conn, side);
        }
    }

    /// Cumulative-ACK bookkeeping for the sending direction of `side`.
    fn on_tcp_ack(&mut self, conn: usize, side: Side, ackno: u64) {
        let now = self.now();
        let mut accepted = None;
        let advanced = {
            let ep = &mut self.conns[conn].ends[side.index()];
            if ackno <= ep.snd_una {
                false
            } else {
                // Old in-flight segments can be ACKed after a go-back-N
                // rewind, so the ACK may run past snd_nxt; trust it.
                let new_una = ackno;
                let data_start = ep.snd_una.max(ep.buf_base);
                let data_end = new_una.min(ep.buf_base + ep.sndbuf.len() as u64);
                if data_end > data_start {
                    ep.sndbuf.advance((data_end - data_start) as usize);
                    ep.buf_base = data_end;
                }
                ep.snd_una = new_una;
                ep.snd_nxt = ep.snd_nxt.max(new_una);
                ep.retries = 0;
                ep.rto = INIT_RTO;
                if ep.state == TcpState::SynRcvd {
                    ep.state = TcpState::Established;
                    accepted = ep.listener;
                }
                if ep.state == TcpState::FinWait && ep.fin_seq.is_some_and(|fs| new_una > fs) {
                    ep.state = TcpState::Closed;
                }
                true
            }
        };
        if !advanced {
            return;
        }
        let outstanding = {
            let ep = &self.conns[conn].ends[side.index()];
            ep.snd_una < ep.snd_nxt
        };
        if outstanding {
            self.tcp_restart_rto(conn, side);
        } else {
            self.tcp_cancel_rto(conn, side);
        }
        if let Some(listener) = accepted {
            let owner = self.conns[conn].owners[side.index()];
            self.wakes.push_back((
                Wake::TcpAccepted { at: now, listener, conn: TcpHandle { conn, side } },
                owner,
            ));
        }
        // The window slid (or the handshake completed): send more.
        self.tcp_pump(conn, side);
    }

    // ------------------------------------------------------------------
    // Timers (called from the event loop)
    // ------------------------------------------------------------------

    /// Arms the retransmission timer if it is not already running.
    fn tcp_arm_rto(&mut self, conn: usize, side: Side) {
        let now = self.now();
        let (at, gen) = {
            let ep = &mut self.conns[conn].ends[side.index()];
            if ep.rto_armed {
                return;
            }
            ep.rto_armed = true;
            ep.rto_gen += 1;
            (now + ep.rto, ep.rto_gen)
        };
        self.push_event(at, EvKind::TcpRto { conn, side, gen });
    }

    /// Restarts the retransmission timer from now (new data was ACKed).
    fn tcp_restart_rto(&mut self, conn: usize, side: Side) {
        self.conns[conn].ends[side.index()].rto_armed = false;
        self.tcp_arm_rto(conn, side);
    }

    fn tcp_cancel_rto(&mut self, conn: usize, side: Side) {
        let ep = &mut self.conns[conn].ends[side.index()];
        ep.rto_armed = false;
        ep.rto_gen += 1;
    }

    fn tcp_arm_delack(&mut self, conn: usize, side: Side) {
        let at = self.now() + DELACK;
        let gen = {
            let ep = &mut self.conns[conn].ends[side.index()];
            if ep.delack_armed {
                return;
            }
            ep.delack_armed = true;
            ep.delack_gen += 1;
            ep.delack_gen
        };
        self.push_event(at, EvKind::TcpDelack { conn, side, gen });
    }

    pub(crate) fn on_tcp_delack(&mut self, conn: usize, side: Side, gen: u64) {
        let fire = {
            let ep = &mut self.conns[conn].ends[side.index()];
            if !ep.delack_armed || ep.delack_gen != gen {
                false
            } else {
                ep.delack_armed = false;
                ep.ack_pending > 0
            }
        };
        if fire {
            self.tcp_emit_ack(conn, side);
        }
    }

    pub(crate) fn on_tcp_rto(&mut self, conn: usize, side: Side, gen: u64) {
        let action = {
            let ep = &mut self.conns[conn].ends[side.index()];
            if !ep.rto_armed || ep.rto_gen != gen {
                RtoAction::Nothing
            } else {
                ep.rto_armed = false;
                if ep.snd_una >= ep.snd_nxt {
                    RtoAction::Nothing
                } else if ep.retries >= MAX_RETRIES {
                    ep.failed = true;
                    ep.state = TcpState::Closed;
                    RtoAction::Nothing
                } else {
                    ep.retries += 1;
                    ep.rto = (ep.rto * 2).min(MAX_RTO);
                    match ep.state {
                        TcpState::SynSent => RtoAction::ResendSyn,
                        TcpState::SynRcvd => RtoAction::ResendSynAck,
                        TcpState::Established | TcpState::FinWait => {
                            // Go-back-N: rewind and resend from the first
                            // unacknowledged byte.
                            ep.snd_nxt = ep.snd_una;
                            RtoAction::GoBackN
                        }
                        TcpState::Idle | TcpState::Closed => RtoAction::Nothing,
                    }
                }
            }
        };
        match action {
            RtoAction::Nothing => {}
            RtoAction::ResendSyn => {
                self.tcp_emit_syn(conn);
                self.tcp_arm_rto(conn, side);
            }
            RtoAction::ResendSynAck => {
                self.tcp_emit_synack(conn);
                self.tcp_arm_rto(conn, side);
            }
            RtoAction::GoBackN => self.tcp_pump(conn, side),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::sim::{Sim, Wake};
    use crate::time::SimDuration;

    fn two_hosts(seed: u64, cfg: LinkConfig) -> (Sim, HostId, HostId) {
        let mut sim = Sim::new(seed);
        let a = sim.add_host("client");
        let b = sim.add_host("server");
        sim.add_link(a, b, cfg);
        (sim, a, b)
    }

    /// Drives the sim until `pred` matches a wake; panics when it runs dry.
    fn wait_for(sim: &mut Sim, mut pred: impl FnMut(&Wake) -> bool) -> Wake {
        while let Some(w) = sim.next_wake() {
            if pred(&w) {
                return w;
            }
        }
        panic!("simulation ran dry before the expected wake");
    }

    #[test]
    fn handshake_is_exactly_three_packets() {
        let (mut sim, a, b) = two_hosts(1, LinkConfig::localhost());
        sim.tcp_listen(b, 853);
        let client = sim.tcp_connect(a, (b, 853));
        let connected = wait_for(&mut sim, |w| matches!(w, Wake::TcpConnected { .. }));
        assert!(matches!(connected, Wake::TcpConnected { conn, .. } if conn == client));
        wait_for(&mut sim, |w| matches!(w, Wake::TcpAccepted { .. }));
        sim.drain();
        let total = sim.meter.total();
        // SYN (60 B) + SYN-ACK (60 B) + ACK (40 B), nothing else.
        assert_eq!(total.packets, 3);
        assert_eq!(total.bytes, 60 + 60 + 40);
        assert_eq!(total.layers.l4_header, 160);
        assert!(sim.tcp_is_established(client));
    }

    #[test]
    fn accept_wake_names_the_right_listener() {
        let (mut sim, a, b) = two_hosts(2, LinkConfig::localhost());
        let other = sim.tcp_listen(b, 80);
        let dns = sim.tcp_listen(b, 853);
        sim.tcp_connect(a, (b, 853));
        let accepted = wait_for(&mut sim, |w| matches!(w, Wake::TcpAccepted { .. }));
        match accepted {
            Wake::TcpAccepted { listener, conn, .. } => {
                assert_eq!(listener, dns);
                assert_ne!(listener, other);
                assert_eq!(conn.side, Side::Server);
                assert_eq!(sim.tcp_local_port(conn), 853);
            }
            other => panic!("unexpected wake {other:?}"),
        }
    }

    #[test]
    fn stream_round_trip_preserves_bytes() {
        let (mut sim, a, b) = two_hosts(3, LinkConfig::localhost());
        sim.tcp_listen(b, 853);
        let client = sim.tcp_connect(a, (b, 853));
        let request: Vec<u8> = (0u16..600).map(|i| (i % 251) as u8).collect();
        sim.tcp_send(client, LayerTag::DnsPayload, &request);
        let server = match wait_for(&mut sim, |w| matches!(w, Wake::TcpAccepted { .. })) {
            Wake::TcpAccepted { conn, .. } => conn,
            _ => unreachable!(),
        };
        let mut got = Vec::new();
        while got.len() < request.len() {
            wait_for(&mut sim, |w| matches!(w, Wake::TcpReadable { .. }));
            got.extend(sim.tcp_recv(server));
        }
        assert_eq!(got, request);
        // Server answers, then both sides close.
        sim.tcp_send(server, LayerTag::DnsPayload, &[7; 120]);
        wait_for(&mut sim, |w| matches!(w, Wake::TcpReadable { conn, .. } if *conn == client));
        assert_eq!(sim.tcp_recv(client), vec![7; 120]);
        sim.tcp_close(client);
        sim.tcp_close(server);
        wait_for(&mut sim, |w| matches!(w, Wake::TcpFin { conn, .. } if *conn == server));
        sim.drain();
        assert!(sim.tcp_fin_received(client));
        assert!(sim.tcp_fin_received(server));
        assert_eq!(sim.dropped_packets(), 0);
    }

    #[test]
    fn segments_respect_the_link_mss() {
        let (mut sim, a, b) = two_hosts(4, LinkConfig::localhost());
        sim.trace.enable(1000);
        sim.tcp_listen(b, 853);
        let client = sim.tcp_connect(a, (b, 853));
        wait_for(&mut sim, |w| matches!(w, Wake::TcpConnected { .. }));
        // 4000 B at MSS 1460 (MTU 1500) → segments of 1460, 1460, 1080.
        sim.tcp_send(client, LayerTag::DnsPayload, &[0xDB; 4000]);
        sim.drain();
        let data_lens: Vec<usize> = sim
            .trace
            .records()
            .iter()
            .filter(|r| r.wire_len > TCP_HEADER + IP_HEADER + crate::packet::TCP_SYN_OPTIONS)
            .map(|r| r.wire_len - (TCP_HEADER + IP_HEADER))
            .collect();
        assert_eq!(data_lens, vec![1460, 1460, 1080]);
        // No packet ever exceeds the MTU.
        assert!(sim.trace.records().iter().all(|r| r.wire_len <= 1500));
        let total = sim.meter.total();
        assert_eq!(total.layers.dns, 4000);
        // Raw DNS over TCP: every non-payload byte is transport header.
        assert_eq!(total.bytes, total.layers.dns + total.layers.l4_header);
    }

    #[test]
    fn syn_retransmits_with_backoff_then_fails() {
        let (mut sim, a, b) = two_hosts(5, LinkConfig::localhost().loss(1.0));
        sim.tcp_listen(b, 853);
        let client = sim.tcp_connect(a, (b, 853));
        assert!(sim.next_wake().is_none(), "no wake can arrive on a dead link");
        // Original SYN plus MAX_RETRIES retransmissions, all charged.
        assert_eq!(sim.meter.total().packets, 1 + MAX_RETRIES as u64);
        assert!(sim.tcp_has_failed(client));
        assert!(!sim.tcp_is_established(client));
        // Backoff: 200ms + 400ms + ... + 12.8s before the final expiry.
        let elapsed = sim.now().as_nanos();
        assert!(elapsed >= 12_600_000_000, "elapsed {elapsed}");
    }

    #[test]
    fn connect_to_unbound_port_fails_after_retries() {
        let (mut sim, a, b) = two_hosts(6, LinkConfig::localhost());
        // No listener on 853.
        let client = sim.tcp_connect(a, (b, 853));
        sim.drain();
        assert!(sim.tcp_has_failed(client));
        assert_eq!(sim.dropped_packets(), (1 + MAX_RETRIES) as u64);
    }

    #[test]
    fn lost_data_is_retransmitted_and_counted() {
        // Client → server drops half the segments; the reverse path is
        // clean so ACKs always return.
        let mut sim = Sim::new(42);
        let a = sim.add_host("client");
        let b = sim.add_host("server");
        sim.add_link_asymmetric(a, b, LinkConfig::localhost().loss(0.5), LinkConfig::localhost());
        sim.tcp_listen(b, 853);
        let client = sim.tcp_connect(a, (b, 853));
        let payload = vec![0x5A; 6000]; // 5 segments at MSS 1460
        sim.tcp_send(client, LayerTag::DnsPayload, &payload);
        let server = match wait_for(&mut sim, |w| matches!(w, Wake::TcpAccepted { .. })) {
            Wake::TcpAccepted { conn, .. } => conn,
            _ => unreachable!(),
        };
        let mut got = Vec::new();
        while got.len() < payload.len() {
            wait_for(&mut sim, |w| matches!(w, Wake::TcpReadable { .. }));
            got.extend(sim.tcp_recv(server));
        }
        assert_eq!(got, payload);
        sim.drain();
        let total = sim.meter.total();
        // Retransmissions inflate the DNS-layer byte count past the
        // logical stream length: the meter sees every wire copy.
        assert!(total.layers.dns > 6000, "dns bytes {}", total.layers.dns);
        assert!(sim.dropped_packets() > 0);
    }

    #[test]
    fn single_segment_is_acked_after_the_delayed_ack_timeout() {
        let (mut sim, a, b) = two_hosts(8, LinkConfig::localhost());
        sim.tcp_listen(b, 853);
        let client = sim.tcp_connect(a, (b, 853));
        wait_for(&mut sim, |w| matches!(w, Wake::TcpConnected { .. }));
        let sent_at = sim.now();
        sim.tcp_send(client, LayerTag::DnsPayload, &[1; 100]);
        sim.drain();
        // 3 handshake + 1 data + 1 delayed ACK; the 200 ms RTO never fired
        // (draining still pops the stale timer event, so `now` ends past it).
        assert_eq!(sim.meter.total().packets, 5);
        assert!(sim.now() - sent_at >= DELACK, "ACK arrived before the delack timeout");
        let client_ep = &sim.conns[client.conn].ends[Side::Client.index()];
        assert_eq!(client_ep.retries, 0, "the data segment was retransmitted");
    }

    #[test]
    fn identical_seeds_give_identical_costs_and_traces() {
        let run = |seed: u64| {
            let mut sim = Sim::new(seed);
            let a = sim.add_host("client");
            let b = sim.add_host("server");
            sim.add_link(
                a,
                b,
                LinkConfig::localhost().loss(0.2).jitter(SimDuration::from_micros(200)),
            );
            sim.trace.enable(10_000);
            sim.tcp_listen(b, 853);
            let client = sim.tcp_connect(a, (b, 853));
            sim.set_attr(1);
            sim.tcp_send(client, LayerTag::DnsPayload, &[9; 5000]);
            sim.drain();
            let cost = sim.meter.cost(1);
            (cost.bytes, cost.packets, sim.trace.dump())
        };
        let (b1, p1, t1) = run(1234);
        let (b2, p2, t2) = run(1234);
        assert_eq!(b1, b2);
        assert_eq!(p1, p2);
        assert_eq!(t1, t2, "traces must be byte-identical");
        let (_, _, t3) = run(1235);
        assert_ne!(t1, t3, "different seeds must diverge");
    }

    #[test]
    fn close_before_connect_sends_fin_after_handshake() {
        let (mut sim, a, b) = two_hosts(9, LinkConfig::localhost());
        sim.tcp_listen(b, 853);
        let client = sim.tcp_connect(a, (b, 853));
        sim.tcp_send(client, LayerTag::DnsPayload, &[3; 50]);
        sim.tcp_close(client);
        let fin = wait_for(&mut sim, |w| matches!(w, Wake::TcpFin { .. }));
        match fin {
            Wake::TcpFin { conn, .. } => assert_eq!(conn.side, Side::Server),
            _ => unreachable!(),
        }
        sim.drain();
        assert!(sim.tcp_fin_received(TcpHandle { conn: client.conn, side: Side::Server }));
    }

    #[test]
    fn tagged_buf_tracks_ranges_through_push_advance_slice() {
        let mut buf = TaggedBuf::default();
        buf.push(LayerTag::Tls, 1, &[1; 10]);
        buf.push(LayerTag::Tls, 1, &[2; 5]); // coalesces with the previous
        buf.push(LayerTag::HttpBody, 2, &[3; 20]);
        assert_eq!(buf.len(), 35);
        assert_eq!(buf.ranges.len(), 2);

        let (bytes, ranges) = buf.slice(12, 10);
        assert_eq!(bytes.len(), 10);
        assert_eq!(ranges.len(), 2);
        assert_eq!((ranges[0].tag, ranges[0].len), (LayerTag::Tls, 3));
        assert_eq!((ranges[1].tag, ranges[1].attr, ranges[1].len), (LayerTag::HttpBody, 2, 7));

        buf.advance(15);
        assert_eq!(buf.len(), 20);
        let (bytes, ranges) = buf.slice(0, 20);
        assert_eq!(bytes, vec![3; 20]);
        assert_eq!(ranges.len(), 1);
        assert_eq!(ranges[0].tag, LayerTag::HttpBody);
    }

    #[test]
    fn vectored_send_coalesces_ranges_into_one_segment() {
        let (mut sim, a, b) = two_hosts(12, LinkConfig::localhost());
        sim.trace.enable(100);
        sim.tcp_listen(b, 853);
        let client = sim.tcp_connect(a, (b, 853));
        wait_for(&mut sim, |w| matches!(w, Wake::TcpConnected { .. }));
        let before = sim.meter.total().packets;
        sim.tcp_send_vectored(
            client,
            &[
                (LayerTag::Tls, &[1; 5]),
                (LayerTag::HttpHeader, &[2; 60]),
                (LayerTag::HttpBody, &[3; 40]),
                (LayerTag::Tls, &[4; 16]),
            ],
        );
        sim.drain();
        // One data segment (plus its delayed ACK), not four.
        assert_eq!(sim.meter.total().packets, before + 2);
        let t = sim.meter.total();
        assert_eq!(t.layers.tls, 21);
        assert_eq!(t.layers.http_header, 60);
        assert_eq!(t.layers.http_body, 40);
    }

    #[test]
    fn per_resolution_attribution_survives_interleaving() {
        let (mut sim, a, b) = two_hosts(10, LinkConfig::localhost());
        sim.tcp_listen(b, 853);
        let client = sim.tcp_connect(a, (b, 853));
        wait_for(&mut sim, |w| matches!(w, Wake::TcpConnected { .. }));
        sim.set_attr(1);
        sim.tcp_send(client, LayerTag::DnsPayload, &[1; 300]);
        sim.set_attr(2);
        sim.tcp_send(client, LayerTag::DnsPayload, &[2; 400]);
        sim.drain();
        // Each resolution's data packet is charged to its own attribution.
        assert_eq!(sim.meter.cost(1).layers.dns, 300);
        assert_eq!(sim.meter.cost(2).layers.dns, 400);
    }

    #[test]
    fn coalesced_sends_never_mix_attributions() {
        // Both sends are queued while the handshake is still in flight, so
        // the whole stream is transmittable in one burst; segments must
        // still break at the attribution boundary.
        let (mut sim, a, b) = two_hosts(11, LinkConfig::localhost());
        sim.tcp_listen(b, 853);
        let client = sim.tcp_connect(a, (b, 853));
        sim.set_attr(1);
        sim.tcp_send(client, LayerTag::DnsPayload, &[1; 300]);
        sim.set_attr(2);
        sim.tcp_send(client, LayerTag::DnsPayload, &[2; 400]);
        sim.drain();
        assert_eq!(sim.meter.cost(1).layers.dns, 300);
        assert_eq!(sim.meter.cost(2).layers.dns, 400);
    }
}
