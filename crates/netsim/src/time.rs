//! Simulated time: nanosecond ticks on a monotonic virtual clock.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point on the simulated clock, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since the epoch.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since the epoch, as a float (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`; saturates at zero.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from nanoseconds.
    pub fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Builds a duration from microseconds.
    pub fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from milliseconds.
    pub fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from seconds.
    pub fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds; negative values clamp to 0.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        SimDuration((s.max(0.0) * 1e9).round() as u64)
    }

    /// Nanosecond count.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        assert_eq!(t - SimTime::ZERO, SimDuration::from_millis(5));
        assert_eq!(SimDuration::from_secs(1) / 4, SimDuration::from_millis(250));
        assert_eq!(SimDuration::from_millis(3) * 2, SimDuration::from_micros(6000));
    }

    #[test]
    fn saturating_behaviour() {
        let a = SimTime(5);
        let b = SimTime(9);
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(a.duration_since(b), SimDuration::ZERO);
        assert_eq!(SimDuration(3).saturating_sub(SimDuration(4)), SimDuration::ZERO);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs_f64(0.25).as_nanos(), 250_000_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert!((SimDuration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(SimDuration::from_micros(120).to_string(), "120.0us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }
}
