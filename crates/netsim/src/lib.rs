//! Deterministic discrete-event network simulator (under construction).
