//! Deterministic discrete-event network simulator.
//!
//! This crate provides the measurement substrate of the reproduction: a
//! virtual clock ([`time`]), point-to-point links with latency, bandwidth,
//! jitter and fault injection ([`link`]), simulated UDP datagrams and a
//! byte-stream TCP model ([`tcp`]), and per-layer byte/packet accounting
//! ([`trace`]) behind the paper's Figures 3–5.
//!
//! Everything is bit-for-bit reproducible: the only randomness comes from
//! the seeded [`SimRng`], events at equal times fire in FIFO order, and no
//! wall-clock time or environment state leaks in.
//!
//! # Example
//!
//! ```
//! use dohmark_netsim::{LayerTag, LinkConfig, Sim, Wake};
//!
//! let mut sim = Sim::new(42);
//! let client = sim.add_host("client");
//! let server = sim.add_host("server");
//! sim.add_link(client, server, LinkConfig::localhost());
//!
//! sim.tcp_listen(server, 853);
//! let conn = sim.tcp_connect(client, (server, 853));
//! while let Some(wake) = sim.next_wake() {
//!     if let Wake::TcpConnected { .. } = wake {
//!         sim.tcp_send(conn, LayerTag::DnsPayload, &[0u8; 64]);
//!         break;
//!     }
//! }
//! sim.drain();
//! assert!(sim.meter.total().bytes > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod link;
pub mod packet;
pub mod rng;
pub mod sim;
pub mod tcp;
pub mod time;
pub mod trace;

pub use link::{DirLink, LinkConfig};
pub use packet::{Packet, Proto, TcpFlags, TcpSegMeta, IP_HEADER, TCP_HEADER, UDP_HEADER};
pub use rng::SimRng;
pub use sim::{HostId, ListenerId, Side, Sim, SockId, TcpHandle, Wake};
pub use tcp::{Listener, TcpConn};
pub use time::{SimDuration, SimTime};
pub use trace::{Cost, CostMeter, LayerBytes, LayerTag, PacketRecord, TraceLog};
