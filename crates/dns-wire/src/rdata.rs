//! Typed RDATA for the record types exercised by the study.

use crate::error::{DnsError, Result};
use crate::name::Name;
use crate::record::RecordType;
use crate::wire::{Reader, Writer};
use std::net::{Ipv4Addr, Ipv6Addr};

/// SOA record fields (RFC 1035 §3.3.13).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoaRdata {
    /// Primary name server.
    pub mname: Name,
    /// Responsible mailbox.
    pub rname: Name,
    /// Zone serial number.
    pub serial: u32,
    /// Refresh interval (s).
    pub refresh: u32,
    /// Retry interval (s).
    pub retry: u32,
    /// Expire limit (s).
    pub expire: u32,
    /// Negative-caching TTL (s).
    pub minimum: u32,
}

/// SRV record fields (RFC 2782).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrvRdata {
    /// Priority (lower preferred).
    pub priority: u16,
    /// Weight for equal priorities.
    pub weight: u16,
    /// Service port.
    pub port: u16,
    /// Target host.
    pub target: Name,
}

/// CAA record fields (RFC 6844) — the Table 2 survey probes these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaaRdata {
    /// Critical flag (bit 7 of the flags octet).
    pub critical: bool,
    /// Property tag, e.g. `issue`, `issuewild`, `iodef`.
    pub tag: String,
    /// Property value, e.g. the authorized CA domain.
    pub value: String,
}

/// Typed record data.
///
/// The `Opt` variant is the EDNS0 pseudo-record payload; its options are kept
/// as raw `(code, data)` pairs because the study only needs their size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rdata {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Alias target.
    Cname(Name),
    /// Name-server host.
    Ns(Name),
    /// Reverse pointer target.
    Ptr(Name),
    /// Mail exchange: preference and host.
    Mx {
        /// Preference (lower preferred).
        preference: u16,
        /// Exchange host.
        exchange: Name,
    },
    /// Text strings, each at most 255 bytes.
    Txt(Vec<String>),
    /// Start of authority.
    Soa(SoaRdata),
    /// Service location.
    Srv(SrvRdata),
    /// Certification Authority Authorization.
    Caa(CaaRdata),
    /// EDNS0 options as raw `(code, data)` pairs.
    Opt(Vec<(u16, Vec<u8>)>),
    /// Unrecognised record data kept verbatim.
    Unknown {
        /// The wire record type.
        rtype: u16,
        /// Raw RDATA bytes.
        data: Vec<u8>,
    },
}

impl Rdata {
    /// The wire record type this RDATA belongs to.
    pub fn rtype(&self) -> RecordType {
        match self {
            Rdata::A(_) => RecordType::A,
            Rdata::Aaaa(_) => RecordType::Aaaa,
            Rdata::Cname(_) => RecordType::Cname,
            Rdata::Ns(_) => RecordType::Ns,
            Rdata::Ptr(_) => RecordType::Ptr,
            Rdata::Mx { .. } => RecordType::Mx,
            Rdata::Txt(_) => RecordType::Txt,
            Rdata::Soa(_) => RecordType::Soa,
            Rdata::Srv(_) => RecordType::Srv,
            Rdata::Caa(_) => RecordType::Caa,
            Rdata::Opt(_) => RecordType::Opt,
            Rdata::Unknown { rtype, .. } => RecordType::from_u16(*rtype),
        }
    }

    /// Encodes the RDATA body (without the RDLENGTH prefix).
    ///
    /// Names inside RDATA are *not* compressed, matching RFC 3597's rule
    /// that compression must not be used for types unknown to intermediaries
    /// and modern-server practice for the classic types as well.
    pub fn encode(&self, w: &mut Writer) {
        match self {
            Rdata::A(addr) => w.bytes(&addr.octets()),
            Rdata::Aaaa(addr) => w.bytes(&addr.octets()),
            Rdata::Cname(n) | Rdata::Ns(n) | Rdata::Ptr(n) => Self::encode_name_plain(n, w),
            Rdata::Mx { preference, exchange } => {
                w.u16(*preference);
                Self::encode_name_plain(exchange, w);
            }
            Rdata::Txt(strings) => {
                for s in strings {
                    let bytes = s.as_bytes();
                    w.u8(bytes.len().min(255) as u8);
                    w.bytes(&bytes[..bytes.len().min(255)]);
                }
            }
            Rdata::Soa(soa) => {
                Self::encode_name_plain(&soa.mname, w);
                Self::encode_name_plain(&soa.rname, w);
                w.u32(soa.serial);
                w.u32(soa.refresh);
                w.u32(soa.retry);
                w.u32(soa.expire);
                w.u32(soa.minimum);
            }
            Rdata::Srv(srv) => {
                w.u16(srv.priority);
                w.u16(srv.weight);
                w.u16(srv.port);
                Self::encode_name_plain(&srv.target, w);
            }
            Rdata::Caa(caa) => {
                w.u8(if caa.critical { 0x80 } else { 0 });
                w.u8(caa.tag.len() as u8);
                w.bytes(caa.tag.as_bytes());
                w.bytes(caa.value.as_bytes());
            }
            Rdata::Opt(options) => {
                for (code, data) in options {
                    w.u16(*code);
                    w.u16(data.len() as u16);
                    w.bytes(data);
                }
            }
            Rdata::Unknown { data, .. } => w.bytes(data),
        }
    }

    /// Writes a name label-by-label without consulting the compression map.
    fn encode_name_plain(name: &Name, w: &mut Writer) {
        for label in name.labels() {
            w.u8(label.len() as u8);
            w.bytes(label.as_bytes());
        }
        w.u8(0);
    }

    /// Decodes RDATA of type `rtype` spanning exactly `rdlength` bytes.
    pub fn decode(rtype: RecordType, r: &mut Reader<'_>, rdlength: usize) -> Result<Rdata> {
        let end = r.position() + rdlength;
        let rdata = match rtype {
            RecordType::A => {
                let b = r.bytes(4, "A rdata")?;
                Rdata::A(Ipv4Addr::new(b[0], b[1], b[2], b[3]))
            }
            RecordType::Aaaa => {
                let b = r.bytes(16, "AAAA rdata")?;
                let mut o = [0u8; 16];
                o.copy_from_slice(b);
                Rdata::Aaaa(Ipv6Addr::from(o))
            }
            RecordType::Cname => Rdata::Cname(Name::decode(r)?),
            RecordType::Ns => Rdata::Ns(Name::decode(r)?),
            RecordType::Ptr => Rdata::Ptr(Name::decode(r)?),
            RecordType::Mx => {
                Rdata::Mx { preference: r.u16("MX preference")?, exchange: Name::decode(r)? }
            }
            RecordType::Txt => {
                let mut strings = Vec::new();
                while r.position() < end {
                    let len = r.u8("TXT length")? as usize;
                    if r.position() + len > end {
                        return Err(DnsError::Truncated { context: "TXT string" });
                    }
                    let raw = r.bytes(len, "TXT string")?;
                    strings.push(String::from_utf8_lossy(raw).into_owned());
                }
                Rdata::Txt(strings)
            }
            RecordType::Soa => Rdata::Soa(SoaRdata {
                mname: Name::decode(r)?,
                rname: Name::decode(r)?,
                serial: r.u32("SOA serial")?,
                refresh: r.u32("SOA refresh")?,
                retry: r.u32("SOA retry")?,
                expire: r.u32("SOA expire")?,
                minimum: r.u32("SOA minimum")?,
            }),
            RecordType::Srv => Rdata::Srv(SrvRdata {
                priority: r.u16("SRV priority")?,
                weight: r.u16("SRV weight")?,
                port: r.u16("SRV port")?,
                target: Name::decode(r)?,
            }),
            RecordType::Caa => {
                let flags = r.u8("CAA flags")?;
                let tag_len = r.u8("CAA tag length")? as usize;
                let tag_raw = r.bytes(tag_len, "CAA tag")?;
                let consumed = 2 + tag_len;
                if rdlength < consumed {
                    return Err(DnsError::Truncated { context: "CAA value" });
                }
                let value_raw = r.bytes(rdlength - consumed, "CAA value")?;
                Rdata::Caa(CaaRdata {
                    critical: flags & 0x80 != 0,
                    tag: String::from_utf8_lossy(tag_raw).into_owned(),
                    value: String::from_utf8_lossy(value_raw).into_owned(),
                })
            }
            RecordType::Opt => {
                let mut options = Vec::new();
                while r.position() < end {
                    let code = r.u16("OPT code")?;
                    let len = r.u16("OPT length")? as usize;
                    if r.position() + len > end {
                        return Err(DnsError::Truncated { context: "OPT option" });
                    }
                    options.push((code, r.bytes(len, "OPT data")?.to_vec()));
                }
                Rdata::Opt(options)
            }
            other => Rdata::Unknown {
                rtype: other.to_u16(),
                data: r.bytes(rdlength, "unknown rdata")?.to_vec(),
            },
        };
        Ok(rdata)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(rdata: Rdata) {
        let mut w = Writer::new();
        rdata.encode(&mut w);
        let wire = w.finish();
        let mut r = Reader::new(&wire);
        let back = Rdata::decode(rdata.rtype(), &mut r, wire.len()).unwrap();
        assert_eq!(back, rdata);
        assert!(r.is_empty());
    }

    #[test]
    fn a_and_aaaa_round_trip() {
        round_trip(Rdata::A(Ipv4Addr::new(1, 2, 3, 4)));
        round_trip(Rdata::Aaaa("2606:4700::6810:84e5".parse().unwrap()));
    }

    #[test]
    fn name_bearing_rdata_round_trips() {
        let n = Name::parse("target.example.net").unwrap();
        round_trip(Rdata::Cname(n.clone()));
        round_trip(Rdata::Ns(n.clone()));
        round_trip(Rdata::Ptr(n.clone()));
        round_trip(Rdata::Mx { preference: 10, exchange: n });
    }

    #[test]
    fn txt_round_trips_with_multiple_strings() {
        round_trip(Rdata::Txt(vec!["v=spf1 -all".into(), "second".into()]));
        round_trip(Rdata::Txt(vec![]));
    }

    #[test]
    fn soa_round_trips() {
        round_trip(Rdata::Soa(SoaRdata {
            mname: Name::parse("ns1.example.com").unwrap(),
            rname: Name::parse("hostmaster.example.com").unwrap(),
            serial: 2019091001,
            refresh: 7200,
            retry: 3600,
            expire: 1209600,
            minimum: 300,
        }));
    }

    #[test]
    fn srv_round_trips() {
        round_trip(Rdata::Srv(SrvRdata {
            priority: 0,
            weight: 5,
            port: 443,
            target: Name::parse("doh.example.org").unwrap(),
        }));
    }

    #[test]
    fn caa_round_trips() {
        round_trip(Rdata::Caa(CaaRdata {
            critical: true,
            tag: "issue".into(),
            value: "pki.goog".into(),
        }));
        round_trip(Rdata::Caa(CaaRdata {
            critical: false,
            tag: "iodef".into(),
            value: "mailto:security@example.com".into(),
        }));
    }

    #[test]
    fn opt_round_trips() {
        round_trip(Rdata::Opt(vec![(8, vec![0, 1, 16, 0, 1, 2, 3, 4]), (10, vec![9; 8])]));
        round_trip(Rdata::Opt(vec![]));
    }

    #[test]
    fn unknown_type_preserves_bytes() {
        round_trip(Rdata::Unknown { rtype: 99, data: vec![1, 2, 3, 4, 5] });
    }

    #[test]
    fn truncated_txt_string_is_an_error() {
        // Claims 10 bytes but only 2 present within rdlength.
        let wire = [10u8, b'a', b'b'];
        let mut r = Reader::new(&wire);
        assert!(Rdata::decode(RecordType::Txt, &mut r, wire.len()).is_err());
    }

    #[test]
    fn truncated_opt_option_is_an_error() {
        let wire = [0u8, 8, 0, 12, 1, 2];
        let mut r = Reader::new(&wire);
        assert!(Rdata::decode(RecordType::Opt, &mut r, wire.len()).is_err());
    }

    #[test]
    fn a_rdata_is_exactly_four_bytes() {
        let mut w = Writer::new();
        Rdata::A(Ipv4Addr::LOCALHOST).encode(&mut w);
        assert_eq!(w.finish().len(), 4);
    }
}
