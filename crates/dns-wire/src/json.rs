//! The `application/dns-json` representation (draft-bortzmeyer-dns-json,
//! as deployed by Google and Cloudflare's JSON APIs).
//!
//! The paper's landscape survey (Table 2) probes providers for this content
//! type alongside the RFC-mandated `application/dns-message`. The shape here
//! follows the deployed Google/Cloudflare APIs: `Status`, flag booleans, and
//! `Question`/`Answer` arrays with numeric types and string `data`.

use crate::error::{DnsError, Result};
use crate::header::Rcode;
use crate::jsontext::{self, write_escaped, JsonValue};
use crate::message::Message;
use crate::name::Name;
use crate::rdata::Rdata;
use crate::record::{Record, RecordType};

/// JSON form of one question entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonQuestion {
    /// Queried name in presentation format with trailing dot.
    pub name: String,
    /// Numeric record type (serialised as `type`).
    pub qtype: u16,
}

/// JSON form of one answer record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonAnswer {
    /// Owner name in presentation format.
    pub name: String,
    /// Numeric record type (serialised as `type`).
    pub rtype: u16,
    /// Time to live in seconds (serialised as `TTL`).
    pub ttl: u32,
    /// Record data in presentation format.
    pub data: String,
}

/// JSON form of a DNS response message.
///
/// Field names on the wire follow the deployed Google/Cloudflare APIs:
/// `Status`, `TC`, `RD`, `RA`, `AD`, `CD`, `Question`, `Answer`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonMessage {
    /// Response code (`Status` in the deployed APIs).
    pub status: u16,
    /// Truncation flag.
    pub tc: bool,
    /// Recursion desired.
    pub rd: bool,
    /// Recursion available.
    pub ra: bool,
    /// Authenticated data.
    pub ad: bool,
    /// Checking disabled.
    pub cd: bool,
    /// Question section.
    pub question: Vec<JsonQuestion>,
    /// Answer section; omitted when empty, as the deployed APIs do.
    pub answer: Vec<JsonAnswer>,
}

impl JsonMessage {
    /// Converts a wireformat message into its JSON form.
    ///
    /// Only record types with a natural presentation `data` string are
    /// representable; others are carried as hex, mirroring how deployed
    /// APIs fall back for unknown types.
    pub fn from_message(msg: &Message) -> JsonMessage {
        JsonMessage {
            status: msg.header.rcode.to_u8() as u16,
            tc: msg.header.truncated,
            rd: msg.header.recursion_desired,
            ra: msg.header.recursion_available,
            ad: msg.header.authentic_data,
            cd: msg.header.checking_disabled,
            question: msg
                .questions
                .iter()
                .map(|q| JsonQuestion { name: q.name.to_string(), qtype: q.qtype.to_u16() })
                .collect(),
            answer: msg.answers.iter().map(Self::answer_from_record).collect(),
        }
    }

    fn answer_from_record(rec: &Record) -> JsonAnswer {
        let data = match &rec.rdata {
            Rdata::A(a) => a.to_string(),
            Rdata::Aaaa(a) => a.to_string(),
            Rdata::Cname(n) | Rdata::Ns(n) | Rdata::Ptr(n) => n.to_string(),
            Rdata::Mx { preference, exchange } => format!("{preference} {exchange}"),
            Rdata::Txt(strings) => format!("\"{}\"", strings.join("\" \"")),
            Rdata::Soa(soa) => format!(
                "{} {} {} {} {} {} {}",
                soa.mname, soa.rname, soa.serial, soa.refresh, soa.retry, soa.expire, soa.minimum
            ),
            Rdata::Srv(srv) => {
                format!("{} {} {} {}", srv.priority, srv.weight, srv.port, srv.target)
            }
            Rdata::Caa(caa) => {
                format!("{} {} \"{}\"", if caa.critical { 128 } else { 0 }, caa.tag, caa.value)
            }
            Rdata::Opt(_) => String::new(),
            Rdata::Unknown { data, .. } => {
                data.iter().map(|b| format!("{b:02x}")).collect::<String>()
            }
        };
        JsonAnswer { name: rec.name.to_string(), rtype: rec.rtype().to_u16(), ttl: rec.ttl, data }
    }

    /// Converts the JSON form back into a wireformat message.
    ///
    /// `id` must be supplied by the caller: the JSON APIs run over HTTPS
    /// where the transaction id is redundant, so it is not part of the JSON.
    pub fn to_message(&self, id: u16) -> Result<Message> {
        let mut msg = Message {
            header: crate::header::Header::new_query(id),
            questions: Vec::new(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        };
        msg.header.response = true;
        msg.header.rcode = Rcode::from_u8(self.status as u8);
        msg.header.truncated = self.tc;
        msg.header.recursion_desired = self.rd;
        msg.header.recursion_available = self.ra;
        msg.header.authentic_data = self.ad;
        msg.header.checking_disabled = self.cd;
        for q in &self.question {
            let name = Name::parse(&q.name).map_err(|e| DnsError::Json(e.to_string()))?;
            msg.questions.push(crate::message::Question::new(name, RecordType::from_u16(q.qtype)));
        }
        for a in &self.answer {
            msg.answers.push(Self::record_from_answer(a)?);
        }
        Ok(msg)
    }

    fn record_from_answer(a: &JsonAnswer) -> Result<Record> {
        let name = Name::parse(&a.name).map_err(|e| DnsError::Json(e.to_string()))?;
        let rtype = RecordType::from_u16(a.rtype);
        let bad = |what: &str| DnsError::Json(format!("bad {what} data: {}", a.data));
        let rdata = match rtype {
            RecordType::A => Rdata::A(a.data.parse().map_err(|_| bad("A"))?),
            RecordType::Aaaa => Rdata::Aaaa(a.data.parse().map_err(|_| bad("AAAA"))?),
            RecordType::Cname => Rdata::Cname(Name::parse(&a.data).map_err(|_| bad("CNAME"))?),
            RecordType::Ns => Rdata::Ns(Name::parse(&a.data).map_err(|_| bad("NS"))?),
            RecordType::Ptr => Rdata::Ptr(Name::parse(&a.data).map_err(|_| bad("PTR"))?),
            RecordType::Mx => {
                let (pref, exch) = a.data.split_once(' ').ok_or_else(|| bad("MX"))?;
                Rdata::Mx {
                    preference: pref.parse().map_err(|_| bad("MX preference"))?,
                    exchange: Name::parse(exch).map_err(|_| bad("MX exchange"))?,
                }
            }
            RecordType::Txt => {
                let strings = a
                    .data
                    .trim_matches('"')
                    .split("\" \"")
                    .map(|s| s.to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                Rdata::Txt(strings)
            }
            _ => {
                // Round-trip unknown-as-hex; anything else stays opaque.
                let bytes = (0..a.data.len() / 2)
                    .map(|i| u8::from_str_radix(&a.data[2 * i..2 * i + 2], 16))
                    .collect::<std::result::Result<Vec<_>, _>>()
                    .map_err(|_| bad("hex"))?;
                Rdata::Unknown { rtype: a.rtype, data: bytes }
            }
        };
        Ok(Record::new(name, a.ttl, rdata))
    }

    /// Serialises to the on-wire JSON text (compact, deployed field names).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"Status\":");
        out.push_str(&self.status.to_string());
        for (key, value) in
            [("TC", self.tc), ("RD", self.rd), ("RA", self.ra), ("AD", self.ad), ("CD", self.cd)]
        {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":");
            out.push_str(if value { "true" } else { "false" });
        }
        out.push_str(",\"Question\":[");
        for (i, q) in self.question.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_escaped(&mut out, &q.name);
            out.push_str(",\"type\":");
            out.push_str(&q.qtype.to_string());
            out.push('}');
        }
        out.push(']');
        if !self.answer.is_empty() {
            out.push_str(",\"Answer\":[");
            for (i, a) in self.answer.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"name\":");
                write_escaped(&mut out, &a.name);
                out.push_str(",\"type\":");
                out.push_str(&a.rtype.to_string());
                out.push_str(",\"TTL\":");
                out.push_str(&a.ttl.to_string());
                out.push_str(",\"data\":");
                write_escaped(&mut out, &a.data);
                out.push('}');
            }
            out.push(']');
        }
        out.push('}');
        out
    }

    /// Parses on-wire JSON text. Unknown fields are ignored, as the
    /// deployed APIs add fields freely.
    pub fn from_json(text: &str) -> Result<JsonMessage> {
        let doc = jsontext::parse(text).map_err(|e| DnsError::Json(e.to_string()))?;
        if !matches!(doc, JsonValue::Object(_)) {
            return Err(DnsError::Json("document is not an object".to_string()));
        }
        let question = doc
            .get("Question")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| missing("Question"))?
            .iter()
            .map(|q| {
                Ok(JsonQuestion {
                    name: req_str(q, "name")?.to_string(),
                    qtype: req_int(q, "type")?,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        let answer = match doc.get("Answer") {
            None => Vec::new(),
            Some(v) => v
                .as_array()
                .ok_or_else(|| DnsError::Json("Answer is not an array".to_string()))?
                .iter()
                .map(|a| {
                    Ok(JsonAnswer {
                        name: req_str(a, "name")?.to_string(),
                        rtype: req_int(a, "type")?,
                        ttl: req_int(a, "TTL")?,
                        data: req_str(a, "data")?.to_string(),
                    })
                })
                .collect::<Result<Vec<_>>>()?,
        };
        Ok(JsonMessage {
            status: req_int(&doc, "Status")?,
            tc: req_bool(&doc, "TC")?,
            rd: req_bool(&doc, "RD")?,
            ra: req_bool(&doc, "RA")?,
            ad: req_bool(&doc, "AD")?,
            cd: req_bool(&doc, "CD")?,
            question,
            answer,
        })
    }
}

fn missing(key: &str) -> DnsError {
    DnsError::Json(format!("missing or mistyped field {key}"))
}

fn req_bool(v: &JsonValue, key: &str) -> Result<bool> {
    v.get(key).and_then(JsonValue::as_bool).ok_or_else(|| missing(key))
}

fn req_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str> {
    v.get(key).and_then(JsonValue::as_str).ok_or_else(|| missing(key))
}

/// An integral JSON number coerced into `T`, erroring on range overflow.
fn req_int<T: TryFrom<u64>>(v: &JsonValue, key: &str) -> Result<T> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .and_then(|n| T::try_from(n).ok())
        .ok_or_else(|| missing(key))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;
    use std::net::Ipv4Addr;

    fn sample_response() -> Message {
        let q = Message::query(7, &Name::parse("example.com").unwrap(), RecordType::A);
        Message::fixed_a_response(&q, Ipv4Addr::new(93, 184, 216, 34), 300)
    }

    #[test]
    fn json_round_trip_preserves_answers() {
        let msg = sample_response();
        let j = JsonMessage::from_message(&msg);
        let text = j.to_json();
        let back = JsonMessage::from_json(&text).unwrap().to_message(7).unwrap();
        assert_eq!(back.answers, msg.answers);
        assert_eq!(back.questions, msg.questions);
        assert_eq!(back.header.rcode, msg.header.rcode);
    }

    #[test]
    fn json_uses_deployed_field_names() {
        let j = JsonMessage::from_message(&sample_response());
        let text = j.to_json();
        for field in
            ["\"Status\"", "\"TC\"", "\"RD\"", "\"RA\"", "\"Question\"", "\"Answer\"", "\"TTL\""]
        {
            assert!(text.contains(field), "missing {field} in {text}");
        }
    }

    #[test]
    fn nxdomain_status_round_trips() {
        let q = Message::query(1, &Name::parse("nope.example").unwrap(), RecordType::A);
        let resp = Message::response(&q, Rcode::NxDomain, vec![]);
        let j = JsonMessage::from_message(&resp);
        assert_eq!(j.status, 3);
        let back = JsonMessage::from_json(&j.to_json()).unwrap();
        assert_eq!(back.to_message(1).unwrap().header.rcode, Rcode::NxDomain);
    }

    #[test]
    fn empty_answer_array_is_omitted() {
        let q = Message::query(1, &Name::parse("x.example").unwrap(), RecordType::A);
        let resp = Message::response(&q, Rcode::NoError, vec![]);
        let text = JsonMessage::from_message(&resp).to_json();
        assert!(!text.contains("\"Answer\""));
        assert!(JsonMessage::from_json(&text).unwrap().answer.is_empty());
    }

    #[test]
    fn cname_and_mx_data_round_trip() {
        let q = Message::query(2, &Name::parse("x.example").unwrap(), RecordType::A);
        let mut resp = Message::response(&q, Rcode::NoError, vec![]);
        resp.answers.push(Record::new(
            Name::parse("x.example").unwrap(),
            60,
            Rdata::Cname(Name::parse("y.example").unwrap()),
        ));
        resp.answers.push(Record::new(
            Name::parse("x.example").unwrap(),
            60,
            Rdata::Mx { preference: 10, exchange: Name::parse("mail.example").unwrap() },
        ));
        let j = JsonMessage::from_message(&resp);
        let back = JsonMessage::from_json(&j.to_json()).unwrap().to_message(2).unwrap();
        assert_eq!(back.answers, resp.answers);
    }

    #[test]
    fn garbage_json_is_an_error() {
        assert!(JsonMessage::from_json("{not json").is_err());
        assert!(JsonMessage::from_json("{\"Status\": \"zero\"}").is_err());
    }

    #[test]
    fn json_is_larger_than_wireformat() {
        // The paper notes dns-json is a convenience, not an efficiency; our
        // codec reproduces that: JSON text exceeds the binary encoding.
        let msg = sample_response();
        let json_len = JsonMessage::from_message(&msg).to_json().len();
        assert!(json_len > msg.wire_len(), "{json_len} <= {}", msg.wire_len());
    }
}
