//! The `application/dns-json` representation (draft-bortzmeyer-dns-json,
//! as deployed by Google and Cloudflare's JSON APIs).
//!
//! The paper's landscape survey (Table 2) probes providers for this content
//! type alongside the RFC-mandated `application/dns-message`. The shape here
//! follows the deployed Google/Cloudflare APIs: `Status`, flag booleans, and
//! `Question`/`Answer` arrays with numeric types and string `data`.

use crate::error::{DnsError, Result};
use crate::header::Rcode;
use crate::message::Message;
use crate::name::Name;
use crate::rdata::Rdata;
use crate::record::{Record, RecordType};
use serde::{Deserialize, Serialize};

/// JSON form of one question entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JsonQuestion {
    /// Queried name in presentation format with trailing dot.
    pub name: String,
    /// Numeric record type.
    #[serde(rename = "type")]
    pub qtype: u16,
}

/// JSON form of one answer record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JsonAnswer {
    /// Owner name in presentation format.
    pub name: String,
    /// Numeric record type.
    #[serde(rename = "type")]
    pub rtype: u16,
    /// Time to live in seconds.
    #[serde(rename = "TTL")]
    pub ttl: u32,
    /// Record data in presentation format.
    pub data: String,
}

/// JSON form of a DNS response message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JsonMessage {
    /// Response code (`Status` in the deployed APIs).
    #[serde(rename = "Status")]
    pub status: u16,
    /// Truncation flag.
    #[serde(rename = "TC")]
    pub tc: bool,
    /// Recursion desired.
    #[serde(rename = "RD")]
    pub rd: bool,
    /// Recursion available.
    #[serde(rename = "RA")]
    pub ra: bool,
    /// Authenticated data.
    #[serde(rename = "AD")]
    pub ad: bool,
    /// Checking disabled.
    #[serde(rename = "CD")]
    pub cd: bool,
    /// Question section.
    #[serde(rename = "Question")]
    pub question: Vec<JsonQuestion>,
    /// Answer section; omitted when empty, as the deployed APIs do.
    #[serde(rename = "Answer", default, skip_serializing_if = "Vec::is_empty")]
    pub answer: Vec<JsonAnswer>,
}

impl JsonMessage {
    /// Converts a wireformat message into its JSON form.
    ///
    /// Only record types with a natural presentation `data` string are
    /// representable; others are carried as hex, mirroring how deployed
    /// APIs fall back for unknown types.
    pub fn from_message(msg: &Message) -> JsonMessage {
        JsonMessage {
            status: msg.header.rcode.to_u8() as u16,
            tc: msg.header.truncated,
            rd: msg.header.recursion_desired,
            ra: msg.header.recursion_available,
            ad: msg.header.authentic_data,
            cd: msg.header.checking_disabled,
            question: msg
                .questions
                .iter()
                .map(|q| JsonQuestion { name: q.name.to_string(), qtype: q.qtype.to_u16() })
                .collect(),
            answer: msg.answers.iter().map(Self::answer_from_record).collect(),
        }
    }

    fn answer_from_record(rec: &Record) -> JsonAnswer {
        let data = match &rec.rdata {
            Rdata::A(a) => a.to_string(),
            Rdata::Aaaa(a) => a.to_string(),
            Rdata::Cname(n) | Rdata::Ns(n) | Rdata::Ptr(n) => n.to_string(),
            Rdata::Mx { preference, exchange } => format!("{preference} {exchange}"),
            Rdata::Txt(strings) => format!("\"{}\"", strings.join("\" \"")),
            Rdata::Soa(soa) => format!(
                "{} {} {} {} {} {} {}",
                soa.mname, soa.rname, soa.serial, soa.refresh, soa.retry, soa.expire, soa.minimum
            ),
            Rdata::Srv(srv) => {
                format!("{} {} {} {}", srv.priority, srv.weight, srv.port, srv.target)
            }
            Rdata::Caa(caa) => {
                format!("{} {} \"{}\"", if caa.critical { 128 } else { 0 }, caa.tag, caa.value)
            }
            Rdata::Opt(_) => String::new(),
            Rdata::Unknown { data, .. } => {
                data.iter().map(|b| format!("{b:02x}")).collect::<String>()
            }
        };
        JsonAnswer {
            name: rec.name.to_string(),
            rtype: rec.rtype().to_u16(),
            ttl: rec.ttl,
            data,
        }
    }

    /// Converts the JSON form back into a wireformat message.
    ///
    /// `id` must be supplied by the caller: the JSON APIs run over HTTPS
    /// where the transaction id is redundant, so it is not part of the JSON.
    pub fn to_message(&self, id: u16) -> Result<Message> {
        let mut msg = Message {
            header: crate::header::Header::new_query(id),
            questions: Vec::new(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        };
        msg.header.response = true;
        msg.header.rcode = Rcode::from_u8(self.status as u8);
        msg.header.truncated = self.tc;
        msg.header.recursion_desired = self.rd;
        msg.header.recursion_available = self.ra;
        msg.header.authentic_data = self.ad;
        msg.header.checking_disabled = self.cd;
        for q in &self.question {
            let name = Name::parse(&q.name).map_err(|e| DnsError::Json(e.to_string()))?;
            msg.questions
                .push(crate::message::Question::new(name, RecordType::from_u16(q.qtype)));
        }
        for a in &self.answer {
            msg.answers.push(Self::record_from_answer(a)?);
        }
        Ok(msg)
    }

    fn record_from_answer(a: &JsonAnswer) -> Result<Record> {
        let name = Name::parse(&a.name).map_err(|e| DnsError::Json(e.to_string()))?;
        let rtype = RecordType::from_u16(a.rtype);
        let bad = |what: &str| DnsError::Json(format!("bad {what} data: {}", a.data));
        let rdata = match rtype {
            RecordType::A => Rdata::A(a.data.parse().map_err(|_| bad("A"))?),
            RecordType::Aaaa => Rdata::Aaaa(a.data.parse().map_err(|_| bad("AAAA"))?),
            RecordType::Cname => Rdata::Cname(Name::parse(&a.data).map_err(|_| bad("CNAME"))?),
            RecordType::Ns => Rdata::Ns(Name::parse(&a.data).map_err(|_| bad("NS"))?),
            RecordType::Ptr => Rdata::Ptr(Name::parse(&a.data).map_err(|_| bad("PTR"))?),
            RecordType::Mx => {
                let (pref, exch) = a.data.split_once(' ').ok_or_else(|| bad("MX"))?;
                Rdata::Mx {
                    preference: pref.parse().map_err(|_| bad("MX preference"))?,
                    exchange: Name::parse(exch).map_err(|_| bad("MX exchange"))?,
                }
            }
            RecordType::Txt => {
                let strings = a
                    .data
                    .trim_matches('"')
                    .split("\" \"")
                    .map(|s| s.to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                Rdata::Txt(strings)
            }
            _ => {
                // Round-trip unknown-as-hex; anything else stays opaque.
                let bytes = (0..a.data.len() / 2)
                    .map(|i| u8::from_str_radix(&a.data[2 * i..2 * i + 2], 16))
                    .collect::<std::result::Result<Vec<_>, _>>()
                    .map_err(|_| bad("hex"))?;
                Rdata::Unknown { rtype: a.rtype, data: bytes }
            }
        };
        Ok(Record::new(name, a.ttl, rdata))
    }

    /// Serialises to the on-wire JSON text.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("JsonMessage is always serialisable")
    }

    /// Parses on-wire JSON text.
    pub fn from_json(text: &str) -> Result<JsonMessage> {
        serde_json::from_str(text).map_err(|e| DnsError::Json(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;
    use std::net::Ipv4Addr;

    fn sample_response() -> Message {
        let q = Message::query(7, &Name::parse("example.com").unwrap(), RecordType::A);
        Message::fixed_a_response(&q, Ipv4Addr::new(93, 184, 216, 34), 300)
    }

    #[test]
    fn json_round_trip_preserves_answers() {
        let msg = sample_response();
        let j = JsonMessage::from_message(&msg);
        let text = j.to_json();
        let back = JsonMessage::from_json(&text).unwrap().to_message(7).unwrap();
        assert_eq!(back.answers, msg.answers);
        assert_eq!(back.questions, msg.questions);
        assert_eq!(back.header.rcode, msg.header.rcode);
    }

    #[test]
    fn json_uses_deployed_field_names() {
        let j = JsonMessage::from_message(&sample_response());
        let text = j.to_json();
        for field in ["\"Status\"", "\"TC\"", "\"RD\"", "\"RA\"", "\"Question\"", "\"Answer\"", "\"TTL\""] {
            assert!(text.contains(field), "missing {field} in {text}");
        }
    }

    #[test]
    fn nxdomain_status_round_trips() {
        let q = Message::query(1, &Name::parse("nope.example").unwrap(), RecordType::A);
        let resp = Message::response(&q, Rcode::NxDomain, vec![]);
        let j = JsonMessage::from_message(&resp);
        assert_eq!(j.status, 3);
        let back = JsonMessage::from_json(&j.to_json()).unwrap();
        assert_eq!(back.to_message(1).unwrap().header.rcode, Rcode::NxDomain);
    }

    #[test]
    fn empty_answer_array_is_omitted() {
        let q = Message::query(1, &Name::parse("x.example").unwrap(), RecordType::A);
        let resp = Message::response(&q, Rcode::NoError, vec![]);
        let text = JsonMessage::from_message(&resp).to_json();
        assert!(!text.contains("\"Answer\""));
        assert!(JsonMessage::from_json(&text).unwrap().answer.is_empty());
    }

    #[test]
    fn cname_and_mx_data_round_trip() {
        let q = Message::query(2, &Name::parse("x.example").unwrap(), RecordType::A);
        let mut resp = Message::response(&q, Rcode::NoError, vec![]);
        resp.answers.push(Record::new(
            Name::parse("x.example").unwrap(),
            60,
            Rdata::Cname(Name::parse("y.example").unwrap()),
        ));
        resp.answers.push(Record::new(
            Name::parse("x.example").unwrap(),
            60,
            Rdata::Mx { preference: 10, exchange: Name::parse("mail.example").unwrap() },
        ));
        let j = JsonMessage::from_message(&resp);
        let back = JsonMessage::from_json(&j.to_json()).unwrap().to_message(2).unwrap();
        assert_eq!(back.answers, resp.answers);
    }

    #[test]
    fn garbage_json_is_an_error() {
        assert!(JsonMessage::from_json("{not json").is_err());
        assert!(JsonMessage::from_json("{\"Status\": \"zero\"}").is_err());
    }

    #[test]
    fn json_is_larger_than_wireformat() {
        // The paper notes dns-json is a convenience, not an efficiency; our
        // codec reproduces that: JSON text exceeds the binary encoding.
        let msg = sample_response();
        let json_len = JsonMessage::from_message(&msg).to_json().len();
        assert!(json_len > msg.wire_len(), "{json_len} <= {}", msg.wire_len());
    }
}
