//! The 12-byte DNS message header (RFC 1035 §4.1.1).

use crate::error::{DnsError, Result};
use crate::wire::{Reader, Writer};

/// DNS operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Standard query (the only opcode this study generates).
    Query,
    /// Inverse query (obsolete).
    IQuery,
    /// Server status request.
    Status,
    /// Zone change notification.
    Notify,
    /// Dynamic update.
    Update,
    /// Any opcode not otherwise modelled.
    Other(u8),
}

impl Opcode {
    /// The 4-bit wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::IQuery => 1,
            Opcode::Status => 2,
            Opcode::Notify => 4,
            Opcode::Update => 5,
            Opcode::Other(v) => v & 0x0F,
        }
    }

    /// Decodes the 4-bit wire value.
    pub fn from_u8(v: u8) -> Opcode {
        match v & 0x0F {
            0 => Opcode::Query,
            1 => Opcode::IQuery,
            2 => Opcode::Status,
            4 => Opcode::Notify,
            5 => Opcode::Update,
            other => Opcode::Other(other),
        }
    }
}

/// DNS response codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rcode {
    /// No error.
    NoError,
    /// The query was malformed.
    FormErr,
    /// The server failed internally.
    ServFail,
    /// The name does not exist.
    NxDomain,
    /// The server does not implement the request.
    NotImp,
    /// Policy refusal.
    Refused,
    /// Any extended or unmodelled rcode.
    Other(u8),
}

impl Rcode {
    /// The 4-bit wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(v) => v & 0x0F,
        }
    }

    /// Decodes the 4-bit wire value.
    pub fn from_u8(v: u8) -> Rcode {
        match v & 0x0F {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

/// The fixed DNS header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Transaction identifier echoed by the server.
    pub id: u16,
    /// `true` for responses, `false` for queries (QR bit).
    pub response: bool,
    /// Operation code.
    pub opcode: Opcode,
    /// Authoritative answer (AA).
    pub authoritative: bool,
    /// Truncation (TC) — set when a UDP answer did not fit.
    pub truncated: bool,
    /// Recursion desired (RD).
    pub recursion_desired: bool,
    /// Recursion available (RA).
    pub recursion_available: bool,
    /// Authenticated data (AD, RFC 4035).
    pub authentic_data: bool,
    /// Checking disabled (CD, RFC 4035).
    pub checking_disabled: bool,
    /// Response code.
    pub rcode: Rcode,
    /// Entries in the question section.
    pub qdcount: u16,
    /// Entries in the answer section.
    pub ancount: u16,
    /// Entries in the authority section.
    pub nscount: u16,
    /// Entries in the additional section.
    pub arcount: u16,
}

impl Header {
    /// Size of the header on the wire.
    pub const WIRE_LEN: usize = 12;

    /// A recursive query header with the given transaction id.
    pub fn new_query(id: u16) -> Header {
        Header {
            id,
            response: false,
            opcode: Opcode::Query,
            authoritative: false,
            truncated: false,
            recursion_desired: true,
            recursion_available: false,
            authentic_data: false,
            checking_disabled: false,
            rcode: Rcode::NoError,
            qdcount: 0,
            ancount: 0,
            nscount: 0,
            arcount: 0,
        }
    }

    /// A response header answering `query`.
    pub fn new_response(query: &Header, rcode: Rcode) -> Header {
        Header {
            id: query.id,
            response: true,
            opcode: query.opcode,
            authoritative: false,
            truncated: false,
            recursion_desired: query.recursion_desired,
            recursion_available: true,
            authentic_data: false,
            checking_disabled: query.checking_disabled,
            rcode,
            qdcount: 0,
            ancount: 0,
            nscount: 0,
            arcount: 0,
        }
    }

    /// Encodes the 12-byte header.
    pub fn encode(&self, w: &mut Writer) {
        w.u16(self.id);
        let mut flags: u16 = 0;
        if self.response {
            flags |= 1 << 15;
        }
        flags |= (self.opcode.to_u8() as u16) << 11;
        if self.authoritative {
            flags |= 1 << 10;
        }
        if self.truncated {
            flags |= 1 << 9;
        }
        if self.recursion_desired {
            flags |= 1 << 8;
        }
        if self.recursion_available {
            flags |= 1 << 7;
        }
        if self.authentic_data {
            flags |= 1 << 5;
        }
        if self.checking_disabled {
            flags |= 1 << 4;
        }
        flags |= self.rcode.to_u8() as u16;
        w.u16(flags);
        w.u16(self.qdcount);
        w.u16(self.ancount);
        w.u16(self.nscount);
        w.u16(self.arcount);
    }

    /// Decodes the 12-byte header.
    pub fn decode(r: &mut Reader<'_>) -> Result<Header> {
        let id = r.u16("header id")?;
        let flags = r.u16("header flags")?;
        let header = Header {
            id,
            response: flags & (1 << 15) != 0,
            opcode: Opcode::from_u8(((flags >> 11) & 0x0F) as u8),
            authoritative: flags & (1 << 10) != 0,
            truncated: flags & (1 << 9) != 0,
            recursion_desired: flags & (1 << 8) != 0,
            recursion_available: flags & (1 << 7) != 0,
            authentic_data: flags & (1 << 5) != 0,
            checking_disabled: flags & (1 << 4) != 0,
            rcode: Rcode::from_u8((flags & 0x0F) as u8),
            qdcount: r.u16("qdcount")?,
            ancount: r.u16("ancount")?,
            nscount: r.u16("nscount")?,
            arcount: r.u16("arcount")?,
        };
        Ok(header)
    }

    /// Guards against absurd section counts before allocating.
    pub fn validate_counts(&self, message_len: usize) -> Result<()> {
        // The smallest possible record is a root-name question: 5 bytes;
        // a count that cannot possibly fit flags a hostile message early.
        let total = self.qdcount as usize
            + self.ancount as usize
            + self.nscount as usize
            + self.arcount as usize;
        if total * 5 > message_len.saturating_sub(Header::WIRE_LEN) {
            return Err(DnsError::CountMismatch { section: "total" });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(h: &Header) -> Header {
        let mut w = Writer::new();
        h.encode(&mut w);
        let buf = w.finish();
        assert_eq!(buf.len(), Header::WIRE_LEN);
        Header::decode(&mut Reader::new(&buf)).unwrap()
    }

    #[test]
    fn query_header_round_trip() {
        let h = Header::new_query(0xABCD);
        assert_eq!(round_trip(&h), h);
    }

    #[test]
    fn response_header_round_trip_with_all_flags() {
        let mut h = Header::new_response(&Header::new_query(7), Rcode::NxDomain);
        h.authoritative = true;
        h.truncated = true;
        h.authentic_data = true;
        h.checking_disabled = true;
        h.ancount = 3;
        h.nscount = 1;
        h.arcount = 2;
        assert_eq!(round_trip(&h), h);
    }

    #[test]
    fn response_echoes_id_and_rd() {
        let q = Header::new_query(42);
        let r = Header::new_response(&q, Rcode::NoError);
        assert_eq!(r.id, 42);
        assert!(r.response);
        assert!(r.recursion_desired);
        assert!(r.recursion_available);
    }

    #[test]
    fn opcode_and_rcode_round_trip_all_values() {
        for v in 0..16u8 {
            assert_eq!(Opcode::from_u8(v).to_u8(), v);
            assert_eq!(Rcode::from_u8(v).to_u8(), v);
        }
    }

    #[test]
    fn truncated_header_is_an_error() {
        let buf = [0u8; 11];
        assert!(Header::decode(&mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn qr_bit_distinguishes_query_from_response() {
        let q = Header::new_query(1);
        let mut w = Writer::new();
        q.encode(&mut w);
        let buf = w.finish();
        assert_eq!(buf[2] & 0x80, 0);
        let r = Header::new_response(&q, Rcode::NoError);
        let mut w2 = Writer::new();
        r.encode(&mut w2);
        assert_eq!(w2.finish()[2] & 0x80, 0x80);
    }
}
