//! Low-level bounds-checked cursor primitives shared by the codecs.

use crate::error::{DnsError, Result};

/// A bounds-checked reader over a DNS message buffer.
///
/// Unlike a plain slice cursor, the reader keeps the *whole* message
/// available so that compression pointers can jump backwards.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current offset from the start of the message.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Repositions the reader; used when following compression pointers.
    pub fn seek(&mut self, pos: usize) -> Result<()> {
        if pos > self.buf.len() {
            return Err(DnsError::BadPointer(pos));
        }
        self.pos = pos;
        Ok(())
    }

    /// Bytes remaining after the cursor.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor has consumed the entire buffer.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// The full underlying message buffer.
    pub fn message(&self) -> &'a [u8] {
        self.buf
    }

    /// Reads one octet.
    pub fn u8(&mut self, context: &'static str) -> Result<u8> {
        if self.pos >= self.buf.len() {
            return Err(DnsError::Truncated { context });
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(b)
    }

    /// Reads a big-endian `u16`.
    pub fn u16(&mut self, context: &'static str) -> Result<u16> {
        let hi = self.u8(context)?;
        let lo = self.u8(context)?;
        Ok(u16::from_be_bytes([hi, lo]))
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32> {
        let a = self.u8(context)?;
        let b = self.u8(context)?;
        let c = self.u8(context)?;
        let d = self.u8(context)?;
        Ok(u32::from_be_bytes([a, b, c, d]))
    }

    /// Reads exactly `n` bytes.
    pub fn bytes(&mut self, n: usize, context: &'static str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(DnsError::Truncated { context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

/// An append-only writer that tracks name-compression targets.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
    /// (encoded name suffix, offset) pairs usable as compression targets.
    name_offsets: Vec<(Vec<String>, usize)>,
    /// When `false`, names are written without compression pointers.
    compress: bool,
}

impl Writer {
    /// Creates a writer with name compression enabled (the normal mode).
    pub fn new() -> Self {
        Writer { buf: Vec::with_capacity(512), name_offsets: Vec::new(), compress: true }
    }

    /// Creates a writer that never emits compression pointers.
    pub fn uncompressed() -> Self {
        Writer { compress: false, ..Writer::new() }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether compression pointers may be emitted.
    pub fn compression_enabled(&self) -> bool {
        self.compress
    }

    /// Consumes the writer, returning the finished buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one octet.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Overwrites the big-endian `u16` at `offset` (used for RDLENGTH
    /// back-patching after the RDATA is known).
    pub fn patch_u16(&mut self, offset: usize, v: u16) {
        self.buf[offset..offset + 2].copy_from_slice(&v.to_be_bytes());
    }

    /// Looks up a previously written name suffix equal to `labels`.
    ///
    /// Returns the message offset of that suffix if it is addressable by a
    /// 14-bit compression pointer. A 14-bit pointer encodes offsets
    /// `0..=0x3FFF`, so `0x3FFF` itself is a valid target.
    pub fn find_suffix(&self, labels: &[String]) -> Option<usize> {
        if !self.compress {
            return None;
        }
        self.name_offsets
            .iter()
            .find(|(suffix, off)| suffix == labels && *off < 0x4000)
            .map(|(_, off)| *off)
    }

    /// Registers `labels` as a compression target starting at `offset`.
    /// Offsets past `0x3FFF` are unreachable by a 14-bit pointer and are
    /// silently discarded.
    pub fn register_suffix(&mut self, labels: Vec<String>, offset: usize) {
        if self.compress && offset < 0x4000 {
            self.name_offsets.push((labels, offset));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_scalars_round_trip() {
        let mut w = Writer::new();
        w.u8(0xAB);
        w.u16(0xBEEF);
        w.u32(0xDEADBEEF);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8("t").unwrap(), 0xAB);
        assert_eq!(r.u16("t").unwrap(), 0xBEEF);
        assert_eq!(r.u32("t").unwrap(), 0xDEADBEEF);
        assert!(r.is_empty());
    }

    #[test]
    fn reader_truncation_is_an_error_not_a_panic() {
        let buf = [0x01u8];
        let mut r = Reader::new(&buf);
        assert!(r.u16("short").is_err());
        let mut r2 = Reader::new(&buf);
        assert!(r2.bytes(2, "short").is_err());
    }

    #[test]
    fn seek_past_end_is_rejected() {
        let buf = [0u8; 4];
        let mut r = Reader::new(&buf);
        assert!(r.seek(5).is_err());
        assert!(r.seek(4).is_ok());
    }

    #[test]
    fn patch_u16_overwrites_in_place() {
        let mut w = Writer::new();
        w.u16(0);
        w.u8(7);
        w.patch_u16(0, 0x0102);
        assert_eq!(w.finish(), vec![1, 2, 7]);
    }

    #[test]
    fn suffix_registry_finds_exact_suffix_only() {
        let mut w = Writer::new();
        w.register_suffix(vec!["example".into(), "com".into()], 12);
        assert_eq!(w.find_suffix(&["example".into(), "com".into()]), Some(12));
        assert_eq!(w.find_suffix(&["com".into()]), None);
    }

    #[test]
    fn suffix_at_exactly_0x3fff_is_a_valid_pointer_target() {
        // A 14-bit pointer addresses offsets 0..=0x3FFF; the boundary
        // offset itself must be registered and found (regression: the guard
        // used to be `< 0x3FFF`, rejecting the last addressable offset).
        let mut w = Writer::new();
        w.register_suffix(vec!["example".into(), "com".into()], 0x3FFF);
        assert_eq!(w.find_suffix(&["example".into(), "com".into()]), Some(0x3FFF));
        // One past the boundary is genuinely unreachable.
        let mut w2 = Writer::new();
        w2.register_suffix(vec!["example".into(), "com".into()], 0x4000);
        assert_eq!(w2.find_suffix(&["example".into(), "com".into()]), None);
    }

    #[test]
    fn uncompressed_writer_never_offers_suffixes() {
        let mut w = Writer::uncompressed();
        w.register_suffix(vec!["com".into()], 12);
        assert_eq!(w.find_suffix(&["com".into()]), None);
    }
}
