//! Complete DNS messages: header + question/answer/authority/additional.

use crate::error::{DnsError, Result};
use crate::header::{Header, Rcode};
use crate::name::Name;
use crate::rdata::Rdata;
use crate::record::{Record, RecordClass, RecordType};
use crate::wire::{Reader, Writer};

/// One entry of the question section (RFC 1035 §4.1.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// Queried name.
    pub name: Name,
    /// Queried type.
    pub qtype: RecordType,
    /// Queried class.
    pub qclass: RecordClass,
}

impl Question {
    /// An `IN`-class question.
    pub fn new(name: Name, qtype: RecordType) -> Question {
        Question { name, qtype, qclass: RecordClass::In }
    }

    fn encode(&self, w: &mut Writer) {
        self.name.encode(w);
        w.u16(self.qtype.to_u16());
        w.u16(self.qclass.to_u16());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Question> {
        Ok(Question {
            name: Name::decode(r)?,
            qtype: RecordType::from_u16(r.u16("question type")?),
            qclass: RecordClass::from_u16(r.u16("question class")?),
        })
    }
}

/// A full DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Message header. Counts are recomputed on encode.
    pub header: Header,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section.
    pub authorities: Vec<Record>,
    /// Additional section (including the EDNS0 OPT pseudo-record).
    pub additionals: Vec<Record>,
}

impl Message {
    /// Builds a standard recursive query for `name`/`qtype`.
    pub fn query(id: u16, name: &Name, qtype: RecordType) -> Message {
        Message {
            header: Header::new_query(id),
            questions: vec![Question::new(name.clone(), qtype)],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Builds a response to `query` carrying `answers`.
    pub fn response(query: &Message, rcode: Rcode, answers: Vec<Record>) -> Message {
        Message {
            header: Header::new_response(&query.header, rcode),
            questions: query.questions.clone(),
            answers,
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Convenience: a response answering the first question with a single A
    /// record pointing at `addr` — the fixed-answer resolver of the paper's
    /// §3 controlled experiment.
    pub fn fixed_a_response(query: &Message, addr: std::net::Ipv4Addr, ttl: u32) -> Message {
        let answers = query
            .questions
            .first()
            .map(|q| vec![Record::new(q.name.clone(), ttl, Rdata::A(addr))])
            .unwrap_or_default();
        Message::response(query, Rcode::NoError, answers)
    }

    /// Appends an EDNS0 OPT record advertising `udp_payload_size`.
    pub fn with_edns0(mut self, udp_payload_size: u16) -> Message {
        self.additionals.push(Record {
            name: Name::root(),
            class: RecordClass::Other(udp_payload_size),
            ttl: 0,
            rdata: Rdata::Opt(Vec::new()),
        });
        self
    }

    /// The first question, if any.
    pub fn question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// Encodes the message with name compression.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_with(Writer::new())
    }

    /// Encodes the message without name compression (for measuring how much
    /// compression saves — an ablation knob).
    pub fn encode_uncompressed(&self) -> Vec<u8> {
        self.encode_with(Writer::uncompressed())
    }

    fn encode_with(&self, mut w: Writer) -> Vec<u8> {
        let mut header = self.header.clone();
        header.qdcount = self.questions.len() as u16;
        header.ancount = self.answers.len() as u16;
        header.nscount = self.authorities.len() as u16;
        header.arcount = self.additionals.len() as u16;
        header.encode(&mut w);
        for q in &self.questions {
            q.encode(&mut w);
        }
        for rec in self.answers.iter().chain(&self.authorities).chain(&self.additionals) {
            rec.encode(&mut w);
        }
        w.finish()
    }

    /// Decodes a message, requiring the entire buffer to be consumed.
    pub fn decode(buf: &[u8]) -> Result<Message> {
        let mut r = Reader::new(buf);
        let msg = Self::decode_from(&mut r)?;
        if !r.is_empty() {
            return Err(DnsError::TrailingBytes(r.remaining()));
        }
        Ok(msg)
    }

    /// Decodes a message from the reader's position, leaving trailing bytes.
    pub fn decode_from(r: &mut Reader<'_>) -> Result<Message> {
        let header = Header::decode(r)?;
        header.validate_counts(r.message().len())?;
        let mut questions = Vec::with_capacity(header.qdcount as usize);
        for _ in 0..header.qdcount {
            questions.push(Question::decode(r)?);
        }
        let mut decode_section = |count: u16| -> Result<Vec<Record>> {
            let mut recs = Vec::with_capacity(count as usize);
            for _ in 0..count {
                recs.push(Record::decode(r)?);
            }
            Ok(recs)
        };
        let answers = decode_section(header.ancount)?;
        let authorities = decode_section(header.nscount)?;
        let additionals = decode_section(header.arcount)?;
        Ok(Message { header, questions, answers, authorities, additionals })
    }

    /// Encoded size in bytes (with compression).
    pub fn wire_len(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn example_query() -> Message {
        Message::query(0x1234, &Name::parse("www.example.com").unwrap(), RecordType::A)
    }

    #[test]
    fn query_round_trip() {
        let q = example_query();
        let wire = q.encode();
        let back = Message::decode(&wire).unwrap();
        assert_eq!(back.header.id, 0x1234);
        assert_eq!(back.questions, q.questions);
        assert!(!back.header.response);
    }

    #[test]
    fn typical_query_size_matches_hand_count() {
        // header 12 + name (www.example.com. = 17) + type 2 + class 2 = 33
        let q = example_query();
        assert_eq!(q.wire_len(), 33);
    }

    #[test]
    fn response_round_trip_with_all_sections() {
        let q = example_query();
        let mut resp = Message::fixed_a_response(&q, Ipv4Addr::new(192, 0, 2, 1), 60);
        resp.authorities.push(Record::new(
            Name::parse("example.com").unwrap(),
            3600,
            Rdata::Ns(Name::parse("ns1.example.com").unwrap()),
        ));
        resp = resp.with_edns0(4096);
        let wire = resp.encode();
        let back = Message::decode(&wire).unwrap();
        assert_eq!(back.header.ancount, 1);
        assert_eq!(back.header.nscount, 1);
        assert_eq!(back.header.arcount, 1);
        assert_eq!(back.answers[0].rdata, Rdata::A(Ipv4Addr::new(192, 0, 2, 1)));
        assert!(back.header.response);
    }

    #[test]
    fn compression_shrinks_responses() {
        let q = example_query();
        let resp = Message::fixed_a_response(&q, Ipv4Addr::new(192, 0, 2, 1), 60);
        let compressed = resp.encode();
        let plain = resp.encode_uncompressed();
        // Answer owner name repeats the question name: a pointer saves
        // wire_len(name) - 2 bytes.
        assert_eq!(plain.len() - compressed.len(), 17 - 2);
        assert_eq!(Message::decode(&compressed).unwrap(), Message::decode(&plain).unwrap());
    }

    #[test]
    fn counts_are_recomputed_on_encode() {
        let mut q = example_query();
        q.header.qdcount = 99; // lie in the header
        let back = Message::decode(&q.encode()).unwrap();
        assert_eq!(back.header.qdcount, 1);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut wire = example_query().encode();
        wire.push(0);
        assert!(matches!(Message::decode(&wire), Err(DnsError::TrailingBytes(1))));
    }

    #[test]
    fn count_beyond_content_is_an_error() {
        let mut wire = example_query().encode();
        // Claim 4 questions where there is 1.
        wire[4] = 0;
        wire[5] = 4;
        assert!(Message::decode(&wire).is_err());
    }

    #[test]
    fn fixed_a_response_answers_the_question_name() {
        let q = Message::query(9, &Name::parse("abcde.dohmark.test").unwrap(), RecordType::A);
        let r = Message::fixed_a_response(&q, Ipv4Addr::new(10, 0, 0, 1), 1);
        assert_eq!(r.answers[0].name, q.questions[0].name);
        assert_eq!(r.header.id, 9);
    }

    #[test]
    fn empty_message_decode_fails() {
        assert!(Message::decode(&[]).is_err());
    }

    #[test]
    fn decode_from_leaves_trailing_data() {
        let mut wire = example_query().encode();
        let orig_len = wire.len();
        wire.extend_from_slice(&[9, 9, 9]);
        let mut r = Reader::new(&wire);
        let msg = Message::decode_from(&mut r).unwrap();
        assert_eq!(msg.questions.len(), 1);
        assert_eq!(r.position(), orig_len);
        assert_eq!(r.remaining(), 3);
    }
}
