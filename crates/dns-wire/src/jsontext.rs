//! A minimal JSON text codec, implemented in-tree.
//!
//! The workspace must build on offline machines with an empty registry
//! cache, so it cannot depend on `serde`/`serde_json`. This module supplies
//! the small subset of JSON the `application/dns-json` codec ([`crate::json`])
//! needs: a parsed [`JsonValue`] tree, a recursive-descent parser, and
//! string escaping for the writer side.
//!
//! Objects preserve insertion order (they are association lists, not maps),
//! which keeps serialisation deterministic and matches how the deployed
//! Google/Cloudflare APIs present their fields.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like JavaScript).
    Number(f64),
    /// A string, already unescaped.
    String(String),
    /// An array of values.
    Array(Vec<JsonValue>),
    /// An object as an ordered list of key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is an integral number.
    ///
    /// Numbers are stored as `f64`, so integers above 2^53 have already
    /// lost precision at parse time; values at or past 2^64 are rejected.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // `u64::MAX as f64` rounds up to 2^64 exactly, so the
            // comparison must be strict to reject out-of-range values.
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n < u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<JsonValue, JsonParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

/// Appends `s` to `out` as a JSON string literal, with escaping.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nesting depth guard: DNS JSON is three levels deep; anything past this
/// is hostile input.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar (input is valid UTF-8:
                    // it came from a &str).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        // from_str_radix tolerates a leading '+', so check digits directly.
        if !self.bytes[self.pos..end].iter().all(u8::is_ascii_hexdigit) {
            return Err(self.err("bad \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    /// Decodes `XXXX` (and a following low surrogate, if needed) after `\u`.
    fn unicode_escape(&mut self) -> Result<char, JsonParseError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: a `\uXXXX` low surrogate must follow.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("bad surrogate pair"));
                }
            }
            Err(self.err("unpaired surrogate"))
        } else if (0xDC00..0xE000).contains(&hi) {
            Err(self.err("unpaired surrogate"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("bad \\u escape"))
        }
    }

    /// Consumes a digit run, erroring if there is not at least one digit.
    fn digits(&mut self, context: &str) -> Result<(), JsonParseError> {
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.err(context));
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        Ok(())
    }

    /// Parses a number per the RFC 8259 grammar: no leading zeros, and a
    /// fraction or exponent must contain digits.
    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: "0" or a nonzero digit followed by more digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            _ => self.digits("expected digits in number")?,
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.digits("expected digits after decimal point")?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits("expected digits in exponent")?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| JsonParseError { offset: start, message: "bad number".to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap(), JsonValue::Number(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), JsonValue::Number(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), JsonValue::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures_in_order() {
        let v = parse(r#"{"b": [1, {"c": null}], "a": "x"}"#).unwrap();
        let JsonValue::Object(pairs) = &v else { panic!("not an object") };
        assert_eq!(pairs[0].0, "b");
        assert_eq!(pairs[1].0, "a");
        let arr = v.get("b").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("c"), Some(&JsonValue::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        for original in ["plain", "q\"uote", "back\\slash", "tab\there", "new\nline", "uni\u{263A}"]
        {
            let mut text = String::new();
            write_escaped(&mut text, original);
            assert_eq!(parse(&text).unwrap().as_str(), Some(original));
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse(r#""A""#).unwrap().as_str(), Some("A"));
        // An escaped surrogate pair and the literal character: both U+1F600.
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap().as_str(), Some("\u{1F600}"));
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("\u{1F600}"));
        assert_eq!(parse("\"\u{1F600}\"").unwrap().as_str(), Some("\u{1F600}"));
        assert!(parse(r#""\ud83d""#).is_err(), "unpaired high surrogate");
        // from_str_radix quirks must not leak: '+' is not a hex digit.
        assert!(parse(r#""\u+041""#).is_err());
        assert!(parse(r#""\u004""#).is_err());
    }

    #[test]
    fn surrogate_pair_edge_cases() {
        // The writer emits supplementary-plane characters literally; the
        // parser accepts both the literal and the escaped-pair spelling.
        let mut text = String::new();
        write_escaped(&mut text, "😀");
        assert_eq!(text, "\"😀\"");
        assert_eq!(parse(&text).unwrap().as_str(), Some("😀"));
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        // The extremes of the surrogate-addressable range.
        assert_eq!(parse(r#""𐀀""#).unwrap().as_str(), Some("\u{10000}"));
        assert_eq!(parse(r#""􏿿""#).unwrap().as_str(), Some("\u{10FFFF}"));
        // Lone or mismatched surrogates are unrepresentable in UTF-8 and
        // must be rejected, not replaced.
        for bad in [
            r#""\ud83d""#,       // lone high, end of string
            r#""\ud83dx""#,      // lone high, literal follows
            r#""\ud83d\u0041""#, // high + non-surrogate escape
            r#""\ud83d\ud83d""#, // high + high
            r#""\udc00""#,       // lone low
            r#""\ude00\ud83d""#, // pair in the wrong order
            r#""\ud83d\ud""#,    // truncated second escape
        ] {
            assert!(parse(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in
            ["", "{", "{\"a\"}", "[1,]", "{\"a\":1,}", "tru", "1 2", "\"unterminated", "{\"a\": }"]
        {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn number_grammar_is_rfc8259_strict() {
        // Leading zeros, bare decimal points and empty exponents are all
        // invalid JSON even though f64::parse would accept some of them.
        for bad in ["01", "-01", "1.", "-.5", ".5", "1.e3", "1e", "1e+", "-", "[01]"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        for good in ["0", "-0", "0.5", "-0.5", "10", "1e3", "1E-2", "1.25e+2"] {
            assert!(parse(good).is_ok(), "rejected {good:?}");
        }
    }

    #[test]
    fn as_u64_rejects_non_integers() {
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-2").unwrap().as_u64(), None);
        assert_eq!(parse("300").unwrap().as_u64(), Some(300));
        assert_eq!(parse("\"300\"").unwrap().as_u64(), None);
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }
}
