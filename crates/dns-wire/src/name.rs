//! Domain names: parsing, wire encoding with RFC 1035 compression, decoding.

use crate::error::{DnsError, Result};
use crate::wire::{Reader, Writer};
use std::fmt;

/// Maximum length of a single label, per RFC 1035 §2.3.4.
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum length of a name on the wire, per RFC 1035 §2.3.4.
pub const MAX_NAME_LEN: usize = 255;

/// A fully-qualified domain name.
///
/// Stored as a sequence of lowercase labels; comparison is therefore
/// case-insensitive as required by RFC 1035 §2.3.3. The root name has zero
/// labels.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name {
    labels: Vec<String>,
}

impl Name {
    /// The DNS root (`.`).
    pub fn root() -> Self {
        Name { labels: Vec::new() }
    }

    /// Parses a presentation-format name such as `"www.example.com."`.
    ///
    /// A trailing dot is optional. Labels are validated for length and
    /// restricted to LDH (letters, digits, hyphen) plus underscore, which
    /// appears in real query traffic (e.g. `_dmarc`, service records).
    pub fn parse(s: &str) -> Result<Self> {
        if s == "." || s.is_empty() {
            return Ok(Name::root());
        }
        let trimmed = s.strip_suffix('.').unwrap_or(s);
        let mut labels = Vec::new();
        for label in trimmed.split('.') {
            Self::validate_label(label)?;
            labels.push(label.to_ascii_lowercase());
        }
        let name = Name { labels };
        let wire_len = name.wire_len();
        if wire_len > MAX_NAME_LEN {
            return Err(DnsError::NameTooLong(wire_len));
        }
        Ok(name)
    }

    fn validate_label(label: &str) -> Result<()> {
        if label.is_empty() {
            return Err(DnsError::InvalidLabel(b'.'));
        }
        if label.len() > MAX_LABEL_LEN {
            return Err(DnsError::LabelTooLong(label.len()));
        }
        for &b in label.as_bytes() {
            let ok = b.is_ascii_alphanumeric() || b == b'-' || b == b'_';
            if !ok {
                return Err(DnsError::InvalidLabel(b));
            }
        }
        Ok(())
    }

    /// Builds a name from pre-validated label strings.
    pub fn from_labels<I, S>(iter: I) -> Result<Self>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut labels = Vec::new();
        for l in iter {
            Self::validate_label(l.as_ref())?;
            labels.push(l.as_ref().to_ascii_lowercase());
        }
        let name = Name { labels };
        if name.wire_len() > MAX_NAME_LEN {
            return Err(DnsError::NameTooLong(name.wire_len()));
        }
        Ok(name)
    }

    /// The labels, left-to-right (`www`, `example`, `com`).
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Whether this is the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Creates a child name `label.self`.
    pub fn child(&self, label: &str) -> Result<Name> {
        Self::validate_label(label)?;
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(label.to_ascii_lowercase());
        labels.extend(self.labels.iter().cloned());
        let name = Name { labels };
        if name.wire_len() > MAX_NAME_LEN {
            return Err(DnsError::NameTooLong(name.wire_len()));
        }
        Ok(name)
    }

    /// The parent name (strips the leftmost label); `None` for the root.
    pub fn parent(&self) -> Option<Name> {
        if self.labels.is_empty() {
            None
        } else {
            Some(Name { labels: self.labels[1..].to_vec() })
        }
    }

    /// Whether `self` equals `other` or is a subdomain of it.
    pub fn is_subdomain_of(&self, other: &Name) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - other.labels.len();
        self.labels[offset..] == other.labels[..]
    }

    /// Uncompressed wire length: each label costs `1 + len`, plus the root
    /// octet.
    pub fn wire_len(&self) -> usize {
        1 + self.labels.iter().map(|l| 1 + l.len()).sum::<usize>()
    }

    /// Encodes the name, emitting a compression pointer when the writer has
    /// already encoded a matching suffix (RFC 1035 §4.1.4).
    pub fn encode(&self, w: &mut Writer) {
        // Walk suffixes from the full name down; the longest previously
        // written suffix wins.
        let mut idx = 0;
        while idx < self.labels.len() {
            let suffix = self.labels[idx..].to_vec();
            if let Some(off) = w.find_suffix(&suffix) {
                w.u16(0xC000 | off as u16);
                return;
            }
            // Not yet known: write this label and register the suffix that
            // starts here for future messages.
            w.register_suffix(suffix, w.len());
            let label = &self.labels[idx];
            w.u8(label.len() as u8);
            w.bytes(label.as_bytes());
            idx += 1;
        }
        w.u8(0); // root
    }

    /// Decodes a (possibly compressed) name at the reader's position.
    ///
    /// Pointers must point strictly backwards; loops and forward pointers
    /// are rejected.
    pub fn decode(r: &mut Reader<'_>) -> Result<Name> {
        let mut labels = Vec::new();
        // Wire length starts at 1 for the terminal root octet.
        let mut wire_len = 1usize;
        // Position to restore once the first pointer is followed.
        let mut resume: Option<usize> = None;
        // Strictly decreasing pointer targets prevent loops.
        let mut min_ptr = r.position();

        loop {
            let len = r.u8("name label length")?;
            match len & 0xC0 {
                0x00 => {
                    if len == 0 {
                        break;
                    }
                    let raw = r.bytes(len as usize, "name label")?;
                    let mut label = String::with_capacity(len as usize);
                    for &b in raw {
                        if !(b.is_ascii_alphanumeric() || b == b'-' || b == b'_') {
                            return Err(DnsError::InvalidLabel(b));
                        }
                        label.push(b.to_ascii_lowercase() as char);
                    }
                    wire_len += 1 + label.len();
                    if wire_len > MAX_NAME_LEN {
                        return Err(DnsError::NameTooLong(wire_len));
                    }
                    labels.push(label);
                }
                0xC0 => {
                    let lo = r.u8("compression pointer")?;
                    let target = (((len & 0x3F) as usize) << 8) | lo as usize;
                    if target >= min_ptr {
                        return Err(DnsError::BadPointer(target));
                    }
                    if resume.is_none() {
                        resume = Some(r.position());
                    }
                    min_ptr = target;
                    r.seek(target)?;
                }
                other => return Err(DnsError::BadLabelType(other)),
            }
        }

        if let Some(pos) = resume {
            r.seek(pos)?;
        }
        Ok(Name { labels })
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        for label in &self.labels {
            write!(f, "{label}.")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Name {
    type Err = DnsError;

    fn from_str(s: &str) -> Result<Self> {
        Name::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode_one(name: &Name) -> Vec<u8> {
        let mut w = Writer::new();
        name.encode(&mut w);
        w.finish()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["example.com.", "www.example.com.", "a.b.c.d.e.", "xn--nxasmq6b.example."] {
            let n = Name::parse(s).unwrap();
            assert_eq!(n.to_string(), s);
        }
    }

    #[test]
    fn trailing_dot_is_optional() {
        assert_eq!(Name::parse("example.com").unwrap(), Name::parse("example.com.").unwrap());
    }

    #[test]
    fn names_compare_case_insensitively() {
        assert_eq!(Name::parse("EXAMPLE.Com").unwrap(), Name::parse("example.com").unwrap());
    }

    #[test]
    fn root_name() {
        let root = Name::parse(".").unwrap();
        assert!(root.is_root());
        assert_eq!(root.wire_len(), 1);
        assert_eq!(encode_one(&root), vec![0]);
    }

    #[test]
    fn simple_encoding_matches_rfc_layout() {
        let n = Name::parse("example.com").unwrap();
        let wire = encode_one(&n);
        assert_eq!(wire, [b"\x07example\x03com\x00".as_ref()].concat(),);
        assert_eq!(wire.len(), n.wire_len());
    }

    #[test]
    fn wire_round_trip() {
        let n = Name::parse("www.sub.example.co.uk").unwrap();
        let wire = encode_one(&n);
        let mut r = Reader::new(&wire);
        assert_eq!(Name::decode(&mut r).unwrap(), n);
        assert!(r.is_empty());
    }

    #[test]
    fn second_name_is_compressed_to_a_pointer() {
        let a = Name::parse("example.com").unwrap();
        let b = Name::parse("www.example.com").unwrap();
        let mut w = Writer::new();
        a.encode(&mut w);
        let after_first = w.len();
        b.encode(&mut w);
        let wire = w.finish();
        // Second name = 1+3 ("www") + 2 (pointer) bytes.
        assert_eq!(wire.len(), after_first + 4 + 2);
        let mut r = Reader::new(&wire);
        assert_eq!(Name::decode(&mut r).unwrap(), a);
        assert_eq!(Name::decode(&mut r).unwrap(), b);
    }

    #[test]
    fn identical_name_compresses_to_bare_pointer() {
        let a = Name::parse("example.com").unwrap();
        let mut w = Writer::new();
        a.encode(&mut w);
        let first = w.len();
        a.encode(&mut w);
        let wire = w.finish();
        assert_eq!(wire.len(), first + 2);
        let mut r = Reader::new(&wire);
        assert_eq!(Name::decode(&mut r).unwrap(), a);
        assert_eq!(Name::decode(&mut r).unwrap(), a);
    }

    #[test]
    fn name_at_offset_0x3fff_compresses_to_a_pointer() {
        // Place a name so its first label starts at exactly 0x3FFF — the
        // last offset a 14-bit pointer can address — and check a later
        // occurrence compresses to a pointer there and decodes back.
        let name = Name::parse("edge.example.com").unwrap();
        let mut w = Writer::new();
        w.bytes(&vec![0u8; 0x3FFF]);
        name.encode(&mut w);
        let first_len = w.len();
        assert_eq!(first_len, 0x3FFF + name.wire_len());
        name.encode(&mut w);
        let wire = w.finish();
        // Second occurrence is a bare 2-byte pointer: 0xC000 | 0x3FFF.
        assert_eq!(wire.len(), first_len + 2);
        assert_eq!(&wire[first_len..], &[0xFF, 0xFF]);
        let mut r = Reader::new(&wire);
        r.seek(first_len).unwrap();
        assert_eq!(Name::decode(&mut r).unwrap(), name);
    }

    #[test]
    fn name_past_offset_0x3fff_is_not_compressed() {
        // One byte further and the suffix is out of pointer range: the
        // writer must fall back to the full encoding, never a bogus pointer.
        let name = Name::parse("far.example.com").unwrap();
        let mut w = Writer::new();
        w.bytes(&vec![0u8; 0x4000]);
        name.encode(&mut w);
        let first_len = w.len();
        name.encode(&mut w);
        let wire = w.finish();
        assert_eq!(wire.len(), first_len + name.wire_len());
        let mut r = Reader::new(&wire);
        r.seek(first_len).unwrap();
        assert_eq!(Name::decode(&mut r).unwrap(), name);
    }

    #[test]
    fn uncompressed_writer_repeats_full_name() {
        let a = Name::parse("example.com").unwrap();
        let mut w = Writer::uncompressed();
        a.encode(&mut w);
        a.encode(&mut w);
        assert_eq!(w.finish().len(), 2 * a.wire_len());
    }

    #[test]
    fn pointer_loop_is_rejected() {
        // A name that immediately points at itself.
        let wire = [0xC0, 0x00];
        let mut r = Reader::new(&wire);
        assert!(matches!(Name::decode(&mut r), Err(DnsError::BadPointer(_))));
    }

    #[test]
    fn forward_pointer_is_rejected() {
        let wire = [0xC0, 0x04, 0, 0, 0x03, b'c', b'o', b'm', 0x00];
        let mut r = Reader::new(&wire);
        assert!(matches!(Name::decode(&mut r), Err(DnsError::BadPointer(4))));
    }

    #[test]
    fn long_label_is_rejected() {
        let label = "a".repeat(64);
        assert!(matches!(Name::parse(&label), Err(DnsError::LabelTooLong(64))));
    }

    #[test]
    fn overlong_name_is_rejected() {
        let label = "a".repeat(63);
        let name = format!("{label}.{label}.{label}.{label}.x");
        assert!(matches!(Name::parse(&name), Err(DnsError::NameTooLong(_))));
    }

    #[test]
    fn empty_label_is_rejected() {
        assert!(Name::parse("a..b").is_err());
    }

    #[test]
    fn bad_characters_are_rejected() {
        assert!(Name::parse("exa mple.com").is_err());
        assert!(Name::parse("exa\u{e9}mple.com").is_err());
    }

    #[test]
    fn subdomain_relation() {
        let com = Name::parse("com").unwrap();
        let ex = Name::parse("example.com").unwrap();
        let www = Name::parse("www.example.com").unwrap();
        assert!(www.is_subdomain_of(&ex));
        assert!(www.is_subdomain_of(&com));
        assert!(ex.is_subdomain_of(&ex));
        assert!(!ex.is_subdomain_of(&www));
        assert!(www.is_subdomain_of(&Name::root()));
    }

    #[test]
    fn child_and_parent() {
        let ex = Name::parse("example.com").unwrap();
        let www = ex.child("www").unwrap();
        assert_eq!(www.to_string(), "www.example.com.");
        assert_eq!(www.parent().unwrap(), ex);
        assert!(Name::root().parent().is_none());
    }

    #[test]
    fn bad_label_type_bits_rejected() {
        // 0x40 and 0x80 top bits are reserved/unsupported.
        let wire = [0x40, 0x00];
        let mut r = Reader::new(&wire);
        assert!(matches!(Name::decode(&mut r), Err(DnsError::BadLabelType(0x40))));
    }

    #[test]
    fn truncated_label_is_an_error() {
        let wire = [0x05, b'a', b'b'];
        let mut r = Reader::new(&wire);
        assert!(matches!(Name::decode(&mut r), Err(DnsError::Truncated { .. })));
    }
}
