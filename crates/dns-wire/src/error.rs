//! Error type shared by all DNS codecs.

use std::fmt;

/// Errors raised while encoding or decoding DNS data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnsError {
    /// The input ended before a complete field could be read.
    Truncated {
        /// What was being read when the input ran out.
        context: &'static str,
    },
    /// A domain-name label exceeded 63 octets.
    LabelTooLong(usize),
    /// A domain name exceeded 255 octets on the wire.
    NameTooLong(usize),
    /// A label contained a byte that is not permitted.
    InvalidLabel(u8),
    /// A compression pointer pointed forward or formed a loop.
    BadPointer(usize),
    /// An unknown or unsupported label type (upper bits `10` or `01`).
    BadLabelType(u8),
    /// A count field promised more items than the message contains.
    CountMismatch {
        /// The section whose count was wrong.
        section: &'static str,
    },
    /// RDATA length did not match the encoded RDATA.
    RdataLength {
        /// Expected length from the RDLENGTH field.
        expected: usize,
        /// Length actually consumed.
        actual: usize,
    },
    /// A field held a value outside its legal range.
    InvalidValue {
        /// Which field.
        field: &'static str,
        /// The offending value.
        value: u64,
    },
    /// Trailing bytes after the final record.
    TrailingBytes(usize),
    /// A JSON document did not describe a valid DNS message.
    Json(String),
}

impl fmt::Display for DnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnsError::Truncated { context } => {
                write!(f, "input truncated while reading {context}")
            }
            DnsError::LabelTooLong(n) => write!(f, "label of {n} octets exceeds 63"),
            DnsError::NameTooLong(n) => write!(f, "name of {n} octets exceeds 255"),
            DnsError::InvalidLabel(b) => write!(f, "invalid byte {b:#04x} in label"),
            DnsError::BadPointer(off) => write!(f, "bad compression pointer to offset {off}"),
            DnsError::BadLabelType(b) => write!(f, "unsupported label type bits {b:#04x}"),
            DnsError::CountMismatch { section } => {
                write!(f, "{section} count exceeds records present")
            }
            DnsError::RdataLength { expected, actual } => {
                write!(f, "rdata length mismatch: rdlength {expected}, consumed {actual}")
            }
            DnsError::InvalidValue { field, value } => {
                write!(f, "value {value} out of range for {field}")
            }
            DnsError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            DnsError::Json(msg) => write!(f, "invalid dns-json: {msg}"),
        }
    }
}

impl std::error::Error for DnsError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, DnsError>;
