//! Resource records, record types and classes (RFC 1035 §3.2, §4.1.3).

use crate::error::{DnsError, Result};
use crate::name::Name;
use crate::rdata::Rdata;
use crate::wire::{Reader, Writer};
use std::fmt;

/// DNS record types relevant to the study's traffic mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RecordType {
    /// IPv4 address.
    A,
    /// Authoritative name server.
    Ns,
    /// Canonical name (alias) — ubiquitous in CDN redirection.
    Cname,
    /// Start of authority.
    Soa,
    /// Domain name pointer (reverse DNS).
    Ptr,
    /// Mail exchange.
    Mx,
    /// Free-form text.
    Txt,
    /// IPv6 address.
    Aaaa,
    /// Service location (RFC 2782).
    Srv,
    /// EDNS0 pseudo-record (RFC 6891).
    Opt,
    /// Certification Authority Authorization (RFC 6844) — probed in Table 2.
    Caa,
    /// HTTPS service binding (RFC 9460) — seen in modern browser traffic.
    Https,
    /// Any type not otherwise modelled.
    Unknown(u16),
}

impl RecordType {
    /// The 16-bit wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Ptr => 12,
            RecordType::Mx => 15,
            RecordType::Txt => 16,
            RecordType::Aaaa => 28,
            RecordType::Srv => 33,
            RecordType::Opt => 41,
            RecordType::Https => 65,
            RecordType::Caa => 257,
            RecordType::Unknown(v) => v,
        }
    }

    /// Decodes the 16-bit wire value.
    pub fn from_u16(v: u16) -> RecordType {
        match v {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            12 => RecordType::Ptr,
            15 => RecordType::Mx,
            16 => RecordType::Txt,
            28 => RecordType::Aaaa,
            33 => RecordType::Srv,
            41 => RecordType::Opt,
            65 => RecordType::Https,
            257 => RecordType::Caa,
            other => RecordType::Unknown(other),
        }
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RecordType::A => "A",
            RecordType::Ns => "NS",
            RecordType::Cname => "CNAME",
            RecordType::Soa => "SOA",
            RecordType::Ptr => "PTR",
            RecordType::Mx => "MX",
            RecordType::Txt => "TXT",
            RecordType::Aaaa => "AAAA",
            RecordType::Srv => "SRV",
            RecordType::Opt => "OPT",
            RecordType::Https => "HTTPS",
            RecordType::Caa => "CAA",
            RecordType::Unknown(v) => return write!(f, "TYPE{v}"),
        };
        f.write_str(s)
    }
}

/// DNS classes. Only `IN` occurs in real resolution traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordClass {
    /// The Internet class.
    In,
    /// Chaos (used for server identification queries).
    Ch,
    /// Any class not otherwise modelled (includes OPT's UDP-size reuse).
    Other(u16),
}

impl RecordClass {
    /// The 16-bit wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            RecordClass::In => 1,
            RecordClass::Ch => 3,
            RecordClass::Other(v) => v,
        }
    }

    /// Decodes the 16-bit wire value.
    pub fn from_u16(v: u16) -> RecordClass {
        match v {
            1 => RecordClass::In,
            3 => RecordClass::Ch,
            other => RecordClass::Other(other),
        }
    }
}

/// A resource record: owner name, type, class, TTL and typed RDATA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Owner name.
    pub name: Name,
    /// Class (`IN` in practice). For OPT records this field carries the
    /// requestor's UDP payload size instead.
    pub class: RecordClass,
    /// Time to live in seconds.
    pub ttl: u32,
    /// Typed record data. The record type on the wire is derived from this.
    pub rdata: Rdata,
}

impl Record {
    /// Builds an `IN`-class record.
    pub fn new(name: Name, ttl: u32, rdata: Rdata) -> Record {
        Record { name, class: RecordClass::In, ttl, rdata }
    }

    /// The wire record type implied by the RDATA.
    pub fn rtype(&self) -> RecordType {
        self.rdata.rtype()
    }

    /// Encodes the record, back-patching RDLENGTH.
    pub fn encode(&self, w: &mut Writer) {
        self.name.encode(w);
        w.u16(self.rtype().to_u16());
        w.u16(self.class.to_u16());
        w.u32(self.ttl);
        let rdlength_at = w.len();
        w.u16(0);
        let start = w.len();
        self.rdata.encode(w);
        let rdlen = w.len() - start;
        w.patch_u16(rdlength_at, rdlen as u16);
    }

    /// Decodes one record.
    pub fn decode(r: &mut Reader<'_>) -> Result<Record> {
        let name = Name::decode(r)?;
        let rtype = RecordType::from_u16(r.u16("record type")?);
        let class = RecordClass::from_u16(r.u16("record class")?);
        let ttl = r.u32("record ttl")?;
        let rdlength = r.u16("rdlength")? as usize;
        if r.remaining() < rdlength {
            return Err(DnsError::Truncated { context: "rdata" });
        }
        let start = r.position();
        let rdata = Rdata::decode(rtype, r, rdlength)?;
        let consumed = r.position() - start;
        if consumed != rdlength {
            return Err(DnsError::RdataLength { expected: rdlength, actual: consumed });
        }
        Ok(Record { name, class, ttl, rdata })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn record_type_round_trip() {
        for t in [
            RecordType::A,
            RecordType::Ns,
            RecordType::Cname,
            RecordType::Soa,
            RecordType::Ptr,
            RecordType::Mx,
            RecordType::Txt,
            RecordType::Aaaa,
            RecordType::Srv,
            RecordType::Opt,
            RecordType::Https,
            RecordType::Caa,
            RecordType::Unknown(999),
        ] {
            assert_eq!(RecordType::from_u16(t.to_u16()), t);
        }
    }

    #[test]
    fn record_class_round_trip() {
        for c in [RecordClass::In, RecordClass::Ch, RecordClass::Other(4096)] {
            assert_eq!(RecordClass::from_u16(c.to_u16()), c);
        }
    }

    #[test]
    fn a_record_encodes_with_correct_rdlength() {
        let rec = Record::new(
            Name::parse("example.com").unwrap(),
            300,
            Rdata::A(Ipv4Addr::new(93, 184, 216, 34)),
        );
        let mut w = Writer::new();
        rec.encode(&mut w);
        let wire = w.finish();
        // name(13) + type(2) + class(2) + ttl(4) + rdlength(2) + rdata(4)
        assert_eq!(wire.len(), 13 + 2 + 2 + 4 + 2 + 4);
        // RDLENGTH is the penultimate u16 before the 4 address bytes.
        assert_eq!(&wire[wire.len() - 6..wire.len() - 4], &[0, 4]);
        let back = Record::decode(&mut Reader::new(&wire)).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn display_of_types() {
        assert_eq!(RecordType::A.to_string(), "A");
        assert_eq!(RecordType::Caa.to_string(), "CAA");
        assert_eq!(RecordType::Unknown(250).to_string(), "TYPE250");
    }

    #[test]
    fn rdata_shorter_than_rdlength_is_rejected() {
        // Hand-craft: name "a." type A class IN ttl 0 rdlength 4 but only 2 bytes.
        let wire = [
            0x01, b'a', 0x00, // name
            0x00, 0x01, // type A
            0x00, 0x01, // class IN
            0, 0, 0, 0, // ttl
            0x00, 0x04, // rdlength 4
            0x01, 0x02, // truncated rdata
        ];
        assert!(Record::decode(&mut Reader::new(&wire)).is_err());
    }
}
