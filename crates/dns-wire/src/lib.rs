//! Byte-accurate DNS wireformat (RFC 1035) and `application/dns-json` codecs.
//!
//! This crate implements the DNS message format from first principles:
//! domain names with RFC 1035 pointer compression, the 12-byte header,
//! questions, resource records with typed RDATA (A, AAAA, CNAME, NS, PTR,
//! SOA, MX, TXT, SRV, CAA and EDNS0 OPT), and complete message
//! encode/decode. It also provides the JSON representation used by the
//! `application/dns-json` content type served by Google and Cloudflare,
//! which the paper's landscape survey (Table 2) probes for.
//!
//! Every byte produced by [`Message::encode`] is real wire data: the
//! overhead figures of the reproduced paper are computed over these bytes.
//!
//! # Example
//!
//! ```
//! use dohmark_dns_wire::{Message, Name, RecordType};
//!
//! let query = Message::query(0x1234, &Name::parse("example.com.").unwrap(), RecordType::A);
//! let wire = query.encode();
//! let back = Message::decode(&wire).unwrap();
//! assert_eq!(back.header.id, 0x1234);
//! assert_eq!(back.questions[0].name.to_string(), "example.com.");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod header;
pub mod json;
pub mod jsontext;
pub mod message;
pub mod name;
pub mod rdata;
pub mod record;
pub mod wire;

pub use error::{DnsError, Result};
pub use header::{Header, Opcode, Rcode};
pub use json::{JsonAnswer, JsonMessage, JsonQuestion};
pub use message::{Message, Question};
pub use name::Name;
pub use rdata::{CaaRdata, Rdata, SoaRdata, SrvRdata};
pub use record::{Record, RecordClass, RecordType};
