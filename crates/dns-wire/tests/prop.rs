//! Property-based tests for the DNS codecs.
//!
//! The workspace builds offline, so instead of `proptest` these use a small
//! in-file generator: a seeded SplitMix64 PRNG drives random message
//! construction, and every property is checked over many generated cases.
//! Failures print the offending seed so a case can be replayed exactly.

use dohmark_dns_wire::{
    rdata::{CaaRdata, Rdata, SoaRdata, SrvRdata},
    JsonMessage, Message, Name, Rcode, Record, RecordType,
};

const CASES: u64 = 256;

/// Deterministic SplitMix64 generator; tiny, unbiased enough for tests.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, one_in: u64) -> bool {
        self.below(one_in) == 0
    }

    /// A label matching `[a-z0-9_][a-z0-9_-]{0,18}`.
    fn label(&mut self) -> String {
        const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
        const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_-";
        let len = 1 + self.below(19) as usize;
        let mut s = String::with_capacity(len);
        s.push(FIRST[self.below(FIRST.len() as u64) as usize] as char);
        for _ in 1..len {
            s.push(REST[self.below(REST.len() as u64) as usize] as char);
        }
        s
    }

    /// A domain name of 1..=5 labels.
    fn name(&mut self) -> Name {
        let labels: Vec<String> = (0..1 + self.below(5)).map(|_| self.label()).collect();
        Name::from_labels(labels).expect("generated labels are valid")
    }

    /// A printable-ASCII string of up to `max` characters.
    fn printable(&mut self, max: u64) -> String {
        let len = self.below(max + 1);
        (0..len).map(|_| (0x20 + self.below(0x5F)) as u8 as char).collect()
    }

    fn rdata(&mut self) -> Rdata {
        match self.below(10) {
            0 => Rdata::A(u32::to_be_bytes(self.next() as u32).into()),
            1 => Rdata::Aaaa(
                u128::to_be_bytes((self.next() as u128) << 64 | self.next() as u128).into(),
            ),
            2 => Rdata::Cname(self.name()),
            3 => Rdata::Ns(self.name()),
            4 => Rdata::Mx { preference: self.next() as u16, exchange: self.name() },
            5 => {
                let strings = (0..self.below(3)).map(|_| self.printable(40)).collect();
                Rdata::Txt(strings)
            }
            6 => Rdata::Soa(SoaRdata {
                mname: self.name(),
                rname: self.name(),
                serial: self.next() as u32,
                refresh: self.next() as u32,
                retry: self.next() as u32,
                expire: self.next() as u32,
                minimum: self.next() as u32,
            }),
            7 => Rdata::Srv(SrvRdata {
                priority: self.next() as u16,
                weight: self.next() as u16,
                port: self.next() as u16,
                target: self.name(),
            }),
            8 => Rdata::Caa(CaaRdata {
                critical: self.chance(2),
                tag: (0..1 + self.below(10))
                    .map(|_| (b'a' + self.below(26) as u8) as char)
                    .collect(),
                value: self.printable(30),
            }),
            9 => {
                let options = (0..self.below(3))
                    .map(|_| {
                        let code = self.next() as u16;
                        let data = (0..self.below(16)).map(|_| self.next() as u8).collect();
                        (code, data)
                    })
                    .collect();
                Rdata::Opt(options)
            }
            _ => unreachable!(),
        }
    }

    fn record(&mut self) -> Record {
        let name = self.name();
        let ttl = self.next() as u32;
        let rdata = self.rdata();
        Record::new(name, ttl, rdata)
    }

    fn records(&mut self, max: u64) -> Vec<Record> {
        (0..self.below(max + 1)).map(|_| self.record()).collect()
    }

    fn message(&mut self) -> Message {
        let id = self.next() as u16;
        let qname = self.name();
        let mut m = Message::query(id, &qname, RecordType::A);
        m.header.response = true;
        m.header.rcode = Rcode::NoError;
        m.answers = self.records(3);
        m.authorities = self.records(1);
        m.additionals = self.records(1);
        m
    }
}

/// Runs `check` over [`CASES`] seeded cases, reporting the failing seed.
fn for_all_cases(check: impl Fn(&mut Gen)) {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        // A panic inside `check` aborts the test; print the seed first so
        // the case can be replayed.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&mut g)));
        if let Err(payload) = result {
            eprintln!("property failed for generator seed {seed}");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Encoding then decoding any name yields the same name.
#[test]
fn name_round_trip() {
    for_all_cases(|g| {
        let n = g.name();
        let mut w = dohmark_dns_wire::wire::Writer::new();
        n.encode(&mut w);
        let buf = w.finish();
        let mut r = dohmark_dns_wire::wire::Reader::new(&buf);
        assert_eq!(Name::decode(&mut r).unwrap(), n);
    });
}

/// Message encode/decode is the identity on the logical content.
#[test]
fn message_round_trip() {
    for_all_cases(|g| {
        let m = g.message();
        let wire = m.encode();
        let back = Message::decode(&wire).unwrap();
        assert_eq!(back.questions, m.questions);
        assert_eq!(back.answers, m.answers);
        assert_eq!(back.authorities, m.authorities);
        assert_eq!(back.additionals, m.additionals);
    });
}

/// Compression is always a pure size optimisation: decoding the compressed
/// and uncompressed encodings yields identical messages, and compression
/// never enlarges a message.
#[test]
fn compression_is_transparent_and_monotone() {
    for_all_cases(|g| {
        let m = g.message();
        let compressed = m.encode();
        let plain = m.encode_uncompressed();
        assert!(compressed.len() <= plain.len());
        assert_eq!(Message::decode(&compressed).unwrap(), Message::decode(&plain).unwrap());
    });
}

/// The decoder never panics on arbitrary bytes; it either parses or errors.
#[test]
fn decoder_total_on_arbitrary_input() {
    for_all_cases(|g| {
        let len = g.below(256) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| g.next() as u8).collect();
        let _ = Message::decode(&bytes);
    });
}

/// Round-trips survive prior content pushing name-suffix offsets past the
/// 14-bit compression-pointer boundary (`0x3FFF`): suffixes first seen past
/// it are unreachable by a pointer and must be written in full, while
/// suffixes registered below it stay compressible, and both encodings must
/// decode to the same message.
#[test]
fn round_trip_across_the_compression_pointer_boundary() {
    for seed in 0..24 {
        let mut g = Gen::new(seed + 0xB0DA);
        let mut m = g.message();
        // Pad with TXT records until the encoding safely passes 0x4000
        // bytes (estimate without compression; random names rarely share
        // suffixes, so the margin of 0x800 absorbs what compression saves).
        let mut estimate = 0usize;
        while estimate <= 0x4800 {
            let name = g.name();
            let strings: Vec<String> = (0..3).map(|_| g.printable(200)).collect();
            estimate += name.wire_len() + 10 + strings.iter().map(|s| 1 + s.len()).sum::<usize>();
            m.answers.push(Record::new(name, 60, Rdata::Txt(strings)));
        }
        // A shared name whose first occurrence lands past the boundary:
        // its suffixes must not be offered as (unencodable) pointer targets.
        let late = g.name();
        m.answers.push(Record::new(late.clone(), 60, Rdata::Ns(g.name())));
        m.answers.push(Record::new(late.clone(), 60, Rdata::Cname(late.clone())));
        let compressed = m.encode();
        assert!(compressed.len() > 0x4000, "seed {seed}: only {} bytes", compressed.len());
        let back = Message::decode(&compressed).expect("compressed decode");
        assert_eq!(back.answers, m.answers, "seed {seed}");
        let plain = m.encode_uncompressed();
        assert!(compressed.len() <= plain.len());
        assert_eq!(Message::decode(&plain).expect("plain decode"), back, "seed {seed}");
    }
}

/// Messages survive a JSON round trip through the dns-json codec, for the
/// record types dns-json represents with typed data.
#[test]
fn json_round_trip() {
    for_all_cases(|g| {
        let mut m = g.message();
        m.authorities.clear();
        m.additionals.clear();
        m.answers.retain(|r| {
            matches!(
                r.rdata,
                Rdata::A(_)
                    | Rdata::Aaaa(_)
                    | Rdata::Cname(_)
                    | Rdata::Ns(_)
                    | Rdata::Ptr(_)
                    | Rdata::Mx { .. }
            )
        });
        let j = JsonMessage::from_message(&m);
        let back = JsonMessage::from_json(&j.to_json()).unwrap().to_message(m.header.id).unwrap();
        assert_eq!(back.answers, m.answers);
    });
}
