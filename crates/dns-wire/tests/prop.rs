//! Property-based tests for the DNS codecs.

use dohmark_dns_wire::{
    rdata::{CaaRdata, Rdata, SoaRdata, SrvRdata},
    Message, Name, Rcode, Record, RecordType,
};
use proptest::prelude::*;

/// Strategy producing valid label strings (LDH + underscore, 1..=20 chars).
fn label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9_][a-z0-9_-]{0,18}").unwrap()
}

/// Strategy producing valid domain names of 1..=5 labels.
fn name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(label(), 1..=5)
        .prop_map(|labels| Name::from_labels(labels).unwrap())
}

fn rdata() -> impl Strategy<Value = Rdata> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| Rdata::A(o.into())),
        any::<[u8; 16]>().prop_map(|o| Rdata::Aaaa(o.into())),
        name().prop_map(Rdata::Cname),
        name().prop_map(Rdata::Ns),
        (any::<u16>(), name()).prop_map(|(preference, exchange)| Rdata::Mx {
            preference,
            exchange
        }),
        proptest::collection::vec("[ -~]{0,40}", 0..3).prop_map(Rdata::Txt),
        (name(), name(), any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>())
            .prop_map(|(mname, rname, serial, refresh, retry, expire, minimum)| {
                Rdata::Soa(SoaRdata { mname, rname, serial, refresh, retry, expire, minimum })
            }),
        (any::<u16>(), any::<u16>(), any::<u16>(), name()).prop_map(
            |(priority, weight, port, target)| Rdata::Srv(SrvRdata {
                priority,
                weight,
                port,
                target
            })
        ),
        (any::<bool>(), "[a-z]{1,10}", "[ -~]{0,30}").prop_map(|(critical, tag, value)| {
            Rdata::Caa(CaaRdata { critical, tag, value })
        }),
        proptest::collection::vec(
            (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..16)),
            0..3
        )
        .prop_map(Rdata::Opt),
    ]
}

fn record() -> impl Strategy<Value = Record> {
    (name(), any::<u32>(), rdata()).prop_map(|(n, ttl, rd)| Record::new(n, ttl, rd))
}

fn message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        name(),
        proptest::collection::vec(record(), 0..4),
        proptest::collection::vec(record(), 0..2),
        proptest::collection::vec(record(), 0..2),
    )
        .prop_map(|(id, qname, answers, authorities, additionals)| {
            let mut m = Message::query(id, &qname, RecordType::A);
            m.header.response = true;
            m.header.rcode = Rcode::NoError;
            m.answers = answers;
            m.authorities = authorities;
            m.additionals = additionals;
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Encoding then decoding any name yields the same name.
    #[test]
    fn name_round_trip(n in name()) {
        let mut w = dohmark_dns_wire::wire::Writer::new();
        n.encode(&mut w);
        let buf = w.finish();
        let mut r = dohmark_dns_wire::wire::Reader::new(&buf);
        prop_assert_eq!(Name::decode(&mut r).unwrap(), n);
    }

    /// Message encode/decode is the identity on the logical content.
    #[test]
    fn message_round_trip(m in message()) {
        let wire = m.encode();
        let back = Message::decode(&wire).unwrap();
        prop_assert_eq!(back.questions, m.questions);
        prop_assert_eq!(back.answers, m.answers);
        prop_assert_eq!(back.authorities, m.authorities);
        prop_assert_eq!(back.additionals, m.additionals);
    }

    /// Compression is always a pure size optimisation: decoding the
    /// compressed and uncompressed encodings yields identical messages,
    /// and compression never enlarges a message.
    #[test]
    fn compression_is_transparent_and_monotone(m in message()) {
        let compressed = m.encode();
        let plain = m.encode_uncompressed();
        prop_assert!(compressed.len() <= plain.len());
        prop_assert_eq!(Message::decode(&compressed).unwrap(), Message::decode(&plain).unwrap());
    }

    /// The decoder never panics on arbitrary bytes; it either parses or errors.
    #[test]
    fn decoder_total_on_arbitrary_input(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(&bytes);
    }

    /// Names survive a JSON round trip through the dns-json codec.
    #[test]
    fn json_round_trip(m in message()) {
        use dohmark_dns_wire::JsonMessage;
        // dns-json only represents questions + answers with typed data;
        // restrict to a message with representable answers.
        let mut m = m;
        m.authorities.clear();
        m.additionals.clear();
        m.answers.retain(|r| {
            matches!(
                r.rdata,
                Rdata::A(_) | Rdata::Aaaa(_) | Rdata::Cname(_) | Rdata::Ns(_)
                    | Rdata::Ptr(_) | Rdata::Mx { .. }
            )
        });
        let j = JsonMessage::from_message(&m);
        let back = JsonMessage::from_json(&j.to_json()).unwrap().to_message(m.header.id).unwrap();
        prop_assert_eq!(back.answers, m.answers);
    }
}
