//! Per-resolution DNS transport cost: UDP Do53 vs. cold DoT vs. persistent
//! DoT — the experiment behind the paper's Figure 3.
//!
//! Resolves the same seeded Poisson workload of constant-length random
//! names over three transports and prints the mean per-resolution byte
//! cost split by layer. Deterministic: two runs with the same seed produce
//! byte-identical output.
//!
//! Each scenario is one [`TransportConfig`] cell registered in a
//! [`Driver`] — the same addressed-routing drive loop the figure
//! harnesses and fleet experiments use.
//!
//! Run with: `cargo run --example cost_comparison`

use dohmark::dns::Name;
use dohmark::doh::{Driver, ReusePolicy, TransportConfig, TransportKind};
use dohmark::netsim::{Cost, CostMeter, Sim, SimDuration};
use dohmark::tls::handshake_bytes;
use dohmark::workload::QuerySchedule;

const SEED: u64 = 42;
const RESOLUTIONS: u16 = 20;
const WORKLOAD_STREAM: u64 = 0;

/// One scenario: a fresh simulator, the same seeded workload, N sequential
/// resolutions driven through a registered client/server pair.
fn run(cfg: &TransportConfig) -> CostMeter {
    let mut sim = Sim::new(SEED);
    let stub = sim.add_host("stub");
    let resolver = sim.add_host("resolver");
    sim.add_link(stub, resolver, cfg.link);
    let mut driver = Driver::new();
    driver.register(&mut sim, |sim| cfg.build_server(sim, resolver));
    let client = driver.register_resolver(&mut sim, |_| cfg.build_client(stub, resolver));
    // The workload RNG is split from the simulator seed, so every
    // scenario resolves the identical (arrival, name) stream.
    let mut rng = sim.split_rng(WORKLOAD_STREAM);
    let zone = Name::parse("dohmark.test").unwrap();
    let schedule = QuerySchedule::new(&mut rng, SimDuration::from_millis(50), 8, &zone);
    for (i, (at, name)) in schedule.take(usize::from(RESOLUTIONS)).enumerate() {
        driver.advance_until(&mut sim, at);
        driver
            .resolve(&mut sim, client, &name, i as u16 + 1)
            .unwrap_or_else(|| panic!("{} resolution {} completes", cfg.label(), i + 1));
    }
    driver.run_until_quiescent(&mut sim);
    let mut meter = CostMeter::new();
    std::mem::swap(&mut meter, &mut sim.meter);
    meter
}

/// Mean per-resolution cost over ids 1..=N plus any connection-setup cost
/// (attr 0), which persistent transports amortise across all resolutions.
struct Row {
    label: &'static str,
    packets: f64,
    ip: f64,
    udp: f64,
    tcp: f64,
    tls: f64,
    dns: f64,
    total: f64,
}

fn mean_row(label: &'static str, meter: &CostMeter, udp_transport: bool) -> Row {
    let mut sum = Cost::default();
    for attr in 0..=u32::from(RESOLUTIONS) {
        let c = meter.cost(attr);
        sum.bytes += c.bytes;
        sum.packets += c.packets;
        sum.layers.merge(&c.layers);
    }
    let n = f64::from(RESOLUTIONS);
    // The meter tracks IP+transport headers as one layer; every simulated
    // packet carries a 20-byte IPv4 header, so the split is exact.
    let ip = sum.packets as f64 * 20.0;
    let transport = sum.layers.l4_header as f64 - ip;
    Row {
        label,
        packets: sum.packets as f64 / n,
        ip: ip / n,
        udp: if udp_transport { transport / n } else { 0.0 },
        tcp: if udp_transport { 0.0 } else { transport / n },
        tls: sum.layers.tls as f64 / n,
        dns: sum.layers.dns as f64 / n,
        total: sum.bytes as f64 / n,
    }
}

fn main() {
    let do53_cfg = TransportConfig::new(TransportKind::Do53, ReusePolicy::Fresh);
    let dot_cold_cfg = TransportConfig::new(TransportKind::Dot, ReusePolicy::Fresh);
    let dot_persistent_cfg = TransportConfig::new(TransportKind::Dot, ReusePolicy::Persistent);
    let tls = dot_cold_cfg.tls().expect("dot uses tls");
    println!(
        "cost_comparison: {RESOLUTIONS} resolutions per scenario, seed {SEED}, \
         Poisson mean 50ms"
    );
    println!(
        "link: 14ms rtt, 50 Mbit/s | TLS 1.3, {} B certificate chain, {} B full handshake",
        tls.cert_chain.iter().sum::<usize>(),
        handshake_bytes(&tls),
    );
    println!();

    let rows = [
        mean_row("do53 (udp)", &run(&do53_cfg), true),
        mean_row("dot cold", &run(&dot_cold_cfg), false),
        mean_row("dot persistent", &run(&dot_persistent_cfg), false),
    ];

    println!("mean per-resolution bytes on the wire (both directions):");
    println!(
        "{:<16}{:>6}{:>9}{:>9}{:>9}{:>9}{:>9}{:>9}",
        "scenario", "pkts", "ip", "udp", "tcp", "tls", "dns", "total"
    );
    for r in &rows {
        println!(
            "{:<16}{:>6.1}{:>9.1}{:>9.1}{:>9.1}{:>9.1}{:>9.1}{:>9.1}",
            r.label, r.packets, r.ip, r.udp, r.tcp, r.tls, r.dns, r.total
        );
    }
    println!();
    println!(
        "cold DoT pays the TLS handshake on every resolution ({:.0} B of TLS per query);",
        rows[1].tls
    );
    println!(
        "persistent DoT amortises it across {RESOLUTIONS} queries ({:.0} B of TLS per query).",
        rows[2].tls
    );

    // The qualitative Figure 3 result, enforced so CI notices regressions.
    assert!(
        rows[1].total > 4.0 * rows[0].total,
        "cold DoT ({:.0} B) must dwarf Do53 ({:.0} B)",
        rows[1].total,
        rows[0].total
    );
    assert!(
        rows[2].total < rows[1].total / 2.0,
        "persistent DoT ({:.0} B) must amortise well below cold ({:.0} B)",
        rows[2].total,
        rows[1].total
    );
    assert_eq!(rows[1].dns, rows[2].dns, "identical workload ⇒ identical DNS payload bytes");
    println!("ok");
}
