//! Per-resolution DNS transport cost: UDP Do53 vs. cold DoT vs. persistent
//! DoT — the experiment behind the paper's Figure 3.
//!
//! Resolves the same seeded Poisson workload of constant-length random
//! names over three transports and prints the mean per-resolution byte
//! cost split by layer. Deterministic: two runs with the same seed produce
//! byte-identical output.
//!
//! Run with: `cargo run --example cost_comparison`

use dohmark::dns::Name;
use dohmark::doh::{
    advance_endpoints_until, drain_endpoints, Do53Client, Do53Server, DotClient, DotServer,
    Endpoint, ReusePolicy,
};
use dohmark::netsim::{Cost, CostMeter, LinkConfig, Sim, SimDuration};
use dohmark::tls::{handshake_bytes, TlsConfig};
use dohmark::workload::QuerySchedule;
use std::net::Ipv4Addr;

const SEED: u64 = 42;
const RESOLUTIONS: u16 = 20;
/// Attribution id for persistent-connection setup (ids 1..=N are queries).
const CONN_ATTR: u32 = 0;

fn link() -> LinkConfig {
    LinkConfig::with_rtt(SimDuration::from_millis(14)).bandwidth_mbps(50)
}

fn tls_config() -> TlsConfig {
    TlsConfig::for_server("dns.example.net").alpn("dot")
}

/// One scenario: a fresh simulator, the same seeded workload, N sequential
/// resolutions. Returns the meter and the wall-clock the run took.
fn run<C, S>(
    make: impl FnOnce(&mut Sim) -> (C, S),
    mut resolve: impl FnMut(&mut Sim, &mut C, &mut S, &Name, u16),
) -> CostMeter
where
    C: Endpoint,
    S: Endpoint,
{
    let mut sim = Sim::new(SEED);
    let (mut client, mut server) = make(&mut sim);
    // The workload RNG is split from the simulator seed, so every
    // scenario resolves the identical (arrival, name) stream.
    let mut rng = sim.split_rng(0);
    let zone = Name::parse("dohmark.test").unwrap();
    let schedule = QuerySchedule::new(&mut rng, SimDuration::from_millis(50), 8, &zone);
    for (i, (at, name)) in schedule.take(usize::from(RESOLUTIONS)).enumerate() {
        advance_endpoints_until(&mut sim, &mut [&mut client, &mut server], at);
        resolve(&mut sim, &mut client, &mut server, &name, i as u16 + 1);
    }
    drain_endpoints(&mut sim, &mut [&mut client, &mut server]);
    let mut meter = CostMeter::new();
    std::mem::swap(&mut meter, &mut sim.meter);
    meter
}

/// Mean per-resolution cost over ids 1..=N plus any connection-setup cost
/// (attr 0), which persistent transports amortise across all resolutions.
struct Row {
    label: &'static str,
    packets: f64,
    ip: f64,
    udp: f64,
    tcp: f64,
    tls: f64,
    dns: f64,
    total: f64,
}

fn mean_row(label: &'static str, meter: &CostMeter, udp_transport: bool) -> Row {
    let mut sum = Cost::default();
    for attr in 0..=u32::from(RESOLUTIONS) {
        let c = meter.cost(attr);
        sum.bytes += c.bytes;
        sum.packets += c.packets;
        sum.layers.merge(&c.layers);
    }
    let n = f64::from(RESOLUTIONS);
    // The meter tracks IP+transport headers as one layer; every simulated
    // packet carries a 20-byte IPv4 header, so the split is exact.
    let ip = sum.packets as f64 * 20.0;
    let transport = sum.layers.l4_header as f64 - ip;
    Row {
        label,
        packets: sum.packets as f64 / n,
        ip: ip / n,
        udp: if udp_transport { transport / n } else { 0.0 },
        tcp: if udp_transport { 0.0 } else { transport / n },
        tls: sum.layers.tls as f64 / n,
        dns: sum.layers.dns as f64 / n,
        total: sum.bytes as f64 / n,
    }
}

fn main() {
    let tls = tls_config();
    println!(
        "cost_comparison: {RESOLUTIONS} resolutions per scenario, seed {SEED}, \
         Poisson mean 50ms"
    );
    println!(
        "link: 14ms rtt, 50 Mbit/s | TLS 1.3, {} B certificate chain, {} B full handshake",
        tls.cert_chain.iter().sum::<usize>(),
        handshake_bytes(&tls),
    );
    println!();

    let answer = Ipv4Addr::new(192, 0, 2, 1);
    let do53 = run(
        |sim| {
            let stub = sim.add_host("stub");
            let resolver = sim.add_host("resolver");
            sim.add_link(stub, resolver, link());
            let server = Do53Server::bind(sim, resolver, 53, answer, 300);
            (Do53Client::new(stub, (resolver, 53)), server)
        },
        |sim, client, server, name, id| {
            client.resolve(sim, server, name, id).expect("do53 resolution completes");
        },
    );
    let dot = |policy: ReusePolicy| {
        run(
            |sim| {
                let stub = sim.add_host("stub");
                let resolver = sim.add_host("resolver");
                sim.add_link(stub, resolver, link());
                let server = DotServer::bind(sim, resolver, 853, tls_config(), answer, 300);
                (DotClient::new(stub, (resolver, 853), tls_config(), policy, CONN_ATTR), server)
            },
            |sim, client: &mut DotClient, server, name, id| {
                client.resolve(sim, server, name, id).expect("dot resolution completes");
            },
        )
    };
    let dot_cold = dot(ReusePolicy::Fresh);
    let dot_persistent = dot(ReusePolicy::Persistent);

    let rows = [
        mean_row("do53 (udp)", &do53, true),
        mean_row("dot cold", &dot_cold, false),
        mean_row("dot persistent", &dot_persistent, false),
    ];

    println!("mean per-resolution bytes on the wire (both directions):");
    println!(
        "{:<16}{:>6}{:>9}{:>9}{:>9}{:>9}{:>9}{:>9}",
        "scenario", "pkts", "ip", "udp", "tcp", "tls", "dns", "total"
    );
    for r in &rows {
        println!(
            "{:<16}{:>6.1}{:>9.1}{:>9.1}{:>9.1}{:>9.1}{:>9.1}{:>9.1}",
            r.label, r.packets, r.ip, r.udp, r.tcp, r.tls, r.dns, r.total
        );
    }
    println!();
    println!(
        "cold DoT pays the TLS handshake on every resolution ({:.0} B of TLS per query);",
        rows[1].tls
    );
    println!(
        "persistent DoT amortises it across {RESOLUTIONS} queries ({:.0} B of TLS per query).",
        rows[2].tls
    );

    // The qualitative Figure 3 result, enforced so CI notices regressions.
    assert!(
        rows[1].total > 4.0 * rows[0].total,
        "cold DoT ({:.0} B) must dwarf Do53 ({:.0} B)",
        rows[1].total,
        rows[0].total
    );
    assert!(
        rows[2].total < rows[1].total / 2.0,
        "persistent DoT ({:.0} B) must amortise well below cold ({:.0} B)",
        rows[2].total,
        rows[1].total
    );
    assert_eq!(rows[1].dns, rows[2].dns, "identical workload ⇒ identical DNS payload bytes");
    println!("ok");
}
