//! The full transport matrix, one table: Do53 vs. DoT vs. DoH/1.1 vs.
//! DoH/2 in fresh / fresh+resumed / persistent connection modes — the
//! experiment grid behind the paper's Figures 3–5.
//!
//! Every cell resolves the *same* seeded Poisson workload of
//! constant-length random names through `dohmark_bench::run_matrix_cell`
//! (the single shared drive loop, also used by `tests/transport_matrix.rs`
//! and the `fig3_bytes_per_resolution` harness), so the per-layer byte
//! table is directly comparable across cells. Two qualitative results of
//! the paper are asserted so CI notices regressions:
//!
//! 1. a cold DoH/2 resolution is the most expensive cell of the matrix
//!    (TCP + full TLS handshake + h2 preface/SETTINGS management), and
//! 2. persistent connections amortise toward the Do53 baseline — with
//!    HPACK's dynamic table visibly shrinking DoH/2 header bytes after
//!    the first query.
//!
//! Deterministic: two runs with the same seed produce byte-identical
//! output. Run with: `cargo run --example transport_shootout`

use dohmark::doh::{ReusePolicy, TransportConfig, TransportKind};
use dohmark_bench::{run_matrix_cell, CellRun};

const SEED: u64 = 42;
const RESOLUTIONS: u16 = 10;

fn find(cells: &[CellRun], kind: TransportKind, reuse: ReusePolicy, resumed: bool) -> &CellRun {
    cells
        .iter()
        .find(|c| c.transport == kind.label() && c.reuse == reuse.label() && c.resumed == resumed)
        .expect("matrix covers every cell")
}

fn main() {
    println!(
        "transport_shootout: {RESOLUTIONS} resolutions per cell, seed {SEED}, \
         Poisson mean 50ms, link 14ms rtt / 50 Mbit/s, TLS 1.3"
    );
    println!();

    let cells: Vec<CellRun> = TransportConfig::matrix()
        .iter()
        .map(|cfg| run_matrix_cell(cfg, SEED, RESOLUTIONS))
        .collect();

    println!("mean per-resolution bytes on the wire (setup amortised over {RESOLUTIONS}):");
    println!(
        "{:<26}{:>6}{:>8}{:>8}{:>7}{:>7}{:>7}{:>7}{:>8}",
        "cell", "pkts", "l4", "tls", "hdr", "body", "mgmt", "dns", "total"
    );
    for c in &cells {
        // `layers` is in LayerTag::ALL order: Body, Hdr, Mgmt, TLS, L4, DNS.
        let [body, hdr, mgmt, tls, l4, dns] = c.layers.map(|(_, bytes)| bytes);
        println!(
            "{:<26}{:>6.0}{:>8.0}{:>8.0}{:>7.0}{:>7.0}{:>7.0}{:>7.0}{:>8.0}",
            c.label,
            c.packets_per_resolution,
            l4,
            tls,
            hdr,
            body,
            mgmt,
            dns,
            c.bytes_per_resolution,
        );
    }
    println!();

    let h2_persistent = find(&cells, TransportKind::DohH2, ReusePolicy::Persistent, false);
    let h1_persistent = find(&cells, TransportKind::DohH1, ReusePolicy::Persistent, false);
    println!("doh-h2 persistent header bytes per query (HPACK dynamic table at work):");
    let per_query: Vec<String> = h2_persistent
        .header_bytes_per_query
        .iter()
        .enumerate()
        .map(|(i, b)| format!("q{}={b}", i + 1))
        .collect();
    println!("  {}", per_query.join(" "));
    println!(
        "  (doh-h1 persistent repeats its full header text every query: q1={} q2={})",
        h1_persistent.header_bytes_per_query[0], h1_persistent.header_bytes_per_query[1]
    );
    println!();

    // ---- Assertion 1: cold DoH/2 is the costliest cell of the matrix.
    let h2_cold = find(&cells, TransportKind::DohH2, ReusePolicy::Fresh, false);
    for c in &cells {
        if !std::ptr::eq(c, h2_cold) {
            assert!(
                h2_cold.bytes_per_resolution > c.bytes_per_resolution,
                "cold doh-h2 ({:.0} B) must out-cost {} ({:.0} B)",
                h2_cold.bytes_per_resolution,
                c.label,
                c.bytes_per_resolution
            );
        }
    }

    // ---- Assertion 2: per TLS transport, resumption and persistence
    // each cut the mean, in that order.
    for kind in [TransportKind::Dot, TransportKind::DohH1, TransportKind::DohH2] {
        let fresh = find(&cells, kind, ReusePolicy::Fresh, false).bytes_per_resolution;
        let resumed = find(&cells, kind, ReusePolicy::Fresh, true).bytes_per_resolution;
        let persistent = find(&cells, kind, ReusePolicy::Persistent, false).bytes_per_resolution;
        assert!(
            fresh > resumed && resumed > persistent,
            "{kind:?}: fresh {fresh:.0} > resumed {resumed:.0} > persistent {persistent:.0} violated"
        );
    }

    // ---- Assertion 3: persistent connections amortise toward Do53. The
    // steady state (setup excluded) lands within a small factor of the
    // UDP baseline, an order of magnitude below the cold case.
    let do53 = find(&cells, TransportKind::Do53, ReusePolicy::Fresh, false);
    for kind in [TransportKind::Dot, TransportKind::DohH1, TransportKind::DohH2] {
        let steady = find(&cells, kind, ReusePolicy::Persistent, false).steady_bytes_per_resolution;
        let cold = find(&cells, kind, ReusePolicy::Fresh, false).bytes_per_resolution;
        assert!(
            steady < 4.0 * do53.bytes_per_resolution && steady * 5.0 < cold,
            "{kind:?}: steady state {steady:.0} B vs do53 {:.0} B / cold {cold:.0} B",
            do53.bytes_per_resolution
        );
    }

    // ---- Assertion 4: HPACK dynamic-table shrinkage on persistent DoH/2
    // — the first query pays literal headers, every later identical-shape
    // query pays index bytes only; h1 enjoys no such compression.
    let h2 = &h2_persistent.header_bytes_per_query;
    assert!(
        h2.iter().skip(1).all(|&b| 2 * b < h2[0]),
        "later queries ({:?}) must cost less than half the first ({})",
        &h2[1..],
        h2[0]
    );
    assert!(
        h2.windows(2).skip(1).all(|w| w[0] == w[1]),
        "identical-shape queries must hit identical index bytes: {h2:?}"
    );
    let h1 = &h1_persistent.header_bytes_per_query;
    assert!(h1.windows(2).all(|w| w[0] == w[1]), "h1 headers repeat verbatim: {h1:?}");
    assert!(h2[9] < h1[9], "steady-state h2 headers must undercut h1 text");

    // ---- Assertion 5: byte-identical reruns under the fixed seed.
    let rerun = run_matrix_cell(
        &TransportConfig::new(TransportKind::DohH2, ReusePolicy::Persistent),
        SEED,
        RESOLUTIONS,
    );
    assert_eq!(&rerun, h2_persistent, "shootout must be deterministic");

    println!("cold doh-h2 is the costliest cell; persistent connections amortise toward do53.");
    println!("ok");
}
