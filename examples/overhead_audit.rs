fn main() {}
