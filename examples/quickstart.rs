//! Quickstart: encode a DNS query, decode it back, and push it through the
//! deterministic simulator to see what the bytes cost on the wire.
//!
//! Run with: `cargo run --example quickstart`

use dohmark::dns::{Message, Name, RecordType};
use dohmark::netsim::{LayerTag, LinkConfig, Sim, Wake};

fn main() {
    // 1. A real RFC 1035 query, byte for byte.
    let name = Name::parse("example.com.").expect("valid name");
    let query = Message::query(0x1234, &name, RecordType::A);
    let wire = query.encode();
    println!("query for {name} encodes to {} bytes", wire.len());

    // 2. Decoding gives back the same logical message.
    let back = Message::decode(&wire).expect("round trip");
    assert_eq!(back.header.id, 0x1234);
    assert_eq!(back.questions[0].name, name);
    println!("decoded back: id={:#06x} qname={}", back.header.id, back.questions[0].name);

    // 3. Send it over simulated TCP (the DoT/DoH substrate) and account
    //    every wire byte by layer, as the paper's Figures 3-5 do.
    let mut sim = Sim::new(7);
    let client = sim.add_host("client");
    let resolver = sim.add_host("resolver");
    sim.add_link(client, resolver, LinkConfig::localhost());
    sim.tcp_listen(resolver, 853);
    let conn = sim.tcp_connect(client, (resolver, 853));
    while let Some(wake) = sim.next_wake() {
        if let Wake::TcpConnected { .. } = wake {
            sim.tcp_send(conn, LayerTag::DnsPayload, &wire);
            break;
        }
    }
    sim.drain();

    let cost = sim.meter.total();
    println!(
        "on the wire: {} packets, {} bytes total ({} DNS payload, {} transport headers)",
        cost.packets, cost.bytes, cost.layers.dns, cost.layers.l4_header
    );
    assert_eq!(cost.layers.dns, wire.len() as u64);
    println!("ok");
}
