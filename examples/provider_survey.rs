fn main() {}
