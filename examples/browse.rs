fn main() {}
