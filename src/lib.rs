//! # dohmark
//!
//! A protocol-faithful reproduction of *"An Empirical Study of the Cost of
//! DNS-over-HTTPS"* (Boettger et al., ACM IMC 2019).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`dns`] — DNS wireformat and `application/dns-json` codecs.
//! * [`netsim`] — deterministic discrete-event network simulator with
//!   simulated UDP and TCP and per-layer cost accounting.
//! * [`tls`] — TLS 1.2/1.3 handshake and record-layer byte model.
//! * [`http`] — HPACK, HTTP/2 framing and HTTP/1.1 with pipelining.
//! * [`doh`] — stub resolvers and servers for UDP DNS, DoT, DoH/HTTP-1.1 and
//!   DoH/HTTP-2, with per-resolution cost breakdowns.
//! * [`survey`] — the DoH provider landscape survey (paper Tables 1–2).
//! * [`workload`] — Alexa-like site and name workload models.
//! * [`pageload`] — browser model and page-load experiments (Figures 1, 6).
//!
//! ## Quickstart
//!
//! ```
//! use dohmark::doh::experiment::overhead::{OverheadConfig, Scenario, run_scenario};
//!
//! let cfg = OverheadConfig { resolutions: 50, ..OverheadConfig::default() };
//! let report = run_scenario(Scenario::DohPersistentCloudflare, &cfg);
//! // DoH over a persistent connection still costs several times UDP.
//! assert!(report.median_bytes() > 500);
//! ```

pub use dohmark_dns_wire as dns;
pub use dohmark_doh as doh;
pub use dohmark_httpsim as http;
pub use dohmark_netsim as netsim;
pub use dohmark_pageload as pageload;
pub use dohmark_survey as survey;
pub use dohmark_tls_model as tls;
pub use dohmark_workload as workload;
