//! # dohmark
//!
//! A protocol-faithful reproduction of *"An Empirical Study of the Cost of
//! DNS-over-HTTPS"* (Boettger et al., ACM IMC 2019).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`dns`] — DNS wireformat and `application/dns-json` codecs.
//! * [`netsim`] — deterministic discrete-event network simulator with
//!   simulated UDP and TCP and per-layer cost accounting.
//! * [`tls`] — TLS 1.2/1.3 handshake and record-layer byte model:
//!   configurable flights (SNI, ALPN, certificate chain, resumption) and
//!   record framing/deframing.
//! * [`http`] — byte-accurate HTTP codecs: HPACK (static + dynamic table
//!   with eviction, Huffman coding), HTTP/2 framing and HTTP/1.1
//!   request/response text.
//! * [`doh`] — simulated DNS transports behind one unified API: UDP Do53,
//!   DoT, and DoH over HTTP/1.1 and HTTP/2, each resolution attributed in
//!   the cost meter. `doh::build_pair` turns a `doh::TransportConfig`
//!   (kind × reuse × TLS resumption) into a boxed `Resolver`/`Endpoint`
//!   pair, so experiments iterate the whole transport matrix.
//! * [`survey`] — the DoH provider landscape survey, paper Tables 1–2
//!   (planned).
//! * [`workload`] — seeded Poisson query arrivals, Zipf name universes,
//!   multi-client fleet schedules, and the Alexa-like site model
//!   (`SiteModel`) whose pages feed the page-load engine.
//! * [`pageload`] — the browser page-load engine, Figures 1, 2 and 6:
//!   pages as dependency trees of resources over several domains, each
//!   fetch gated on resolving its domain through any [`doh::Resolver`],
//!   page-load time as the simulated makespan from `pageload::load_page`.
//!
//! ## Quickstart
//!
//! Encode a real DNS query and send it over simulated TCP, then read the
//! per-layer cost the way the paper's figures do:
//!
//! ```
//! use dohmark::dns::{Message, Name, RecordType};
//! use dohmark::netsim::{LayerTag, LinkConfig, Sim, Wake};
//!
//! let query = Message::query(0x1234, &Name::parse("example.com.").unwrap(), RecordType::A);
//! let wire = query.encode();
//!
//! let mut sim = Sim::new(7);
//! let client = sim.add_host("client");
//! let resolver = sim.add_host("resolver");
//! sim.add_link(client, resolver, LinkConfig::localhost());
//! sim.tcp_listen(resolver, 853);
//! let conn = sim.tcp_connect(client, (resolver, 853));
//! while let Some(wake) = sim.next_wake() {
//!     if let Wake::TcpConnected { .. } = wake {
//!         sim.tcp_send(conn, LayerTag::DnsPayload, &wire);
//!         break;
//!     }
//! }
//! sim.drain();
//!
//! let cost = sim.meter.total();
//! assert_eq!(cost.layers.dns, wire.len() as u64);
//! // Handshake + ACKs: the transport overhead the paper quantifies.
//! assert!(cost.layers.l4_header > cost.layers.dns);
//! ```

pub use dohmark_dns_wire as dns;
pub use dohmark_doh as doh;
pub use dohmark_httpsim as http;
pub use dohmark_netsim as netsim;
pub use dohmark_pageload as pageload;
pub use dohmark_survey as survey;
pub use dohmark_tls_model as tls;
pub use dohmark_workload as workload;
