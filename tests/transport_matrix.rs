//! Integration test for the unified transport API: `build_pair` must
//! construct every matrix cell, and the cells must reproduce the paper's
//! qualitative cost ordering deterministically — the same properties
//! `examples/transport_shootout.rs` demonstrates, kept under `cargo test`
//! and driven through the same shared `dohmark_bench::run_matrix_cell`
//! loop so the example, this test and the figure harnesses measure the
//! same thing.

use dohmark::dns::Name;
use dohmark::doh::{ReusePolicy, TransportConfig, TransportKind};
use dohmark::netsim::Sim;
use dohmark_bench::{run_matrix_cell, CellRun};

const RESOLUTIONS: u16 = 6;

fn cell(kind: TransportKind, reuse: ReusePolicy) -> CellRun {
    run_matrix_cell(&TransportConfig::new(kind, reuse), 42, RESOLUTIONS)
}

#[test]
fn build_pair_constructs_every_kind_in_both_reuse_modes() {
    let cells = TransportConfig::matrix();
    for kind in [TransportKind::Dot, TransportKind::DohH1, TransportKind::DohH2] {
        for reuse in [ReusePolicy::Fresh, ReusePolicy::Persistent] {
            assert!(
                cells.iter().any(|c| c.kind == kind && c.reuse == reuse),
                "matrix misses {kind:?}/{reuse:?}"
            );
        }
    }
    assert!(cells.iter().any(|c| c.kind == TransportKind::Do53));
    for cfg in &cells {
        // run_matrix_cell panics if any resolution fails to complete.
        let run = run_matrix_cell(cfg, 42, RESOLUTIONS);
        assert!(run.bytes_per_resolution > 0.0, "{} moved no bytes", cfg.label());
    }
}

#[test]
fn cold_doh_h2_is_the_costliest_cell_and_persistence_amortises() {
    let do53 = cell(TransportKind::Do53, ReusePolicy::Fresh).bytes_per_resolution;
    let h2_cold = cell(TransportKind::DohH2, ReusePolicy::Fresh).bytes_per_resolution;
    for (kind, reuse) in [
        (TransportKind::Do53, ReusePolicy::Fresh),
        (TransportKind::Dot, ReusePolicy::Fresh),
        (TransportKind::Dot, ReusePolicy::Persistent),
        (TransportKind::DohH1, ReusePolicy::Fresh),
        (TransportKind::DohH1, ReusePolicy::Persistent),
        (TransportKind::DohH2, ReusePolicy::Persistent),
    ] {
        assert!(
            h2_cold > cell(kind, reuse).bytes_per_resolution,
            "cold doh-h2 must out-cost {kind:?}/{reuse:?}"
        );
    }
    // Persistent connections amortise toward the Do53 baseline: far from
    // the cold cost, within an order of magnitude of UDP.
    for kind in [TransportKind::Dot, TransportKind::DohH1, TransportKind::DohH2] {
        let persistent = cell(kind, ReusePolicy::Persistent).bytes_per_resolution;
        let cold = cell(kind, ReusePolicy::Fresh).bytes_per_resolution;
        assert!(
            persistent * 3.0 < cold && persistent < 10.0 * do53,
            "{kind:?}: persistent {persistent:.0} vs cold {cold:.0} vs do53 {do53:.0}"
        );
    }
}

#[test]
fn persistent_doh_h2_shrinks_header_bytes_via_hpack() {
    let headers = cell(TransportKind::DohH2, ReusePolicy::Persistent).header_bytes_per_query;
    assert!(
        headers.iter().skip(1).all(|&h| 2 * h < headers[0]),
        "dynamic table must at least halve later header blocks: {headers:?}"
    );
    let h1_headers = cell(TransportKind::DohH1, ReusePolicy::Persistent).header_bytes_per_query;
    assert!(
        h1_headers.windows(2).all(|w| w[0] == w[1]),
        "h1 has no header compression: {h1_headers:?}"
    );
    assert!(headers[1] < h1_headers[1], "steady-state h2 headers must undercut h1 text");
}

#[test]
fn the_matrix_is_deterministic_under_a_fixed_seed() {
    for cfg in TransportConfig::matrix() {
        assert_eq!(
            run_matrix_cell(&cfg, 7, RESOLUTIONS),
            run_matrix_cell(&cfg, 7, RESOLUTIONS),
            "{} diverged",
            cfg.label()
        );
    }
}

#[test]
// The broadcast wrappers are deprecated shims kept for one release;
// this test pins their semantics (bystander wake routing) until removal.
// New code drives multi-session topologies through `Driver` instead.
#[allow(deprecated)]
fn resolve_with_extras_routes_wakes_to_bystander_endpoints() {
    // Two independent DoH/2 sessions on one simulator: driving a
    // resolution on the first must not swallow the second's teardown
    // wakes (the GOAWAY/FIN exchange after its client closed). Session B
    // uses concrete types so its connection state can be asserted.
    use dohmark::doh::{
        build_pair_on,
        // simlint::allow(no-deprecated-broadcast): the one pinned test of the shims — goes away with them next release
        drain_endpoints,
        // simlint::allow(no-deprecated-broadcast): the one pinned test of the shims — goes away with them next release
        resolve_with,
        DohH2Client,
        DohH2Server,
        Resolver,
    };
    use dohmark::tls::{TlsConfig, ALPN_H2};
    use std::net::Ipv4Addr;

    let mut sim = Sim::new(5);
    let cfg = TransportConfig::new(TransportKind::DohH2, ReusePolicy::Persistent);
    let stub = sim.add_host("stub");
    let resolver = sim.add_host("resolver");
    sim.add_link(stub, resolver, cfg.link);
    let (mut client_a, mut server_a) = build_pair_on(&mut sim, stub, resolver, &cfg);
    let tls = TlsConfig::for_server("dns.example.net").alpn(ALPN_H2);
    let mut server_b =
        DohH2Server::bind(&mut sim, resolver, 8443, tls.clone(), Ipv4Addr::new(192, 0, 2, 9), 60);
    let mut client_b = DohH2Client::new(
        stub,
        (resolver, 8443),
        "dns.example.net",
        tls,
        ReusePolicy::Persistent,
        200,
    );
    let name = Name::parse("abcdefgh.dohmark.test").unwrap();

    // Session B resolves, then starts closing — its GOAWAY/FIN exchange
    // is still in flight when session A's resolution is driven.
    // simlint::allow(no-deprecated-broadcast): pinning broadcast semantics until the shims are removed
    resolve_with(&mut sim, &mut client_b, &mut server_b, &name, 100).unwrap();
    client_b.close(&mut sim);
    // simlint::allow(no-deprecated-broadcast): pinning broadcast semantics until the shims are removed
    let response = dohmark::doh::resolve_with_extras(
        &mut sim,
        client_a.as_mut(),
        server_a.as_mut(),
        &mut [&mut client_b, &mut server_b],
        &name,
        1,
    );
    assert!(response.is_some());
    // simlint::allow(no-deprecated-broadcast): pinning broadcast semantics until the shims are removed
    drain_endpoints(
        &mut sim,
        &mut [client_a.as_mut(), server_a.as_mut(), &mut client_b, &mut server_b],
    );
    // B's teardown completed even though A's resolve loop was driving:
    // the FIN wake reached B's server instead of being discarded.
    assert!(!client_b.is_connected());
    assert_eq!(server_b.open_connections(), 0, "B's teardown wake was lost");
}
